"""Human-readable rendering: trees, K-examples, queries, results.

Everything here returns plain strings (no terminal control codes) so the
output can go to logs, docs, and tests alike.
"""

from __future__ import annotations

from repro.abstraction.tree import AbstractionTree, TreeNode
from repro.core.optimizer import OptimalAbstractionResult
from repro.provenance.kexample import AbstractedKExample, KExample
from repro.query.ast import CQ, UCQ


def render_tree(
    tree: AbstractionTree,
    highlight: "set[str] | frozenset[str] | None" = None,
    max_children: int = 12,
) -> str:
    """ASCII art of an abstraction tree.

    ``highlight`` labels get a ``*`` marker (e.g. the K-example's
    variables); sibling lists longer than ``max_children`` are elided.
    """
    highlight = highlight or frozenset()
    lines: list[str] = []

    def walk(node: TreeNode, prefix: str, is_last: bool) -> None:
        connector = "" if node.is_root else ("`-- " if is_last else "|-- ")
        marker = " *" if node.label in highlight else ""
        lines.append(f"{prefix}{connector}{node.label}{marker}")
        child_prefix = prefix if node.is_root else (
            prefix + ("    " if is_last else "|   ")
        )
        children = node.children
        shown = children[:max_children]
        for index, child in enumerate(shown):
            last = index == len(shown) - 1 and len(children) <= max_children
            walk(child, child_prefix, last)
        if len(children) > max_children:
            lines.append(
                f"{child_prefix}`-- ... ({len(children) - max_children} more)"
            )

    walk(tree.root, "", True)
    return "\n".join(lines)


def render_kexample(example: "KExample | AbstractedKExample") -> str:
    """The paper's two-column K-example layout (Figure 2)."""
    rows = example.rows
    outputs = [", ".join(str(v) for v in row.output) for row in rows]
    provs = [repr(row.monomial()) for row in rows]
    out_width = max(len("Output"), *(len(o) for o in outputs))
    lines = [
        f"{'Output'.ljust(out_width)} | Provenance",
        f"{'-' * out_width}-+-{'-' * max(len('Provenance'), *(len(p) for p in provs))}",
    ]
    for output, prov in zip(outputs, provs):
        lines.append(f"{output.ljust(out_width)} | {prov}")
    return "\n".join(lines)


def render_query(query: "CQ | UCQ") -> str:
    """Datalog text for a query (re-parsable by :func:`repro.parse_cq`)."""
    if isinstance(query, UCQ):
        return "; ".join(render_query(cq) for cq in query.disjuncts)
    head = repr(query.head)
    body = ", ".join(repr(atom) for atom in query.body)
    return f"{head} :- {body}"


def render_result(result: OptimalAbstractionResult) -> str:
    """A short report for an optimization outcome."""
    if not result.found or result.abstracted is None:
        return (
            "no abstraction met the threshold "
            f"(scanned {result.stats.candidates_scanned} candidates in "
            f"{result.stats.elapsed_seconds:.2f}s)"
        )
    lines = [
        f"privacy             : {result.privacy}",
        f"loss of information : {result.loi:.4f}",
        f"tree edges used     : {result.edges_used}",
        f"candidates scanned  : {result.stats.candidates_scanned}",
        f"privacy computations: {result.stats.privacy_computations}",
        f"elapsed             : {result.stats.elapsed_seconds:.2f}s",
        "abstracted K-example:",
    ]
    for row_line in render_kexample(result.abstracted).splitlines():
        lines.append(f"  {row_line}")
    return "\n".join(lines)
