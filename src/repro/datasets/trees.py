"""The paper's abstraction trees for TPC-H and IMDB (Section 5.1).

* TPC-H: a tree over the ``lineitem`` relation's annotations, "randomly
  divided into subcategories evenly throughout the tree".
* IMDB: an ontology — people categorized by birth year, then ranges of
  years; movies by release year, then ranges; the cast/direction link
  tables by the year of the linked movie; genres by genre type; all under
  a root of main categories.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.abstraction.builders import tree_from_categories
from repro.abstraction.tree import AbstractionTree
from repro.db.database import KDatabase
from repro.seeding import DEFAULT_SEED


def tpch_lineitem_tree(
    db: KDatabase,
    n_leaves: int = 1000,
    height: int = 5,
    seed: int = DEFAULT_SEED,
    must_include: Iterable[str] = (),
) -> AbstractionTree:
    """A balanced random tree over (a sample of) lineitem annotations.

    ``must_include`` — typically the K-example's lineitem variables — is
    always part of the sample so the tree can abstract them.
    """
    annotations = [t.annotation for t in db.scan("lineitem")]
    from repro.abstraction.builders import tree_over_annotations

    return tree_over_annotations(
        annotations, n_leaves=n_leaves, height=height, seed=seed,
        must_include=must_include,
    )


def imdb_ontology_tree(db: KDatabase) -> AbstractionTree:
    """The paper's IMDB ontology tree (five top-level categories).

    Levels: root -> main category -> range (decade) -> year -> annotation,
    i.e. the paper's 5-level tree.
    """
    movie_year: dict[object, int] = {}
    for tup in db.scan("movie"):
        movie_year[tup.values[0]] = int(tup.values[2])

    def decade(year: int) -> str:
        low = (year // 10) * 10
        return f"{low}-{low + 9}"

    people: dict[str, dict[str, list[str]]] = {}
    for tup in db.scan("person"):
        year = int(tup.values[2])
        people.setdefault(f"people-born-{decade(year)}", {}).setdefault(
            f"people-born-{year}", []
        ).append(tup.annotation)

    movies: dict[str, dict[str, list[str]]] = {}
    for tup in db.scan("movie"):
        year = int(tup.values[2])
        movies.setdefault(f"movies-{decade(year)}", {}).setdefault(
            f"movies-{year}", []
        ).append(tup.annotation)

    def link_categories(relation: str, prefix: str) -> dict:
        out: dict[str, dict[str, list[str]]] = {}
        for tup in db.scan(relation):
            year = movie_year.get(tup.values[1])
            if year is None:
                continue
            out.setdefault(f"{prefix}-{decade(year)}", {}).setdefault(
                f"{prefix}-{year}", []
            ).append(tup.annotation)
        return out

    genres: dict[str, list[str]] = {}
    for tup in db.scan("genre"):
        genres.setdefault(f"genre-{tup.values[1]}", []).append(tup.annotation)

    return tree_from_categories({
        "People": people,
        "Movies": movies,
        "Cast": link_categories("casts", "cast"),
        "Directed": link_categories("directs", "directed"),
        "Genres": genres,
    })
