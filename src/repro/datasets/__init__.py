"""Workload substrates: TPC-H and IMDB-style generators and the paper's queries."""

from repro.datasets.tpch import TPCH_SCHEMA, generate_tpch
from repro.datasets.imdb import IMDB_SCHEMA, generate_imdb
from repro.datasets.queries import (
    IMDB_QUERIES,
    TPCH_QUERIES,
    all_queries,
    get_query,
    join_variants,
    query_stats,
)

__all__ = [
    "IMDB_QUERIES",
    "IMDB_SCHEMA",
    "TPCH_QUERIES",
    "TPCH_SCHEMA",
    "all_queries",
    "generate_imdb",
    "generate_tpch",
    "get_query",
    "join_variants",
    "query_stats",
]
