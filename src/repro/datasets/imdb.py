"""A deterministic IMDB-shaped dataset generator.

The paper uses the public IMDB dumps; those are not bundled offline, so
this module synthesizes a database with the same shape: people (actors and
directors) with birth years and countries, movies with release years,
genres, cast and direction edges.  The generator plants the specific
patterns the paper's IMDB queries Q1-Q7 look for (Kevin Bacon co-stars,
Tom Cruise movies, directors with both an action and a comedy movie,
actors born in 1978 in comedies, movies from 1995) so every query has
results at any scale.
"""

from __future__ import annotations

import random

from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.seeding import DEFAULT_SEED

IMDB_SCHEMA = Schema.from_dict({
    "person": ["pid", "name", "birthyear", "country"],
    "movie": ["mid", "title", "year"],
    "casts": ["pid", "mid"],
    "directs": ["pid", "mid"],
    "genre": ["mid", "genrename"],
})

_GENRES = ["Action", "Comedy", "Drama", "Thriller", "Romance", "Horror", "Sci-Fi"]
_COUNTRIES = ["USA", "UK", "France", "Germany", "India", "Japan", "Canada"]

_PERSON_BASE = 100_000
_MOVIE_BASE = 500_000


def generate_imdb(
    n_people: int = 120,
    n_movies: int = 80,
    seed: int = DEFAULT_SEED,
) -> KDatabase:
    """Generate an IMDB-style K-database with the paper's query patterns.

    Annotations: ``a<pid>`` for people, ``m<mid>`` for movies, ``g<mid>_<i>``
    for genre rows, ``ci<pid>_<mid>`` for cast edges, ``d<pid>_<mid>`` for
    direction edges.
    """
    rng = random.Random(seed)
    db = KDatabase(IMDB_SCHEMA)

    def add_person(index: int, name: str, birthyear: int, country: str) -> int:
        pid = _PERSON_BASE + index
        db.insert("person", (pid, name, birthyear, country), f"a{pid}")
        return pid

    def add_movie(index: int, title: str, year: int, genres: list[str]) -> int:
        mid = _MOVIE_BASE + index
        db.insert("movie", (mid, title, year), f"m{mid}")
        for g_index, genre in enumerate(genres):
            db.insert("genre", (mid, genre), f"g{mid}_{g_index}")
        return mid

    cast_pairs: set[tuple[int, int]] = set()
    direct_pairs: set[tuple[int, int]] = set()

    def cast(pid: int, mid: int) -> None:
        if (pid, mid) not in cast_pairs:
            cast_pairs.add((pid, mid))
            db.insert("casts", (pid, mid), f"ci{pid}_{mid}")

    def direct(pid: int, mid: int) -> None:
        if (pid, mid) not in direct_pairs:
            direct_pairs.add((pid, mid))
            db.insert("directs", (pid, mid), f"d{pid}_{mid}")

    # Celebrity anchors referenced by Q3 and Q6.
    kevin = add_person(0, "Kevin Bacon", 1958, "USA")
    tom = add_person(1, "Tom Cruise", 1962, "USA")

    people = [kevin, tom]
    for i in range(2, n_people):
        birthyear = rng.choice(
            # Over-represent 1978 so Q5 always has matches.
            [1978] * 3 + list(range(1930, 2001, 2))
        )
        people.append(
            add_person(i, f"Person {i}", birthyear, rng.choice(_COUNTRIES))
        )

    movies = []
    for i in range(n_movies):
        year = rng.choice([1995] * 6 + list(range(1960, 2021)))
        genres = rng.sample(_GENRES, rng.randint(1, 2))
        movies.append(add_movie(i, f"Movie {i}", year, genres))

    # Dense enough casting so joins succeed at small scale.
    for mid in movies:
        for pid in rng.sample(people, min(len(people), rng.randint(2, 5))):
            cast(pid, mid)
        director = rng.choice(people)
        direct(director, mid)

    # Planted patterns:
    # Q3 — Kevin Bacon co-stars in several movies.
    for mid in rng.sample(movies, min(6, len(movies))):
        cast(kevin, mid)

    # Q6 — Tom Cruise stars in several (directed) movies.
    for mid in rng.sample(movies, min(6, len(movies))):
        cast(tom, mid)

    # Q4 — a few directors with both an Action and a Comedy movie.
    action_movies = [
        mid for mid in movies
        if any(t.values[1] == "Action" for t in db.scan("genre", {0: mid}))
    ]
    comedy_movies = [
        mid for mid in movies
        if any(t.values[1] == "Comedy" for t in db.scan("genre", {0: mid}))
    ]
    for director in rng.sample(people, min(8, len(people))):
        if action_movies and comedy_movies:
            direct(director, rng.choice(action_movies))
            direct(director, rng.choice(comedy_movies))

    # Q7 — a few actors in two distinct action movies.
    if len(action_movies) >= 2:
        for actor in rng.sample(people, min(8, len(people))):
            m1, m2 = rng.sample(action_movies, 2)
            cast(actor, m1)
            cast(actor, m2)

    return db
