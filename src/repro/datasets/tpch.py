"""A deterministic, scaled-down TPC-H data generator.

Generates the eight TPC-H relations with the columns the paper's CQ-adapted
query workload touches.  The paper samples a 1 GB instance; the algorithms
only ever see a K-example (a handful of annotated tuples) plus an
abstraction tree, so a small in-process instance with the same join
structure preserves every behaviour the experiments measure (see the
substitution notes in DESIGN.md).

Key ranges are offset into disjoint bands (customers 10000+, orders
20000+, parts 30000+, suppliers 40000+) so value collisions between
unrelated columns — which would add accidental join edges to generated
consistent queries — are rare, as they are at full TPC-H scale.
"""

from __future__ import annotations

import random

from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.seeding import DEFAULT_SEED

TPCH_SCHEMA = Schema.from_dict({
    "region": ["regionkey", "name"],
    "nation": ["nationkey", "name", "regionkey"],
    "supplier": ["suppkey", "name", "nationkey", "acctbal"],
    "part": ["partkey", "name", "brand", "type"],
    "partsupp": ["partkey", "suppkey", "supplycost"],
    "customer": ["custkey", "name", "nationkey", "mktsegment", "acctbal"],
    "orders": ["orderkey", "custkey", "orderstatus", "orderdate", "orderpriority"],
    "lineitem": ["orderkey", "partkey", "suppkey", "quantity", "extendedprice",
                 "returnflag", "shipdate"],
})

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
_FLAGS = ["R", "A", "N"]
_STATUS = ["O", "F", "P"]

# Disjoint key bands so unrelated columns rarely share values.
_CUST_BASE = 10_000
_ORDER_BASE = 20_000
_PART_BASE = 30_000
_SUPP_BASE = 40_000


def generate_tpch(scale: float = 0.01, seed: int = DEFAULT_SEED) -> KDatabase:
    """Generate a TPC-H K-database.

    ``scale`` mirrors the TPC-H scale factor proportionally: at 1.0 the
    instance has 1500 customers, 15000 orders, and ~60000 lineitems (a
    1000x-reduced 1 GB shape); the default 0.01 yields a few hundred
    tuples, enough to drive every query in the workload.  Annotations
    follow dbgen conventions (``c<k>``, ``o<k>``, ``l<k>_<n>``, ...).
    """
    rng = random.Random(seed)
    db = KDatabase(TPCH_SCHEMA)

    n_customers = max(10, int(1500 * scale))
    n_orders = max(20, int(15000 * scale))
    n_parts = max(8, int(2000 * scale))
    n_suppliers = max(4, int(100 * scale))
    max_lines_per_order = 4

    for key, name in enumerate(_REGIONS):
        db.insert("region", (key, name), f"r{key}")
    for key, (name, region) in enumerate(_NATIONS):
        db.insert("nation", (key, name, region), f"n{key}")

    for i in range(n_suppliers):
        key = _SUPP_BASE + i
        db.insert(
            "supplier",
            (key, f"Supplier#{key}", rng.randrange(len(_NATIONS)),
             500 * rng.randrange(2, 20)),
            f"s{key}",
        )

    for i in range(n_parts):
        key = _PART_BASE + i
        db.insert(
            "part",
            (key, f"Part#{key}", rng.choice(_BRANDS), rng.choice(_TYPES)),
            f"p{key}",
        )
        for j in range(rng.randint(1, 2)):
            supp = _SUPP_BASE + rng.randrange(n_suppliers)
            annotation = f"ps{key}_{j}"
            db.insert("partsupp", (key, supp, 50 * rng.randrange(2, 20)),
                      annotation)

    for i in range(n_customers):
        key = _CUST_BASE + i
        db.insert(
            "customer",
            (key, f"Customer#{key}", rng.randrange(len(_NATIONS)),
             rng.choice(_SEGMENTS), 500 * rng.randrange(2, 20)),
            f"c{key}",
        )

    for i in range(n_orders):
        key = _ORDER_BASE + i
        cust = _CUST_BASE + rng.randrange(n_customers)
        date = 19_920_101 + rng.randrange(0, 70_000)
        db.insert(
            "orders",
            (key, cust, rng.choice(_STATUS), date, rng.choice(_PRIORITIES)),
            f"o{key}",
        )
        for line in range(rng.randint(2, max_lines_per_order)):
            part = _PART_BASE + rng.randrange(n_parts)
            supp = _SUPP_BASE + rng.randrange(n_suppliers)
            db.insert(
                "lineitem",
                (key, part, supp, rng.randint(1, 25),
                 1_000 * rng.randrange(90, 100), rng.choice(_FLAGS),
                 date + 10 * rng.randint(1, 9)),
                f"l{key}_{line}",
            )

    _plant_query_patterns(db, rng, n_parts)
    return db


def _plant_query_patterns(db: KDatabase, rng: random.Random, n_parts: int) -> None:
    """Seed the sparse patterns Q5, Q7, and Q21 look for.

    At the reduced scales used here, purely random generation rarely
    produces (a) customers and suppliers sharing an ASIA nation on the same
    order (Q5), (b) French suppliers shipping to several nations (Q7), or
    (c) Saudi suppliers on multi-line 'F' orders (Q21) — patterns that are
    plentiful at the paper's 1 GB scale.  Planting a handful keeps every
    workload query answerable with >= 5 distinct outputs.
    """
    nation_key = {name: idx for idx, (name, _) in enumerate(_NATIONS)}
    asia_nations = ["INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM"]
    cust_nations = ["GERMANY", "BRAZIL", "JAPAN", "EGYPT", "KENYA"]

    supp_key = _SUPP_BASE + 900
    cust_key = _CUST_BASE + 9_000
    order_key = _ORDER_BASE + 90_000

    def add_supplier(nation: str) -> int:
        nonlocal supp_key
        supp_key += 1
        db.insert(
            "supplier",
            (supp_key, f"Supplier#{supp_key}", nation_key[nation],
             500 * rng.randrange(2, 20)),
            f"s{supp_key}",
        )
        return supp_key

    def add_customer(nation: str, segment: str) -> int:
        nonlocal cust_key
        cust_key += 1
        db.insert(
            "customer",
            (cust_key, f"Customer#{cust_key}", nation_key[nation], segment,
             500 * rng.randrange(2, 20)),
            f"c{cust_key}",
        )
        return cust_key

    def add_order(cust: int, status: str, lines: list[int]) -> int:
        nonlocal order_key
        order_key += 1
        date = 19_940_101 + rng.randrange(0, 10_000)
        db.insert(
            "orders",
            (order_key, cust, status, date, rng.choice(_PRIORITIES)),
            f"o{order_key}",
        )
        for index, supp in enumerate(lines):
            part = _PART_BASE + rng.randrange(n_parts)
            db.insert(
                "lineitem",
                (order_key, part, supp, rng.randint(1, 25),
                 1_000 * rng.randrange(90, 100), rng.choice(_FLAGS),
                 date + 10 * rng.randint(1, 9)),
                f"l{order_key}_{index}",
            )
        return order_key

    # Q5: customer and supplier in the same ASIA nation, joined by an order.
    for nation in asia_nations:
        supp = add_supplier(nation)
        cust = add_customer(nation, rng.choice(_SEGMENTS))
        add_order(cust, rng.choice(_STATUS), [supp])

    # Q7: French suppliers shipping to customers in several nations.
    for nation in cust_nations:
        supp = add_supplier("FRANCE")
        cust = add_customer(nation, rng.choice(_SEGMENTS))
        add_order(cust, rng.choice(_STATUS), [supp])

    # Q9: Brand#11 parts supplied (with partsupp rows) from several nations.
    part_key = _PART_BASE + 9_000
    for nation in ("FRANCE", "GERMANY", "CHINA", "PERU", "KENYA"):
        part_key += 1
        db.insert(
            "part",
            (part_key, f"Part#{part_key}", "Brand#11", rng.choice(_TYPES)),
            f"p{part_key}",
        )
        supp = add_supplier(nation)
        db.insert(
            "partsupp",
            (part_key, supp, 50 * rng.randrange(2, 20)),
            f"ps{part_key}_0",
        )
        cust = add_customer(nation, rng.choice(_SEGMENTS))
        order = add_order(cust, rng.choice(_STATUS), [])
        db.insert(
            "lineitem",
            (order, part_key, supp, rng.randint(1, 25),
             1_000 * rng.randrange(90, 100), rng.choice(_FLAGS),
             19_950_101 + 10 * rng.randrange(0, 100)),
            f"l{order}_b11",
        )

    # Q21: Saudi suppliers on 'F' orders carrying three lineitems.
    for _ in range(5):
        saudi = add_supplier("SAUDI ARABIA")
        other_a = add_supplier(rng.choice(asia_nations))
        other_b = add_supplier(rng.choice(cust_nations))
        cust = add_customer(rng.choice(cust_nations), rng.choice(_SEGMENTS))
        add_order(cust, "F", [saudi, other_a, other_b])
