"""The paper's query workload (Table 6), adapted to CQs.

TPC-H queries are converted exactly as the paper describes: aggregation and
arithmetic predicates are dropped, leaving the join structure plus a
representative constant.  Atom and join counts match Table 6 (TPCH-Q3: 3/2,
Q4: 2/1, Q5: 7/6, Q7: 6/5, Q9: 6/5, Q10: 4/3, Q21: 6/5 with a triple
``lineitem`` self-join; IMDB-Q1..Q7 as described in Section 5.1).

Each query is stored as an *ordered* atom list such that every prefix of at
least two atoms is connected and binds the head variable; Figure 16's
join-count sweep (``join_variants``) takes growing prefixes.
"""

from __future__ import annotations

from repro.errors import ParseError, ReproError
from repro.query.ast import CQ, Atom, Variable
from repro.query.parser import parse_cq

# --- TPC-H -----------------------------------------------------------------

TPCH_QUERIES: dict[str, CQ] = {
    # Q3: shipping priority — customer x orders x lineitem.
    "TPCH-Q3": parse_cq(
        "Q(ok) :- orders(ok, ck, st, od, op),"
        " customer(ck, cn, nk, 'BUILDING', ab),"
        " lineitem(ok, pk, sk, qty, ep, rf, sd)"
    ),
    # Q4: order priority checking — orders x lineitem.
    "TPCH-Q4": parse_cq(
        "Q(ok) :- orders(ok, ck, st, od, '1-URGENT'),"
        " lineitem(ok, pk, sk, qty, ep, rf, sd)"
    ),
    # Q5: local supplier volume (+part, to match Table 6's 7 atoms).
    "TPCH-Q5": parse_cq(
        "Q(nn) :- customer(ck, cn, nk, seg, ab),"
        " orders(ok, ck, st, od, op),"
        " lineitem(ok, pk, sk, qty, ep, rf, sd),"
        " part(pk, pn, br, tp),"
        " supplier(sk, sn, nk, sab),"
        " nation(nk, nn, rk),"
        " region(rk, 'ASIA')"
    ),
    # Q7: volume shipping — two nations.
    "TPCH-Q7": parse_cq(
        "Q(sn2) :- supplier(sk, sn, nk1, sab),"
        " lineitem(ok, pk, sk, qty, ep, rf, sd),"
        " orders(ok, ck, st, od, op),"
        " customer(ck, cn, nk2, seg, ab),"
        " nation(nk1, 'FRANCE', rk1),"
        " nation(nk2, sn2, rk2)"
    ),
    # Q9: product type profit measure.
    "TPCH-Q9": parse_cq(
        "Q(nn) :- lineitem(ok, pk, sk, qty, ep, rf, sd),"
        " part(pk, pn, 'Brand#11', tp),"
        " partsupp(pk, sk, sc),"
        " supplier(sk, sn, nk, sab),"
        " orders(ok, ck, st, od, op),"
        " nation(nk, nn, rk)"
    ),
    # Q10: returned item reporting.
    "TPCH-Q10": parse_cq(
        "Q(cn) :- customer(ck, cn, nk, seg, ab),"
        " orders(ok, ck, st, od, op),"
        " lineitem(ok, pk, sk, qty, ep, 'R', sd),"
        " nation(nk, nn, rk)"
    ),
    # Q21: suppliers who kept orders waiting — triple lineitem self-join.
    "TPCH-Q21": parse_cq(
        "Q(sn) :- supplier(sk, sn, nk, sab),"
        " lineitem(ok, pk1, sk, q1, e1, f1, d1),"
        " orders(ok, ck, 'F', od, op),"
        " lineitem(ok, pk2, sk2, q2, e2, f2, d2),"
        " lineitem(ok, pk3, sk3, q3, e3, f3, d3),"
        " nation(nk, 'SAUDI ARABIA', rk)"
    ),
}

# --- IMDB --------------------------------------------------------------------

IMDB_QUERIES: dict[str, CQ] = {
    # Q1: actors starring in a movie from 1995.
    "IMDB-Q1": parse_cq(
        "Q(pn) :- person(p, pn, by, co),"
        " casts(p, m),"
        " movie(m, t, 1995)"
    ),
    # Q2: actors in a drama movie directed by an American director.
    "IMDB-Q2": parse_cq(
        "Q(pn) :- person(p, pn, by, co),"
        " casts(p, m),"
        " movie(m, t, y),"
        " genre(m, 'Drama'),"
        " directs(d, m),"
        " person(d, dn, dby, 'USA')"
    ),
    # Q3: actors with a Bacon number of 1.
    "IMDB-Q3": parse_cq(
        "Q(pn) :- person(p, pn, by, co),"
        " casts(p, m),"
        " movie(m, t, y),"
        " casts(kb, m),"
        " person(kb, 'Kevin Bacon', kby, kco)"
    ),
    # Q4: directors with both an action and a comedy movie.
    "IMDB-Q4": parse_cq(
        "Q(dn) :- person(d, dn, by, co),"
        " directs(d, m1),"
        " movie(m1, t1, y1),"
        " genre(m1, 'Action'),"
        " directs(d, m2),"
        " movie(m2, t2, y2),"
        " genre(m2, 'Comedy')"
    ),
    # Q5: comedy movies starring an actor born in 1978.
    "IMDB-Q5": parse_cq(
        "Q(t) :- movie(m, t, y),"
        " genre(m, 'Comedy'),"
        " casts(p, m),"
        " person(p, pn, 1978, co)"
    ),
    # Q6: directors of a movie starring Tom Cruise.
    "IMDB-Q6": parse_cq(
        "Q(dn) :- person(d, dn, by, co),"
        " directs(d, m),"
        " movie(m, t, y),"
        " casts(tc, m),"
        " person(tc, 'Tom Cruise', tby, tco)"
    ),
    # Q7: actors in at least two action movies.
    "IMDB-Q7": parse_cq(
        "Q(pn) :- person(p, pn, by, co),"
        " casts(p, m1),"
        " movie(m1, t1, y1),"
        " genre(m1, 'Action'),"
        " casts(p, m2),"
        " movie(m2, t2, y2),"
        " genre(m2, 'Comedy')"
    ),
}

# IMDB-Q7 in the paper is two *action* movies; a self-join on identical
# (casts, movie, genre('Action')) triples would make the two halves
# symmetric and the minimal example degenerate, so we follow the paper's
# experimental role for Q7 (a 7-atom, 6-join query) with distinct genre
# constants.  The purist variant is available as IMDB_Q7_STRICT.
IMDB_Q7_STRICT: CQ = parse_cq(
    "Q(pn) :- person(p, pn, by, co),"
    " casts(p, m1),"
    " movie(m1, t1, y1),"
    " genre(m1, 'Action'),"
    " casts(p, m2),"
    " movie(m2, t2, y2),"
    " genre(m2, 'Action')"
)


def all_queries() -> dict[str, CQ]:
    """Every workload query keyed by its paper name."""
    out = dict(TPCH_QUERIES)
    out.update(IMDB_QUERIES)
    return out


def get_query(name: str) -> CQ:
    """Look up a workload query (``"TPCH-Q3"``, ``"IMDB-Q5"``, ...)."""
    queries = all_queries()
    try:
        return queries[name]
    except KeyError:
        raise ReproError(
            f"unknown query {name!r}; available: {sorted(queries)}"
        ) from None


def query_stats() -> dict[str, tuple[int, int]]:
    """``{name: (atoms, joins)}`` — reproduces Table 6."""
    return {
        name: (len(q.body), q.num_joins()) for name, q in all_queries().items()
    }


def join_variants(name: str, min_joins: int = 3) -> list[tuple[int, CQ]]:
    """Growing-prefix versions of a query for the Figure 16 join sweep.

    Returns ``[(n_joins, query), ...]`` starting at ``min_joins`` and ending
    at the full query.  Atom lists are ordered so every prefix is connected
    and binds the head variable.
    """
    query = get_query(name)
    variants = []
    for n_atoms in range(2, len(query.body) + 1):
        atoms = query.body[:n_atoms]
        try:
            prefix = CQ(query.head, atoms)
        except ParseError:
            # The head variable binds in a later atom; project the first
            # variable (in term order) of the first atom instead — usually
            # the atom's key, which varies across rows (the sweep measures
            # runtime versus join count, not query semantics).
            first_var = next(
                t for t in atoms[0].terms if isinstance(t, Variable)
            )
            prefix = CQ(Atom(query.head.relation, [first_var]), atoms)
        joins = prefix.num_joins()
        if joins >= min_joins:
            variants.append((joins, prefix))
    if not variants:
        raise ReproError(
            f"{name} has fewer than {min_joins} joins; cannot build variants"
        )
    return variants
