"""Experiment settings (the paper's Table 5, scaled down).

The paper's basic setting is: privacy threshold 5; a 5-level tree with
10000 leaves; 2-row K-examples; uniform LOI distribution; 1 GB data.  Pure
Python trades constant factors for clarity, so the defaults here shrink the
data and tree sizes while sweeping the *same parameters over the same
relative ranges* — the shapes the figures compare are preserved (see
DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.seeding import DEFAULT_SEED


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared defaults for every figure runner."""

    privacy_threshold: int = 5
    tree_leaves: int = 200
    tree_height: int = 5
    kexample_rows: int = 2
    tpch_scale: float = 0.02
    imdb_people: int = 120
    imdb_movies: int = 80
    # Shared with every generator default (repro.seeding): the settings
    # profile and a bare generate_tpch()/generate_imdb()/tree call now
    # produce the same data at the same scale.
    seed: int = DEFAULT_SEED
    # The sweeps (paper ranges in comments).
    thresholds: tuple[int, ...] = (2, 5, 8, 11, 14, 17, 20)  # paper: 2..20
    tree_sizes: tuple[int, ...] = (100, 200, 400, 800)       # paper: 10K..810K
    tree_heights: tuple[int, ...] = (2, 3, 4, 5, 6, 7)       # paper heights
    row_counts: tuple[int, ...] = (2, 3, 4)                  # paper: 2..5+
    # Queries whose curves the paper plots (Section 5.1 omits the
    # near-duplicate curves of Q5/Q9/IMDB-Q3/IMDB-Q4).
    plotted_queries: tuple[str, ...] = (
        "TPCH-Q3", "TPCH-Q4", "TPCH-Q7", "TPCH-Q10", "TPCH-Q21",
        "IMDB-Q1", "IMDB-Q2", "IMDB-Q5", "IMDB-Q6", "IMDB-Q7",
    )
    # A fast subset for benchmark runs (full set via the module mains).
    bench_queries: tuple[str, ...] = ("TPCH-Q3", "TPCH-Q10", "IMDB-Q1")
    join_sweep_queries: tuple[str, ...] = (
        "TPCH-Q5", "TPCH-Q7", "TPCH-Q9", "TPCH-Q21",
        "IMDB-Q2", "IMDB-Q4", "IMDB-Q7",
    )
    max_candidates: int = 30_000
    # Per-search wall-clock budget (None = unbounded).
    max_seconds: "float | None" = 60.0
    # Worker processes for the sweep harness (1 = serial in-process;
    # 0/negative = one per CPU core).  Sweeps fan out per-(query, point)
    # jobs through repro.batch regardless; this only sets the pool size.
    batch_workers: int = 1

    def to_payload(self) -> dict:
        """A JSON-ready dict of every field (tuples become lists).

        The fleet claim endpoint ships this so remote workers run under
        exactly the service's settings — the settings participate in
        ``job_content_hash``, so anything less would let a worker
        compute (and cache) results for different inputs than the
        service hashed.
        """
        payload = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentSettings":
        """Rebuild settings from :meth:`to_payload` output, losslessly.

        Lists come back as tuples (JSON has no tuples); unknown fields
        are rejected so a version-skewed worker fails loudly instead of
        silently running under different settings.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise TypeError(
                f"unknown ExperimentSettings fields: {', '.join(unknown)}"
            )
        return cls(**{
            key: tuple(value) if isinstance(value, list) else value
            for key, value in payload.items()
        })


DEFAULT_SETTINGS = ExperimentSettings()

#: A reduced-size profile for CI / pytest-benchmark runs.
FAST_SETTINGS = ExperimentSettings(
    thresholds=(2, 5, 8),
    tree_sizes=(50, 100, 200),
    tree_heights=(3, 4, 5),
    row_counts=(2, 3),
    tree_leaves=100,
    max_candidates=8_000,
    max_seconds=20.0,
)
