"""Runners for every figure and table of the paper's evaluation (Section 5).

Each function sweeps the parameter its figure varies and returns
``{series_name: [(x, y), ...]}``.  Figures 9-11 share one threshold sweep,
12-13 one tree-size sweep, and 14-15 one height sweep; the shared sweeps
are memoized per (settings, queries) so regenerating both figures costs one
run.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.batch import BatchJob
from repro.core.brute_force import brute_force_config
from repro.core.compression import compression_baseline
from repro.core.dual import find_dual_optimal_abstraction
from repro.core.loi import LeafWeightDistribution
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.datasets.queries import join_variants, query_stats
from repro.experiments.runner import prepare_context, run_sweep, timed_optimal
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.obs import clock

Series = dict[str, list[tuple[float, float]]]

_SWEEP_CACHE: dict[tuple, dict] = {}


def _queries(settings: ExperimentSettings, queries: Optional[Sequence[str]]):
    return tuple(queries) if queries is not None else settings.plotted_queries


# --------------------------------------------------------------------------
# Figures 9, 10, 11 — privacy-threshold sweep
# --------------------------------------------------------------------------

def _threshold_sweep(
    settings: ExperimentSettings, queries: tuple[str, ...]
) -> dict[str, list[tuple[int, float, int, float]]]:
    """Per query: ``[(k, seconds, edges_used, loi), ...]``."""
    key = ("threshold", settings, queries)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    jobs = [
        BatchJob(name, k)
        for name in queries
        for k in settings.thresholds
    ]
    batch = run_sweep(jobs, settings)
    out: dict[str, list[tuple[int, float, int, float]]] = {n: [] for n in queries}
    for result in batch.results:
        loi = result.loi if result.found else math.nan
        edges = result.edges_used if result.found else -1
        out[result.job.query_name].append(
            (result.job.threshold, result.seconds, edges, loi)
        )
    _SWEEP_CACHE[key] = out
    return out


def run_fig09_threshold_runtime(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 9: runtime vs privacy threshold."""
    sweep = _threshold_sweep(settings, _queries(settings, queries))
    return {
        name: [(k, seconds) for k, seconds, _, _ in points]
        for name, points in sweep.items()
    }


def run_fig10_threshold_size(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 10: optimal abstraction size (tree edges used) vs threshold."""
    sweep = _threshold_sweep(settings, _queries(settings, queries))
    return {
        name: [(k, edges) for k, _, edges, _ in points]
        for name, points in sweep.items()
    }


def run_fig11_threshold_loi(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 11: loss of information vs threshold."""
    sweep = _threshold_sweep(settings, _queries(settings, queries))
    return {
        name: [(k, loi) for k, _, _, loi in points]
        for name, points in sweep.items()
    }


# --------------------------------------------------------------------------
# Figures 12, 13 — tree-size sweep
# --------------------------------------------------------------------------

def _treesize_sweep(
    settings: ExperimentSettings, queries: tuple[str, ...]
) -> dict[str, list[tuple[int, float, int]]]:
    key = ("treesize", settings, queries)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    jobs = [
        BatchJob(name, settings.privacy_threshold, n_leaves=n_leaves)
        for name in queries
        for n_leaves in settings.tree_sizes
    ]
    batch = run_sweep(jobs, settings)
    out: dict[str, list[tuple[int, float, int]]] = {n: [] for n in queries}
    for result in batch.results:
        edges = result.edges_used if result.found else -1
        out[result.job.query_name].append(
            (result.job.n_leaves, result.seconds, edges)
        )
    _SWEEP_CACHE[key] = out
    return out


def run_fig12_treesize_runtime(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 12: runtime vs abstraction tree size (leaf count)."""
    sweep = _treesize_sweep(settings, _queries(settings, queries))
    return {
        name: [(leaves, seconds) for leaves, seconds, _ in points]
        for name, points in sweep.items()
    }


def run_fig13_treesize_size(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 13: optimal abstraction size vs tree size."""
    sweep = _treesize_sweep(settings, _queries(settings, queries))
    return {
        name: [(leaves, edges) for leaves, _, edges in points]
        for name, points in sweep.items()
    }


# --------------------------------------------------------------------------
# Figures 14, 15 — tree-height sweep
# --------------------------------------------------------------------------

def _height_sweep(
    settings: ExperimentSettings, queries: tuple[str, ...]
) -> dict[str, list[tuple[int, float, int]]]:
    key = ("height", settings, queries)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    jobs = [
        BatchJob(name, settings.privacy_threshold, height=height)
        for name in queries
        for height in settings.tree_heights
    ]
    batch = run_sweep(jobs, settings)
    out: dict[str, list[tuple[int, float, int]]] = {n: [] for n in queries}
    for result in batch.results:
        edges = result.edges_used if result.found else -1
        out[result.job.query_name].append(
            (result.job.height, result.seconds, edges)
        )
    _SWEEP_CACHE[key] = out
    return out


def run_fig14_height_runtime(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 14: runtime vs abstraction tree height."""
    sweep = _height_sweep(settings, _queries(settings, queries))
    return {
        name: [(height, seconds) for height, seconds, _ in points]
        for name, points in sweep.items()
    }


def run_fig15_height_size(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 15: optimal abstraction size vs tree height."""
    sweep = _height_sweep(settings, _queries(settings, queries))
    return {
        name: [(height, edges) for height, _, edges in points]
        for name, points in sweep.items()
    }


# --------------------------------------------------------------------------
# Figure 16 — join-count sweep
# --------------------------------------------------------------------------

def run_fig16_joins_runtime(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 16: runtime vs number of joins (growing query prefixes)."""
    names = tuple(queries) if queries is not None else settings.join_sweep_queries
    out: Series = {}
    for name in names:
        points = []
        for n_joins, variant in join_variants(name):
            context = prepare_context(name, settings, query=variant)
            _, seconds = timed_optimal(context, settings.privacy_threshold)
            points.append((n_joins, seconds))
        out[name] = points
    return out


# --------------------------------------------------------------------------
# Figure 17 — K-example row sweep
# --------------------------------------------------------------------------

def run_fig17_rows_runtime(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 17: runtime vs number of K-example rows."""
    out: Series = {}
    for name in _queries(settings, queries):
        points = []
        for n_rows in settings.row_counts:
            context = prepare_context(name, settings, n_rows=n_rows)
            _, seconds = timed_optimal(context, settings.privacy_threshold)
            points.append((n_rows, seconds))
        out[name] = points
    return out


# --------------------------------------------------------------------------
# Figure 18 — ours vs the compression baseline [24]
# --------------------------------------------------------------------------

def run_fig18_compression_loi(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Figure 18: LOI of our optimum vs the compression baseline, per k."""
    out: Series = {}
    for name in _queries(settings, queries):
        context = prepare_context(name, settings)
        ours, theirs = [], []
        for k in settings.thresholds:
            result, _ = timed_optimal(context, k)
            ours.append((k, result.loi if result.found else math.nan))
            baseline = compression_baseline(
                context.example, context.tree, k,
                privacy_config=PrivacyConfig(max_concretizations=20_000),
            )
            theirs.append((k, baseline.loi if baseline.found else math.nan))
        out[f"{name} (ours)"] = ours
        out[f"{name} (compression [24])"] = theirs
    return out


# --------------------------------------------------------------------------
# Figure 19 — per-component ablation vs brute force
# --------------------------------------------------------------------------

#: The five components of Section 4.1, each enabled standalone.
#: "sorting" includes the l < l_best gate of Algorithm 2 line 6 — sorted
#: scanning is meaningless without it, and the paper quotes the two
#: search-side components together ("improved performance by over 500x").
ABLATION_COMPONENTS: dict[str, OptimizerConfig] = {
    "sorting": OptimizerConfig(
        sort_abstractions=True, loi_first=True, prune_dominated=True,
        privacy=PrivacyConfig(
            row_by_row=False, connectivity_filter=False,
            cache_queries=False, cache_connectivity=False,
        ),
    ),
    "loi-first": OptimizerConfig(
        sort_abstractions=False, loi_first=True, prune_dominated=False,
        privacy=PrivacyConfig(
            row_by_row=False, connectivity_filter=False,
            cache_queries=False, cache_connectivity=False,
        ),
    ),
    "row-by-row": OptimizerConfig(
        sort_abstractions=False, loi_first=False, prune_dominated=False,
        privacy=PrivacyConfig(
            row_by_row=True, connectivity_filter=False,
            cache_queries=False, cache_connectivity=False,
        ),
    ),
    "connectivity": OptimizerConfig(
        sort_abstractions=False, loi_first=False, prune_dominated=False,
        privacy=PrivacyConfig(
            row_by_row=False, connectivity_filter=True,
            cache_queries=False, cache_connectivity=False,
        ),
    ),
    "caching": OptimizerConfig(
        sort_abstractions=False, loi_first=False, prune_dominated=False,
        privacy=PrivacyConfig(
            row_by_row=False, connectivity_filter=False,
            cache_queries=True, cache_connectivity=True,
        ),
    ),
}


def run_fig19_component_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
    threshold: int = 2,
    n_leaves: int = 30,
    height: int = 3,
    budget_seconds: Optional[float] = 120.0,
) -> Series:
    """Figure 19: each component standalone, as % of brute-force runtime.

    Uses a deliberately small tree so the (cache-less, unordered,
    monolithic) brute force finishes; the paper normalizes the same way
    (brute force = 100%).  ``budget_seconds`` caps each measured run; a
    brute force that hits the cap makes the reported speedups conservative.
    """
    import dataclasses

    names = tuple(queries) if queries is not None else ("TPCH-Q3", "IMDB-Q1")
    out: Series = {}
    for name in names:
        context = prepare_context(name, settings, n_leaves=n_leaves, height=height)
        base_config = dataclasses.replace(
            brute_force_config(), max_seconds=budget_seconds
        )
        _, base_seconds = timed_optimal(context, threshold, config=base_config)
        points = [(0, 100.0)]  # brute force reference
        for idx, (component, config) in enumerate(ABLATION_COMPONENTS.items(), 1):
            capped = dataclasses.replace(config, max_seconds=budget_seconds)
            _, seconds = timed_optimal(context, threshold, config=capped)
            points.append((idx, 100.0 * seconds / base_seconds))
        out[name] = points
    return out


#: x-axis labels for the ablation series (index 0 is brute force).
ABLATION_LABELS = ["brute-force", *ABLATION_COMPONENTS.keys()]


# --------------------------------------------------------------------------
# Tables 3 and 6, distribution sensitivity, dual problem
# --------------------------------------------------------------------------

def run_table3_running_example() -> dict[str, int]:
    """Table 3: consistent/connected/CIM counts for the running example."""
    from repro.examples_data import running_example

    db, qreal, tree = running_example()
    from repro.provenance.builder import build_kexample
    from repro.abstraction.function import AbstractionFunction
    from repro.query.join_graph import is_connected
    from repro.core.consistency import consistent_queries
    from repro.core.privacy import PrivacyComputer

    example = build_kexample(qreal, db, n_rows=2)
    function = AbstractionFunction.uniform(
        tree, example, {"h1": "Facebook", "h2": "LinkedIn"}
    )
    abstracted = function.apply(example)

    computer = PrivacyComputer(tree, db.registry)
    engine = computer.engine
    consistent: set = set()
    for concretization in engine.concretizations(abstracted):
        consistent.update(consistent_queries(concretization))
    connected = {q for q in consistent if is_connected(q)}
    cim = computer.cim_queries(abstracted)
    return {
        "consistent": len(consistent),
        "connected": len(connected),
        "cim": len(cim),
    }


def run_table6_query_stats() -> dict[str, tuple[int, int]]:
    """Table 6: per-query atom and join counts (joins = atoms - 1)."""
    return {
        name: (atoms, atoms - 1) for name, (atoms, _) in query_stats().items()
    }


def run_distribution_sensitivity(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Section 5.2: runtimes under uniform vs random-weight distributions."""
    out: Series = {}
    rng = random.Random(settings.seed)
    for name in _queries(settings, queries):
        context = prepare_context(name, settings)
        _, uniform_seconds = timed_optimal(context, settings.privacy_threshold)
        weights = {leaf: rng.uniform(0.5, 2.0) for leaf in context.tree.leaves()}

        start = clock.perf_counter()
        find_optimal_abstraction(
            context.example, context.tree, settings.privacy_threshold,
            config=OptimizerConfig(
                max_candidates=settings.max_candidates,
                max_seconds=settings.max_seconds,
            ),
            distribution=LeafWeightDistribution(weights),
        )
        weighted_seconds = clock.perf_counter() - start
        out[name] = [(0, uniform_seconds), (1, weighted_seconds)]
    return out


def run_dual_problem(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    queries: Optional[Sequence[str]] = None,
) -> Series:
    """Section 4.2: dual problem (max privacy s.t. LOI cap) vs primal."""
    out: Series = {}
    for name in _queries(settings, queries):
        context = prepare_context(name, settings)
        primal, primal_seconds = timed_optimal(context, settings.privacy_threshold)
        cap = primal.loi if primal.found else 5.0

        start = clock.perf_counter()
        dual = find_dual_optimal_abstraction(
            context.example, context.tree, max_loi=cap,
            config=OptimizerConfig(
                max_candidates=settings.max_candidates,
                max_seconds=settings.max_seconds,
            ),
        )
        dual_seconds = clock.perf_counter() - start
        out[name] = [
            (0, primal_seconds),
            (1, dual_seconds),
            (2, float(dual.privacy)),
        ]
    return out
