"""Command-line entry point: regenerate the paper's figures as text tables.

Usage::

    python -m repro.experiments.main                 # fast profile
    python -m repro.experiments.main --profile default
    python -m repro.experiments.main --figures 9 11 18
"""

from __future__ import annotations

import argparse

from repro.experiments import figures
from repro.experiments.report import print_series
from repro.experiments.settings import DEFAULT_SETTINGS, FAST_SETTINGS
from repro.obs import clock

RUNNERS = {
    "9": ("Figure 9: runtime vs privacy threshold",
          figures.run_fig09_threshold_runtime, "k", "seconds"),
    "10": ("Figure 10: abstraction size vs privacy threshold",
           figures.run_fig10_threshold_size, "k", "edges"),
    "11": ("Figure 11: LOI vs privacy threshold",
           figures.run_fig11_threshold_loi, "k", "LOI"),
    "12": ("Figure 12: runtime vs tree size",
           figures.run_fig12_treesize_runtime, "leaves", "seconds"),
    "13": ("Figure 13: abstraction size vs tree size",
           figures.run_fig13_treesize_size, "leaves", "edges"),
    "14": ("Figure 14: runtime vs tree height",
           figures.run_fig14_height_runtime, "height", "seconds"),
    "15": ("Figure 15: abstraction size vs tree height",
           figures.run_fig15_height_size, "height", "edges"),
    "16": ("Figure 16: runtime vs number of joins",
           figures.run_fig16_joins_runtime, "joins", "seconds"),
    "17": ("Figure 17: runtime vs K-example rows",
           figures.run_fig17_rows_runtime, "rows", "seconds"),
    "18": ("Figure 18: LOI, ours vs compression [24]",
           figures.run_fig18_compression_loi, "k", "LOI"),
    "19": ("Figure 19: component ablation (% of brute force)",
           figures.run_fig19_component_ablation, "component", "%"),
    "dist": ("LOI-distribution sensitivity",
             figures.run_distribution_sensitivity, "distribution", "seconds"),
    "dual": ("Dual problem",
             figures.run_dual_problem, "metric", "value"),
}


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=("fast", "default"), default="fast",
        help="fast: reduced sweeps (minutes); default: full sweeps (hours)",
    )
    parser.add_argument(
        "--figures", nargs="*", default=sorted(RUNNERS),
        help=f"which figures to run (choices: {', '.join(sorted(RUNNERS))})",
    )
    parser.add_argument(
        "--queries", nargs="*", default=None,
        help="restrict to specific workload queries (e.g. TPCH-Q3 IMDB-Q1)",
    )
    args = parser.parse_args(argv)

    settings = FAST_SETTINGS if args.profile == "fast" else DEFAULT_SETTINGS
    for key in args.figures:
        if key not in RUNNERS:
            parser.error(f"unknown figure {key!r}")
        title, runner, x_label, y_label = RUNNERS[key]
        start = clock.perf_counter()
        series = runner(settings, queries=args.queries)
        elapsed = clock.perf_counter() - start
        print_series(f"{title}  [{elapsed:.1f}s]", series,
                     x_label=x_label, y_label=y_label)

    print("Table 3:", figures.run_table3_running_example())
    print("Table 6:", figures.run_table6_query_stats())


if __name__ == "__main__":
    main()
