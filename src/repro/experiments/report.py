"""Plain-text rendering of experiment series (the figures, as tables)."""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def format_series(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    y_format: str = "{:.4g}",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an aligned text table."""
    xs: list[float] = sorted({x for points in series.values() for x, _ in points})
    header = [x_label.ljust(28)] + [f"{x:>10g}" for x in xs]
    lines = [title, "=" * len(title), "".join(header)]
    for name in sorted(series):
        lookup = dict(series[name])
        cells = []
        for x in xs:
            y = lookup.get(x)
            if y is None or (isinstance(y, float) and math.isnan(y)):
                cells.append(f"{'-':>10}")
            else:
                cells.append(f"{y_format.format(y):>10}")
        lines.append(name.ljust(28) + "".join(cells))
    lines.append(f"(y = {y_label})")
    return "\n".join(lines)


def print_series(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> None:
    """Print a series table to stdout."""
    print(format_series(title, series, x_label=x_label, y_label=y_label))
    print()
