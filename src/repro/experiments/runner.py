"""Shared machinery for the experiment suite.

``prepare_context`` assembles everything one experiment run needs — the
right database (TPC-H or IMDB by query name), the query, a K-example of the
requested size, and a paper-style abstraction tree over it — with caching so
sweeps do not regenerate data per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.abstraction.tree import AbstractionTree
from repro.core.optimizer import (
    OptimalAbstractionResult,
    OptimizerConfig,
    find_optimal_abstraction,
)
from repro.core.privacy import PrivacyConfig, PrivacySession
from repro.datasets.imdb import generate_imdb
from repro.datasets.queries import get_query
from repro.datasets.tpch import generate_tpch
from repro.db.database import KDatabase
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.obs import clock
from repro.provenance.builder import build_kexample
from repro.provenance.kexample import KExample
from repro.query.ast import CQ


@dataclass
class ExperimentContext:
    """One experiment's inputs: database, query, K-example, tree."""

    query_name: str
    query: CQ
    database: KDatabase
    example: KExample
    tree: AbstractionTree
    settings: ExperimentSettings


@lru_cache(maxsize=8)
def _tpch(scale: float, seed: int) -> KDatabase:
    return generate_tpch(scale=scale, seed=seed)


@lru_cache(maxsize=8)
def _imdb(people: int, movies: int, seed: int) -> KDatabase:
    return generate_imdb(n_people=people, n_movies=movies, seed=seed)


def database_for(query_name: str, settings: ExperimentSettings) -> KDatabase:
    """The dataset a workload query runs over."""
    if query_name.startswith("TPCH"):
        return _tpch(settings.tpch_scale, settings.seed)
    return _imdb(settings.imdb_people, settings.imdb_movies, settings.seed)


def tree_for(
    database: KDatabase,
    example: KExample,
    settings: ExperimentSettings,
    n_leaves: Optional[int] = None,
    height: Optional[int] = None,
) -> AbstractionTree:
    """A paper-style abstraction tree covering the example's variables.

    A balanced random tree over all annotations (the mixed-relation style
    of the paper's Figure 3), divided evenly into subcategories like the
    paper's TPC-H tree.  The paper's TPC-H tree samples only ``lineitem``
    annotations; at our reduced data scale a lineitem-only leaf pool
    starves the concretization sets of the single-lineitem queries
    (Q3/Q4/Q10), so the default pool is all relations — the purist variant
    is :func:`repro.datasets.trees.tpch_lineitem_tree` (see EXPERIMENTS.md).
    """
    from repro.abstraction.builders import tree_over_annotations

    pool = [t.annotation for t in database.tuples()]
    return tree_over_annotations(
        pool,
        n_leaves=n_leaves or settings.tree_leaves,
        height=height or settings.tree_height,
        seed=settings.seed,
        must_include=sorted(example.variables()),
    )


def prepare_context(
    query_name: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    n_rows: Optional[int] = None,
    n_leaves: Optional[int] = None,
    height: Optional[int] = None,
    query: Optional[CQ] = None,
    engine: Optional[str] = None,
) -> ExperimentContext:
    """Assemble database + query + K-example + tree for one run.

    ``engine`` picks the evaluation backend for the K-example build (an
    execution detail: the context is bit-identical for every engine).
    """
    database = database_for(query_name, settings)
    query = query or get_query(query_name)
    example = build_kexample(
        query, database, n_rows=n_rows or settings.kexample_rows,
        engine=engine,
    )
    tree = tree_for(database, example, settings, n_leaves=n_leaves, height=height)
    return ExperimentContext(
        query_name=query_name,
        query=query,
        database=database,
        example=example,
        tree=tree,
        settings=settings,
    )


def privacy_session_for(
    context: ExperimentContext,
    privacy: Optional[PrivacyConfig] = None,
) -> PrivacySession:
    """A privacy session over the context, shareable across its searches.

    Algorithm 1's caches are threshold-independent, so one session can
    back a whole threshold sweep over ``context`` (pass it to each
    :func:`timed_optimal` call) with bit-identical results and far less
    recomputed concretization work.
    """
    return PrivacySession(
        context.tree, context.example.registry, privacy or PrivacyConfig()
    )


def timed_optimal(
    context: ExperimentContext,
    threshold: int,
    config: Optional[OptimizerConfig] = None,
    session: Optional[PrivacySession] = None,
) -> tuple[OptimalAbstractionResult, float]:
    """Run the optimizer and return (result, wall seconds)."""
    config = config or OptimizerConfig(
        max_candidates=context.settings.max_candidates,
        max_seconds=context.settings.max_seconds,
    )
    start = clock.perf_counter()
    result = find_optimal_abstraction(
        context.example, context.tree, threshold, config=config,
        session=session,
    )
    return result, clock.perf_counter() - start


def run_sweep(jobs, settings: ExperimentSettings = DEFAULT_SETTINGS):
    """Run sweep jobs through the batch optimizer; results in job order.

    ``settings.batch_workers`` sets the pool size: 1 runs serially
    in-process (deterministic, the test/CI default), 0 or negative uses
    every core.  Each worker shares one context cache across its jobs, so
    a sweep over many points of one workload generates the dataset once
    per worker, as the sequential harness did.

    A failed job raises (as the sequential harness did): a sweep point
    that errored must not be plotted as a 0-second data point.
    """
    from repro.batch import run_batch  # local import: batch builds on runner
    from repro.errors import OptimizationError

    workers = settings.batch_workers if settings.batch_workers > 0 else None
    batch = run_batch(jobs, settings, max_workers=workers)
    for result in batch.results:
        if result.error is not None:
            raise OptimizationError(
                f"sweep job {result.job.query_name} "
                f"(k={result.job.threshold}) failed: {result.error}"
            )
    return batch
