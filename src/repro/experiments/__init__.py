"""The paper's experiment suite (Section 5), scaled for pure Python.

Each ``run_fig*``/``run_table*`` function regenerates one figure or table:
it returns the same series the paper plots (per-query curves over the
swept parameter) so EXPERIMENTS.md can record paper-vs-measured shapes.
"""

from repro.experiments.settings import ExperimentSettings, DEFAULT_SETTINGS
from repro.experiments.runner import ExperimentContext, prepare_context
from repro.experiments.figures import (
    run_distribution_sensitivity,
    run_dual_problem,
    run_fig09_threshold_runtime,
    run_fig10_threshold_size,
    run_fig11_threshold_loi,
    run_fig12_treesize_runtime,
    run_fig13_treesize_size,
    run_fig14_height_runtime,
    run_fig15_height_size,
    run_fig16_joins_runtime,
    run_fig17_rows_runtime,
    run_fig18_compression_loi,
    run_fig19_component_ablation,
    run_table3_running_example,
    run_table6_query_stats,
)
from repro.experiments.report import format_series, print_series

__all__ = [
    "DEFAULT_SETTINGS",
    "ExperimentContext",
    "ExperimentSettings",
    "format_series",
    "prepare_context",
    "print_series",
    "run_distribution_sensitivity",
    "run_dual_problem",
    "run_fig09_threshold_runtime",
    "run_fig10_threshold_size",
    "run_fig11_threshold_loi",
    "run_fig12_treesize_runtime",
    "run_fig13_treesize_size",
    "run_fig14_height_runtime",
    "run_fig15_height_size",
    "run_fig16_joins_runtime",
    "run_fig17_rows_runtime",
    "run_fig18_compression_loi",
    "run_fig19_component_ablation",
    "run_table3_running_example",
    "run_table6_query_stats",
]
