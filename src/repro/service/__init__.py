"""Long-lived job service over :mod:`repro.batch`.

``repro serve`` starts an HTTP+JSON server whose worker threads keep the
per-process context and privacy-session caches warm across requests;
``repro submit`` / ``repro poll`` (backed by :class:`ServiceClient`) feed
it job streams.  See ``docs/PERFORMANCE.md`` ("Job service") for the
endpoints and the reuse counters.
"""

from repro.service.client import ServiceClient
from repro.service.server import (
    JobService,
    JobServiceHandler,
    make_server,
)
from repro.service.state import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
    JobRecord,
)

__all__ = [
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "TERMINAL_STATES",
    "JobRecord",
    "JobService",
    "JobServiceHandler",
    "ServiceClient",
    "make_server",
]
