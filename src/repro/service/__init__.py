"""Long-lived job service over :mod:`repro.batch`.

``repro serve`` starts an HTTP+JSON server — speaking the versioned v1
wire protocol (:mod:`repro.service.protocol`) — whose workers keep the
per-process context and privacy-session caches warm across requests;
``repro submit`` / ``repro poll`` (backed by :class:`ServiceClient`)
feed it job streams.  Execution is pluggable: the ``thread`` backend
runs searches in-process, the ``process`` backend fans them out to a
process pool (``--executor process --workers N``) so one service
saturates all cores, and the ``remote`` backend leases jobs to a fleet
of ``repro worker`` processes on other hosts
(:mod:`repro.service.fleet`) — as much hardware as you want.  See
``docs/PROTOCOL.md`` for the wire contract and ``docs/PERFORMANCE.md``
("Job service" / "Service scale-out") for when to pick which backend.
"""

from repro.service.client import ServiceClient
from repro.service.executors import (
    EXECUTOR_NAMES,
    ExecutorBackend,
    ProcessPoolBackend,
    ThreadBackend,
    make_backend,
)
from repro.service.server import (
    JobService,
    JobServiceHandler,
    make_server,
)
from repro.service.state import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    LOCAL_EXECUTOR_NAMES,
    TERMINAL_STATES,
    JobRecord,
)

__all__ = [
    "EXECUTOR_NAMES",
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "LOCAL_EXECUTOR_NAMES",
    "TERMINAL_STATES",
    "ExecutorBackend",
    "JobRecord",
    "JobService",
    "JobServiceHandler",
    "ProcessPoolBackend",
    "ServiceClient",
    "ThreadBackend",
    "make_backend",
    "make_server",
]
