"""The ``remote`` executor: lease-based job distribution to a worker fleet.

:class:`RemoteBackend` executes nothing itself.  A service worker
thread calling :meth:`RemoteBackend.run` *offers* the job to the fleet
and blocks; worker processes — ``repro worker``, usually on other
hosts — drive the other side over the v1 HTTP surface
(:mod:`repro.service.protocol`):

1. ``POST /v1/workers/claim`` -> :meth:`claim` hands out the job as a
   descriptor (spec + settings + full effective config + content hash
   — enough to rebuild and verify the exact job) under a *lease* of
   ``lease_seconds``.
2. ``POST /v1/workers/heartbeat`` -> :meth:`heartbeat` extends the
   lease while the search runs.
3. ``POST /v1/workers/complete`` -> :meth:`complete` delivers the
   result as the same lossless ``to_payload()`` JSON that crosses
   process pools and the store, and wakes the blocked ``run``.

Lease state machine (per job)::

    pending --claim--> claimed --complete--> done
       ^                  |
       '---lease expired--'   (attempts < max_attempts)
                          '--> failed       (attempts exhausted)

A worker that stops heartbeating — crashed, SIGKILLed, partitioned —
simply stops extending its deadline; the blocked ``run`` loop notices
the expiry, requeues the job (bounded by ``max_attempts``), and another
worker picks it up.  Expiry is judged on this process's monotonic
clock only, so fleet correctness never depends on cross-host clock
agreement.  A delivery racing the expiry stays atomic under the
backend lock: whichever side flips the state first wins, and the loser
(a late ``complete`` after a requeue) gets ``lease_lost``.

Routing shards by content hash: :meth:`claim` prefers the pending job
whose :func:`~repro.store.hashing.job_content_hash` rendezvous-hashes
to the claiming worker, so identical resubmissions land on the worker
whose context/privacy-session caches are already warm for that job.
Affinity never idles hardware, though — a worker with no preferred
pending job takes the oldest one instead.

Lease state is arbitrated entirely in memory; when the service has a
:class:`~repro.store.JobStore`, claims and requeues are mirrored into
its lease columns (wall-clock expiry) purely for audit — ``repro jobs
show`` and post-mortems can see who held what — never for arbitration.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.batch.jobs import BatchJobResult, config_to_payload, job_to_spec
from repro.errors import LeaseLostError, RequestError
from repro.obs import clock
from repro.obs.spans import Tracer
from repro.service.executors import ExecutorBackend
from repro.store.hashing import (
    effective_config,
    hash_parts,
    job_content_hash,
)

#: How often a blocked ``run`` re-checks completion/expiry.  Workers
#: set the completion event, so this only bounds expiry-detection
#: latency, not delivery latency.
_TICK_SECONDS = 0.05

_PENDING = "pending"
_CLAIMED = "claimed"
_DONE = "done"
_FAILED = "failed"


@dataclass
class _FleetJob:
    """One job offered to the fleet (the in-memory lease record)."""

    job_id: str
    job: Any  # BatchJob | InlineJob
    settings: Any  # ExperimentSettings
    spec: dict
    content_hash: str
    #: The *effective* config as a lossless wire dict
    #: (:func:`repro.batch.jobs.config_to_payload`): the spec grammar
    #: only carries budgets, but the worker must run every switch the
    #: service hashed — engine, trace, privacy sub-config included.
    config: dict = field(default_factory=dict)
    state: str = _PENDING
    worker: Optional[str] = None
    #: Monotonic lease deadline (None while pending).
    deadline: Optional[float] = None
    attempts: int = 0
    enqueued: float = 0.0  # monotonic
    claimed_at: Optional[float] = None
    payload: Optional[dict] = None
    error: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)


@dataclass
class _WorkerInfo:
    """Per-worker bookkeeping (keyed by the worker-chosen id)."""

    last_seen: float = 0.0  # monotonic
    claimed: int = 0
    completed: int = 0
    leases_lost: int = 0


class RemoteBackend(ExecutorBackend):
    """Distribute claimed jobs to remote workers under leases.

    ``lease_seconds`` is the heartbeat contract: a worker must extend
    its lease at least once per window (``repro worker`` heartbeats at
    a third of it) or the job is requeued.  ``max_attempts`` bounds how
    many claims one job may burn before it fails visibly.  ``store``
    (optional) mirrors lease changes into the job store's audit
    columns.

    ``manages_store`` stays False: the *service* consults and persists
    the shared result cache around ``run`` exactly as on the thread
    tier, and workers with a reachable ``--store`` additionally consult
    it inside ``run_job`` — same division of labor as the process pool.
    """

    name = "remote"
    manages_store = False
    #: Marks the backend as fleet-facing; the service gates the
    #: ``/v1/workers/*`` endpoints on this (``not_remote`` otherwise).
    is_remote = True

    def __init__(
        self,
        lease_seconds: float = 15.0,
        max_attempts: int = 3,
        store=None,
    ):
        self._lease_seconds = max(0.2, float(lease_seconds))
        self._max_attempts = max(1, int(max_attempts))
        # A worker counts as live (for routing) within this window of
        # its last request; generous so a worker busy searching — it
        # still heartbeats — keeps its routing preference.
        self._worker_ttl = max(2.0 * self._lease_seconds, 5.0)
        self._store = store
        self._lock = threading.Lock()
        self._jobs: Dict[str, _FleetJob] = {}
        self._workers: Dict[str, _WorkerInfo] = {}
        self._completed_by: Dict[str, str] = {}
        self._requeues = 0
        self._closed = False
        self._ids = itertools.count(1)
        # Metric hooks, bound by the owning service (bind_metrics); the
        # backend works unmetered too (tests drive it directly).
        self._m_worker_jobs = None
        self._m_requeues = None
        self._m_claim_wait = None
        self._m_store_errors = None
        self._g_workers = None

    @property
    def lease_seconds(self) -> float:
        return self._lease_seconds

    @property
    def max_attempts(self) -> int:
        return self._max_attempts

    @property
    def lease_requeues(self) -> int:
        """How many leases have expired and been requeued (or failed)."""
        with self._lock:
            return self._requeues

    def bind_metrics(
        self,
        *,
        worker_jobs=None,
        requeues=None,
        claim_wait=None,
        store_errors=None,
        workers_gauge=None,
    ) -> None:
        """Attach the service's ``repro_service_*`` instruments."""
        self._m_worker_jobs = worker_jobs
        self._m_requeues = requeues
        self._m_claim_wait = claim_wait
        self._m_store_errors = store_errors
        self._g_workers = workers_gauge

    # -- the service side (one blocked run() per in-flight job) -----------

    def run(self, job, settings, job_id=None) -> BatchJobResult:
        entry = _FleetJob(
            job_id=job_id or f"fleet-{next(self._ids)}",
            job=job,
            settings=settings,
            spec=job_to_spec(job),
            content_hash=job_content_hash(job, settings),
            # effective_config is exactly what job_content_hash digests
            # (modulo the execution-only fields), so shipping it keeps
            # the worker's recomputed hash honest for *any* job —
            # including hand-built configs the spec grammar cannot carry.
            config=config_to_payload(effective_config(job, settings)),
            enqueued=clock.monotonic(),
        )
        with self._lock:
            if self._closed:
                return BatchJobResult(
                    job=job,
                    error="service shut down before the job could be "
                          "offered to the fleet",
                )
            self._jobs[entry.job_id] = entry
        try:
            return self._await_fleet(entry)
        finally:
            with self._lock:
                self._jobs.pop(entry.job_id, None)

    def _await_fleet(self, entry: _FleetJob) -> BatchJobResult:
        """Block until the fleet delivers, the lease chain exhausts, or
        the backend shuts down."""
        while True:
            entry.done.wait(_TICK_SECONDS)
            done_payload = None
            lost_worker = None
            with self._lock:
                if entry.state == _DONE:
                    done_payload = entry.payload
                elif self._closed:
                    entry.state = _FAILED
                    entry.error = (
                        "service shut down while the job was waiting on "
                        "the fleet"
                    )
                elif (
                    entry.state == _CLAIMED
                    and entry.deadline is not None
                    and clock.monotonic() > entry.deadline
                ):
                    # The worker went silent for a whole lease window.
                    lost_worker = entry.worker
                    self._requeues += 1
                    info = self._workers.get(lost_worker or "")
                    if info is not None:
                        info.leases_lost += 1
                    if entry.attempts >= self._max_attempts:
                        entry.state = _FAILED
                        entry.error = (
                            f"lease lost {entry.attempts} time(s) — "
                            f"workers claimed the job but never "
                            f"delivered (last: {lost_worker!r}); giving "
                            f"up after max_attempts={self._max_attempts}"
                        )
                    else:
                        entry.state = _PENDING
                        entry.worker = None
                        entry.deadline = None
                        entry.claimed_at = None
            # All I/O (metrics, store mirror) outside the lock.
            if lost_worker is not None:
                if self._m_requeues is not None:
                    self._m_requeues.inc()
                self._persist_lease_cleared(entry.job_id)
            if done_payload is not None:
                return BatchJobResult.from_payload(done_payload, entry.job)
            if entry.state == _FAILED:
                return BatchJobResult(job=entry.job, error=entry.error)

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            for entry in self._jobs.values():
                entry.done.set()

    # -- the worker side (driven by the /v1/workers/* endpoints) ----------

    def claim(self, worker_id) -> dict:
        """Lease the claiming worker its next job (or ``{"job": None}``).

        Preference order: the pending job (in submission order) whose
        content hash rendezvous-hashes to this worker, else the oldest
        pending job — affinity routes repeat content to warm caches,
        but an idle worker is never turned away while work is pending.
        """
        self._require_worker_id(worker_id)
        job_payload = None
        claim_wait = 0.0
        attempts = 0
        with self._lock:
            now = clock.monotonic()
            info = self._workers.setdefault(worker_id, _WorkerInfo())
            info.last_seen = now
            entry = None if self._closed else self._pick(worker_id, now)
            if entry is not None:
                entry.state = _CLAIMED
                entry.worker = worker_id
                entry.attempts += 1
                entry.claimed_at = now
                entry.deadline = now + self._lease_seconds
                info.claimed += 1
                attempts = entry.attempts
                claim_wait = max(0.0, now - entry.enqueued)
                job_payload = {
                    "id": entry.job_id,
                    "spec": entry.spec,
                    "content_hash": entry.content_hash,
                    "config": entry.config,
                    "settings": entry.settings.to_payload(),
                    "lease_seconds": self._lease_seconds,
                    "heartbeat_seconds": max(
                        0.05, self._lease_seconds / 3.0
                    ),
                    "attempt": attempts,
                    "max_attempts": self._max_attempts,
                }
        self._refresh_workers_gauge()
        if job_payload is None:
            return {"job": None}
        if self._m_claim_wait is not None:
            self._m_claim_wait.observe(claim_wait)
        self._persist_lease(job_payload["id"], worker_id, attempts)
        return {"job": job_payload}

    def heartbeat(self, worker_id, job_id) -> dict:
        """Extend a held lease by a full window; 409 when not held."""
        self._require_worker_id(worker_id)
        self._require_job_id(job_id)
        with self._lock:
            now = clock.monotonic()
            info = self._workers.setdefault(worker_id, _WorkerInfo())
            info.last_seen = now
            entry = self._live_lease(worker_id, job_id)
            entry.deadline = now + self._lease_seconds
            attempts = entry.attempts
        self._persist_lease(job_id, worker_id, attempts)
        return {"ok": True, "lease_seconds": self._lease_seconds}

    def complete(self, worker_id, job_id, payload) -> dict:
        """Accept a finished job's result payload; wake the blocked run.

        A delivery slightly *past* the deadline still lands as long as
        the run loop has not requeued the job yet (its state is still
        ``claimed`` by this worker) — the lease guards against silent
        death, not against finishing 100 ms late.
        """
        self._require_worker_id(worker_id)
        self._require_job_id(job_id)
        if not isinstance(payload, dict):
            raise RequestError(
                "complete needs a result payload object "
                "(BatchJobResult.to_payload())"
            )
        with self._lock:
            now = clock.monotonic()
            info = self._workers.setdefault(worker_id, _WorkerInfo())
            info.last_seen = now
            entry = self._live_lease(worker_id, job_id)
            self._append_fleet_spans(entry, payload, now)
            entry.payload = payload
            entry.state = _DONE
            self._completed_by[job_id] = worker_id
            info.completed += 1
            outcome = "error" if payload.get("error") else "ok"
            entry.done.set()
        if self._m_worker_jobs is not None:
            self._m_worker_jobs.inc(worker=worker_id, outcome=outcome)
        self._persist_lease_cleared(job_id)
        return {"ok": True}

    def worker_of(self, job_id) -> Optional[str]:
        """Which worker completed ``job_id`` (consumed on read)."""
        with self._lock:
            return self._completed_by.pop(job_id, None)

    def fleet_stats(self) -> dict:
        """The ``fleet`` section of ``GET /v1/stats``."""
        with self._lock:
            now = clock.monotonic()
            return {
                "lease_seconds": self._lease_seconds,
                "max_attempts": self._max_attempts,
                "jobs_pending": sum(
                    1 for e in self._jobs.values() if e.state == _PENDING
                ),
                "leases_active": sum(
                    1 for e in self._jobs.values() if e.state == _CLAIMED
                ),
                "leases": {
                    e.job_id: {
                        "worker": e.worker,
                        "attempt": e.attempts,
                        "expires_in_seconds": max(
                            0.0, (e.deadline or now) - now
                        ),
                    }
                    for e in self._jobs.values() if e.state == _CLAIMED
                },
                "lease_requeues": self._requeues,
                "workers": {
                    worker: {
                        "live": now - info.last_seen <= self._worker_ttl,
                        "last_seen_seconds": max(0.0, now - info.last_seen),
                        "claimed": info.claimed,
                        "completed": info.completed,
                        "leases_lost": info.leases_lost,
                    }
                    for worker, info in self._workers.items()
                },
            }

    # -- internals ---------------------------------------------------------

    def _require_worker_id(self, worker_id) -> None:
        if not isinstance(worker_id, str) or not worker_id:
            raise RequestError(
                "the request needs a non-empty string \"worker\" field"
            )

    def _require_job_id(self, job_id) -> None:
        if not isinstance(job_id, str) or not job_id:
            raise RequestError(
                "the request needs a non-empty string \"id\" field "
                "(the leased job id)"
            )

    def _live_lease(self, worker_id: str, job_id: str) -> _FleetJob:
        """The caller's claimed entry, or :class:`LeaseLostError`.

        Callers hold the lock.  Deliberately checks *state*, not the
        clock: an expired-but-not-yet-requeued lease may still
        heartbeat or deliver (the run loop simply has not noticed the
        expiry yet), and once it has, the state flip makes this raise.
        """
        entry = self._jobs.get(job_id)
        if (
            entry is None
            or entry.state != _CLAIMED
            or entry.worker != worker_id
        ):
            raise LeaseLostError(
                f"worker {worker_id!r} holds no live lease on job "
                f"{job_id!r} (expired and requeued, finished, or never "
                f"claimed); drop the job"
            )
        return entry

    def _pick(
        self, worker_id: str, now: float
    ) -> Optional[_FleetJob]:
        pending = [
            e for e in self._jobs.values() if e.state == _PENDING
        ]  # dict preserves submission order
        if not pending:
            return None
        live = sorted(
            worker
            for worker, info in self._workers.items()
            if now - info.last_seen <= self._worker_ttl
        )
        for entry in pending:
            if self._preferred_worker(entry.content_hash, live) == worker_id:
                return entry
        return pending[0]

    @staticmethod
    def _preferred_worker(content_hash: str, live: list) -> Optional[str]:
        """Rendezvous (highest-random-weight) owner of ``content_hash``.

        Deterministic given the live-worker set, stable under fleet
        membership churn (only jobs owned by a departed worker move),
        and needs no coordination — every claim recomputes it from
        scratch.
        """
        if not live:
            return None
        return max(
            live, key=lambda worker: hash_parts(content_hash, worker)
        )

    def _append_fleet_spans(
        self, entry: _FleetJob, payload: dict, now: float
    ) -> None:
        """Stamp queue-wait and lease-hold spans onto a traced result.

        Traces ride the VOLATILE tier, so mutating them never moves a
        result hash; untraced results (``trace`` null) stay untouched —
        tracing stays strictly opt-in.
        """
        trace = payload.get("trace")
        if not isinstance(trace, list):
            return
        claimed_at = entry.claimed_at if entry.claimed_at is not None else now
        tracer = Tracer.from_payload(trace)
        tracer.add(
            "fleet_claim_wait",
            max(0.0, claimed_at - entry.enqueued),
            worker=entry.worker,
        )
        tracer.add(
            "fleet_lease", max(0.0, now - claimed_at), worker=entry.worker
        )
        payload["trace"] = tracer.to_payload()

    def _refresh_workers_gauge(self) -> None:
        if self._g_workers is None:
            return
        with self._lock:
            now = clock.monotonic()
            live = sum(
                1 for info in self._workers.values()
                if now - info.last_seen <= self._worker_ttl
            )
        self._g_workers.set(live)

    def _persist_lease(
        self, job_id: str, worker_id: str, attempts: int
    ) -> None:
        """Mirror a claim/heartbeat into the store's audit columns.

        Wall-clock expiry (humans read these rows); arbitration stays
        on this process's monotonic deadlines.  Best-effort like every
        other store write — but counted when it degrades.
        """
        if self._store is None:
            return
        try:
            self._store.set_lease(
                job_id,
                worker_id,
                time.time() + self._lease_seconds,
                attempts,
            )
        except sqlite3.Error:
            if self._m_store_errors is not None:
                self._m_store_errors.inc()

    def _persist_lease_cleared(self, job_id: str) -> None:
        if self._store is None:
            return
        try:
            self._store.clear_lease(job_id)
        except sqlite3.Error:
            if self._m_store_errors is not None:
                self._m_store_errors.inc()


__all__ = ["RemoteBackend"]
