"""The fleet worker behind ``repro worker``.

A :class:`FleetWorker` is the *other host* side of the remote executor
(:mod:`repro.service.fleet`): a loop that claims leased jobs from a
``--executor remote`` service over the v1 protocol, rebuilds each job
from its claim descriptor, runs the search with
:func:`repro.batch.optimizer.run_job_payload` (consulting and
persisting a shared result cache when ``store_path`` points at one
this host can reach), and delivers the lossless payload back with
``complete`` — exactly the representation that crosses process pools
and the store, so results are bit-identical to the thread tier.

Faithfulness is verified, not assumed: the claim carries the service's
``job_content_hash`` and the worker recomputes it over the rebuilt
job + shipped settings.  A mismatch (version skew between service and
worker) is delivered as an error result instead of silently computing
an answer to a different question.

While the search runs, a daemon thread heartbeats at the cadence the
claim suggests; if a heartbeat comes back ``lease_lost`` (the worker
was presumed dead and the job requeued), the result is *dropped*, not
completed — the other claimant owns the job now.

The worker process keeps the same warm context/privacy-session caches
as a batch pool worker, which is what the service's content-hash
routing exploits: repeat content lands here warm.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
import time
from typing import Optional

from repro.batch.jobs import (
    BatchJobResult,
    config_from_payload,
    job_from_spec,
)
from repro.batch.optimizer import run_job_payload
from repro.errors import (
    JobSpecError,
    LeaseLostError,
    NotRemoteError,
    ServiceError,
)
from repro.experiments.settings import ExperimentSettings
from repro.obs import clock
from repro.service.client import ServiceClient
from repro.store.hashing import job_content_hash


def default_worker_id() -> str:
    """``host-pid``: unique per process, stable for its lifetime, and
    readable in ``/v1/stats`` and per-worker metric labels."""
    return f"{socket.gethostname()}-{os.getpid()}"


class FleetWorker:
    """Claim/run/complete loop against one remote-executor service.

    ``poll_seconds`` paces claim attempts while idle; ``idle_exit``
    (optional) ends the loop after that many consecutive idle seconds,
    and ``max_jobs`` after that many completed jobs — both for bounded
    smoke runs and drain-then-exit deployments; a worker with neither
    runs until killed.  ``store_path`` attaches the shared result cache
    (a path *this host* can reach; workers on other machines need the
    store on a shared filesystem or their own replica).
    """

    def __init__(
        self,
        server: str,
        worker_id: Optional[str] = None,
        store_path: Optional[str] = None,
        poll_seconds: float = 0.5,
        idle_exit: Optional[float] = None,
        max_jobs: Optional[int] = None,
        startup_timeout: float = 30.0,
        quiet: bool = True,
    ):
        self._client = ServiceClient(server)
        self._worker_id = worker_id or default_worker_id()
        self._store_path = store_path
        self._poll_seconds = max(0.05, float(poll_seconds))
        self._idle_exit = idle_exit
        self._max_jobs = max_jobs
        self._startup_timeout = startup_timeout
        self._quiet = quiet
        self._jobs_done = 0
        self._jobs_failed = 0
        self._leases_lost = 0

    @property
    def worker_id(self) -> str:
        return self._worker_id

    def _log(self, message: str) -> None:
        if not self._quiet:
            print(f"[worker {self._worker_id}] {message}", flush=True)

    def run(self) -> dict:
        """The claim loop; returns a summary dict when an exit
        condition (``max_jobs``/``idle_exit``) is reached.

        Raises :class:`NotRemoteError` immediately when the service is
        not running the remote executor — polling a service that will
        never hand out work is a deployment mistake, not an idle fleet.
        """
        self._client.wait_until_healthy(timeout=self._startup_timeout)
        self._log(f"joined fleet at {self._client.base_url}")
        last_activity = clock.monotonic()
        while True:
            try:
                descriptor = self._client.worker_claim(
                    self._worker_id
                ).get("job")
            except NotRemoteError:
                raise
            except ServiceError:
                # Unreachable service: treat as an idle poll, not a
                # crash — the service may be restarting, and a fleet
                # that dies with it must be rebuilt by hand.  A worker
                # with --idle-exit still drains out on its own.
                descriptor = None
            if descriptor is not None:
                self._run_claim(descriptor)
                last_activity = clock.monotonic()
                if (
                    self._max_jobs is not None
                    and self._jobs_done + self._jobs_failed >= self._max_jobs
                ):
                    break
                continue
            if (
                self._idle_exit is not None
                and clock.monotonic() - last_activity >= self._idle_exit
            ):
                break
            time.sleep(self._poll_seconds)
        summary = {
            "worker": self._worker_id,
            "jobs_done": self._jobs_done,
            "jobs_failed": self._jobs_failed,
            "leases_lost": self._leases_lost,
        }
        self._log(f"exiting: {summary}")
        return summary

    # -- one claimed job ---------------------------------------------------

    def _run_claim(self, descriptor: dict) -> None:
        job_id = descriptor["id"]
        self._log(
            f"claimed {job_id} (attempt {descriptor.get('attempt')}"
            f"/{descriptor.get('max_attempts')})"
        )
        payload = self._build_and_run(descriptor)
        if payload is None:
            return  # lease lost mid-run; the job belongs to someone else
        try:
            self._client.worker_complete(self._worker_id, job_id, payload)
        except LeaseLostError:
            # Finished too late: the service requeued the job while the
            # search ran.  Drop the result — another worker owns it.
            self._leases_lost += 1
            self._log(f"lease on {job_id} lost before delivery")
            return
        if payload.get("error"):
            self._jobs_failed += 1
        else:
            self._jobs_done += 1
        self._log(f"completed {job_id}")

    def _build_and_run(self, descriptor: dict) -> Optional[dict]:
        """The result payload for one claim; ``None`` means the lease
        was lost mid-run and nothing must be delivered."""
        job_id = descriptor["id"]
        try:
            settings = ExperimentSettings.from_payload(descriptor["settings"])
            job = self._rebuild_job(descriptor, settings)
        except (JobSpecError, TypeError, ValueError, KeyError) as exc:
            # Version skew (or a corrupted descriptor): deliver the
            # failure so the service surfaces it, instead of leaving the
            # lease to time out and be retried against the same skew.
            return {
                "error": (
                    f"worker {self._worker_id} cannot rebuild the job: "
                    f"{type(exc).__name__}: {exc}"
                ),
            }
        rebuilt_hash = job_content_hash(job, settings)
        if rebuilt_hash != descriptor["content_hash"]:
            return BatchJobResult(
                job=job,
                error=(
                    f"worker {self._worker_id} rebuilt a different job: "
                    f"content hash {rebuilt_hash[:16]}... != service's "
                    f"{descriptor['content_hash'][:16]}... (version skew "
                    f"between worker and service?)"
                ),
            ).to_payload()
        stop = threading.Event()
        lost = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job_id, descriptor, stop, lost),
            name=f"repro-worker-heartbeat-{job_id}",
            daemon=True,
        )
        heartbeat.start()
        try:
            payload = run_job_payload(job, settings, self._store_path)
        finally:
            stop.set()
            heartbeat.join(timeout=5.0)
        if lost.is_set():
            self._leases_lost += 1
            self._log(f"lease on {job_id} lost mid-run; dropping result")
            return None
        return payload

    def _rebuild_job(self, descriptor: dict, settings: ExperimentSettings):
        """The exact job the service leased, from spec + effective config.

        The spec grammar only expresses budget config fields, so the
        claim ships the *whole* effective config as a separate dict
        (:func:`repro.batch.jobs.config_from_payload`) and it is
        stamped onto the rebuilt job verbatim — every switch the
        service hashed, including ones no spec could carry.
        """
        config = config_from_payload(descriptor["config"])
        job = job_from_spec(
            descriptor["spec"],
            default_rows=settings.kexample_rows,
            base_config=config,
        )
        if job.config is None:
            # A spec with no budget keys builds a config-less job;
            # stamp the shipped config so the job runs (and hashes)
            # exactly as the service's effective job did.
            job = dataclasses.replace(job, config=config)
        return job

    def _heartbeat_loop(
        self,
        job_id: str,
        descriptor: dict,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        interval = max(0.05, float(descriptor.get("heartbeat_seconds", 1.0)))
        while not stop.wait(interval):
            try:
                self._client.worker_heartbeat(self._worker_id, job_id)
            except LeaseLostError:
                lost.set()
                return
            except NotRemoteError:
                lost.set()
                return
            except ServiceError:
                # Transient unreachability: keep trying — the lease may
                # still be alive, and the next beat may get through.
                continue


__all__ = ["FleetWorker", "default_worker_id"]
