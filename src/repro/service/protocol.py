"""The v1 wire protocol: route catalog, error envelope, schemas.

This module is the single source of truth for what the job service
speaks over HTTP.  Everything here is data plus pure functions — no
sockets, no service state — so the server handler, the client, the
fleet worker, and the conformance tests all import the *same* contract
instead of re-encoding it:

* :data:`ROUTES` — every endpoint, with its method, ``/v1/...`` path
  template, documented success schema, and the error codes it can
  answer with.  ``GET /v1/`` serves this catalog as JSON
  (:func:`catalog_payload`), so a client can discover the surface
  without reading the docs.
* :data:`ERROR_CODES` — the closed set of machine-readable error codes,
  each with its HTTP status.  Every error response on every route is
  one envelope shape: ``{"error": {"code", "message", "detail"}}``
  (:func:`error_payload`), built from the library's typed exceptions
  via :func:`error_response` and mapped back to typed exceptions
  client-side via :data:`EXCEPTION_FOR_CODE`.
* :func:`validate_payload` — a deliberately small schema checker (flat
  field -> type-union specs) used by the conformance suite to hold
  live responses to the catalog's documented shapes.

Versioning: all routes live under :data:`API_PREFIX`.  Legacy
unversioned paths (``/jobs`` etc.) answer identically for one release
but carry a ``Deprecation`` header; new clients — including
:class:`repro.service.client.ServiceClient` — speak only v1.  The
worker-fleet endpoints (``/v1/workers/*``) exist only under v1: there
is no legacy fleet traffic to keep compatible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    JobNotFoundError,
    JobSpecError,
    LeaseLostError,
    NotRemoteError,
    QueueFullError,
    RequestError,
    ResultNotReadyError,
    ServiceError,
)

#: The protocol identifier served by ``GET /v1/`` (bump together with
#: :data:`API_PREFIX` on the next incompatible revision).
PROTOCOL = "repro-service-v1"

#: Path prefix every current route lives under.
API_PREFIX = "/v1"

#: The one error-code namespace: ``code -> (http_status, description)``.
#: Codes are part of the wire contract — stable strings clients switch
#: on — while ``message``/``detail`` are free-form and may change.
ERROR_CODES: Dict[str, Tuple[int, str]] = {
    "invalid_request": (
        400, "The request body or parameters are malformed "
             "(bad JSON, wrong shape, missing fields).",
    ),
    "invalid_job_spec": (
        400, "A submitted job spec failed validation; nothing from the "
             "batch was enqueued.",
    ),
    "unknown_path": (404, "No route matches this method and path."),
    "unknown_job": (404, "The job id is not known to this service."),
    "result_not_ready": (
        409, "The job exists but has not reached a terminal state; "
             "detail carries its current state.",
    ),
    "lease_lost": (
        409, "The worker no longer holds the lease on this job (it "
             "expired and was requeued, or another worker owns it); "
             "the worker must drop the job.",
    ),
    "not_remote": (
        409, "Worker endpoints require a service running with "
             "--executor remote.",
    ),
    "queue_full": (
        503, "The bounded job queue is at capacity; poll for results "
             "and retry.",
    ),
    "service_unavailable": (
        503, "The service could not honor the request (generic "
             "service-level failure).",
    ),
    "internal": (500, "Unexpected server-side failure."),
}

#: Exception type -> error code, most specific first (the handler walks
#: this in order, so subclasses must precede their bases).
CODE_FOR_EXCEPTION: Tuple[Tuple[type, str], ...] = (
    (JobSpecError, "invalid_job_spec"),
    (RequestError, "invalid_request"),
    (JobNotFoundError, "unknown_job"),
    (ResultNotReadyError, "result_not_ready"),
    (LeaseLostError, "lease_lost"),
    (NotRemoteError, "not_remote"),
    (QueueFullError, "queue_full"),
    (ServiceError, "service_unavailable"),
)

#: Error code -> the typed exception :class:`ServiceClient` raises for
#: it.  Codes outside this table degrade to plain :class:`ServiceError`.
EXCEPTION_FOR_CODE: Dict[str, type] = {
    "invalid_job_spec": JobSpecError,
    "invalid_request": RequestError,
    "unknown_job": JobNotFoundError,
    "result_not_ready": ResultNotReadyError,
    "lease_lost": LeaseLostError,
    "not_remote": NotRemoteError,
    "queue_full": QueueFullError,
}

# -- schemas ---------------------------------------------------------------
#
# A schema is {"required": {field: typespec}, "optional": {field:
# typespec}}; a typespec is a "|"-joined union over "str", "int",
# "float", "bool", "list", "dict", "null".  Flat and closed on purpose:
# responses are shallow JSON objects, and the conformance suite flags
# any field the catalog does not document.

#: The envelope every error response carries, on every route.
ERROR_ENVELOPE_SCHEMA: Dict[str, Dict[str, str]] = {
    "required": {"error": "dict"},
}

#: The inner ``error`` object of the envelope.
ERROR_BODY_SCHEMA: Dict[str, Dict[str, str]] = {
    "required": {"code": "str", "message": "str", "detail": "dict|null"},
}

_CATALOG_SCHEMA = {
    "required": {
        "protocol": "str",
        "prefix": "str",
        "routes": "list",
        "error_codes": "dict",
        "error_envelope": "dict",
    },
}

_HEALTH_SCHEMA = {"required": {"ok": "bool"}}

_STATS_SCHEMA = {
    "required": {
        "uptime_seconds": "float",
        "executor": "str",
        "engine": "str",
        "worker_threads": "int",
        "queue_capacity": "int",
        "queue_depth": "int",
        "jobs_submitted": "int",
        "jobs_running": "int",
        "jobs_done": "int",
        "jobs_failed": "int",
        "jobs_cancelled": "int",
        "job_seconds": "float",
        "sessions_reused": "int",
        "candidates_scanned": "int",
        "privacy_computations": "int",
        "row_option_cache_hits": "int",
        "row_option_cache_misses": "int",
        "cache_hits": "int",
        "store_path": "str|null",
        "results_stored": "int",
        "store_errors": "int",
        "jobs_recovered": "int",
        "jobs_requeued": "int",
    },
    "optional": {"fleet": "dict"},
}

#: One job's status summary (``GET /v1/jobs`` rows and
#: ``GET /v1/jobs/{id}``).  The result fields appear once the job is
#: terminal with a result attached.
JOB_STATUS_SCHEMA: Dict[str, Dict[str, str]] = {
    "required": {
        "id": "str",
        "state": "str",
        "executor": "str|null",
        "worker": "str|null",
        "query_name": "str",
        "threshold": "int|float",
        "tag": "str",
        "submitted_at": "float",
        "started_at": "float|null",
        "finished_at": "float|null",
    },
    "optional": {
        "error": "str|null",
        "found": "bool",
        "privacy": "int|float",
        "seconds": "float",
        "session_reused": "bool",
        "cache_hit": "bool",
    },
}

#: The full result payload (``GET /v1/jobs/{id}/result``): the
#: ``BatchJobResult.to_payload()`` fields under the job's id/state.
JOB_RESULT_SCHEMA: Dict[str, Dict[str, str]] = {
    "required": {"id": "str", "state": "str"},
    "optional": {
        "query_name": "str",
        "threshold": "int|float",
        "tag": "str",
        "found": "bool",
        "privacy": "int|float",
        "loi": "float|null",
        "edges_used": "int",
        "seconds": "float",
        "variable_targets": "dict",
        "session_reused": "bool",
        "cache_hit": "bool",
        "stats": "dict",
        "trace": "list|null",
        "error": "str|null",
    },
}

#: The job descriptor inside a successful claim (``{"job": {...}}``).
#: ``spec`` rebuilds the job (``job_from_spec``), ``settings`` the
#: :class:`ExperimentSettings`, and ``config`` is the *full* effective
#: optimizer config (``config_from_payload``) — the spec grammar only
#: carries budgets, so the remaining switches ship separately, and
#: ``content_hash`` lets the worker verify it rebuilt the exact job
#: before running it.
CLAIM_JOB_SCHEMA: Dict[str, Dict[str, str]] = {
    "required": {
        "id": "str",
        "spec": "dict",
        "content_hash": "str",
        "config": "dict",
        "settings": "dict",
        "lease_seconds": "float",
        "heartbeat_seconds": "float",
        "attempt": "int",
        "max_attempts": "int",
    },
}


@dataclass(frozen=True)
class Route:
    """One documented endpoint of the v1 surface."""

    name: str
    method: str
    path: str  # template relative to API_PREFIX, "{id}" placeholders
    description: str
    #: Success-body schema; ``None`` for non-JSON bodies (``/metrics``).
    success: Optional[Dict[str, Dict[str, str]]]
    #: Error codes this route can answer with (beyond the universal
    #: ``unknown_path``/``internal``).
    errors: Tuple[str, ...] = ()
    content_type: str = "application/json"
    #: True for fleet endpoints (absent from the legacy surface).
    worker: bool = field(default=False)

    def to_payload(self) -> dict:
        payload: dict = {
            "name": self.name,
            "method": self.method,
            "path": API_PREFIX + self.path,
            "description": self.description,
            "content_type": self.content_type,
            "errors": list(self.errors),
            "worker": self.worker,
        }
        payload["success"] = (
            _schema_payload(self.success) if self.success is not None
            else None
        )
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Route":
        """Rebuild a route from its catalog entry (round-trips
        :meth:`to_payload`, so a client can re-materialize the server's
        contract from ``GET /v1/`` alone)."""
        success = payload["success"]
        schema: Optional[Dict[str, Dict[str, str]]] = None
        if success is not None:
            # Keep only the populated tiers so the rebuilt schema
            # compares equal to the hand-written literals above.
            schema = {
                tier: dict(success[tier])
                for tier in ("required", "optional")
                if success.get(tier)
            }
        return cls(
            name=payload["name"],
            method=payload["method"],
            path=payload["path"][len(API_PREFIX):],
            description=payload["description"],
            success=schema,
            errors=tuple(payload["errors"]),
            content_type=payload["content_type"],
            worker=payload["worker"],
        )


def _schema_payload(schema: Dict[str, Dict[str, str]]) -> dict:
    return {
        "required": dict(schema.get("required", {})),
        "optional": dict(schema.get("optional", {})),
    }


#: Every v1 route, in catalog order.
ROUTES: Tuple[Route, ...] = (
    Route(
        "catalog", "GET", "/",
        "This machine-readable route catalog.",
        success=_CATALOG_SCHEMA,
    ),
    Route(
        "health", "GET", "/healthz",
        "Liveness probe.",
        success=_HEALTH_SCHEMA,
    ),
    Route(
        "stats", "GET", "/stats",
        "Queue depth, aggregate counters, and (on a remote-executor "
        "service) the fleet section.",
        success=_STATS_SCHEMA,
    ),
    Route(
        "metrics", "GET", "/metrics",
        "Prometheus text exposition of the service and library "
        "registries.",
        success=None,
        content_type="text/plain; version=0.0.4; charset=utf-8",
    ),
    Route(
        "submit", "POST", "/jobs",
        "Submit one job spec object or a non-empty list of specs; "
        "returns {\"ids\": [...]} in submission order.",
        success={"required": {"ids": "list"}},
        errors=("invalid_request", "invalid_job_spec", "queue_full"),
    ),
    Route(
        "list_jobs", "GET", "/jobs",
        "Status summaries of every known job.",
        success={"required": {"jobs": "list"}},
    ),
    Route(
        "job_status", "GET", "/jobs/{id}",
        "One job's status summary.",
        success=JOB_STATUS_SCHEMA,
        errors=("unknown_job",),
    ),
    Route(
        "job_result", "GET", "/jobs/{id}/result",
        "The full result payload once the job is terminal.",
        success=JOB_RESULT_SCHEMA,
        errors=("unknown_job", "result_not_ready"),
    ),
    Route(
        "job_cancel", "POST", "/jobs/{id}/cancel",
        "Cancel a still-queued job; running/terminal jobs are not "
        "preempted (cancelled=false).",
        success={"required": {"id": "str", "cancelled": "bool"}},
        errors=("unknown_job",),
    ),
    Route(
        "worker_claim", "POST", "/workers/claim",
        "Fleet worker claims its next job: body {\"worker\": id}; "
        "answers {\"job\": null} (nothing pending) or {\"job\": "
        "descriptor} holding a lease the worker must heartbeat.",
        success={"required": {"job": "dict|null"}},
        errors=("invalid_request", "not_remote"),
        worker=True,
    ),
    Route(
        "worker_heartbeat", "POST", "/workers/heartbeat",
        "Extend a held lease: body {\"worker\": id, \"id\": job_id}.",
        success={"required": {"ok": "bool", "lease_seconds": "float"}},
        errors=("invalid_request", "not_remote", "lease_lost"),
        worker=True,
    ),
    Route(
        "worker_complete", "POST", "/workers/complete",
        "Deliver a finished job's lossless result payload: body "
        "{\"worker\": id, \"id\": job_id, \"payload\": "
        "to_payload() dict}.",
        success={"required": {"ok": "bool"}},
        errors=("invalid_request", "not_remote", "lease_lost"),
        worker=True,
    ),
)


def catalog_payload() -> dict:
    """The JSON body of ``GET /v1/`` — the whole contract, as data."""
    return {
        "protocol": PROTOCOL,
        "prefix": API_PREFIX,
        "routes": [route.to_payload() for route in ROUTES],
        "error_envelope": {
            "envelope": _schema_payload(ERROR_ENVELOPE_SCHEMA),
            "error": _schema_payload(ERROR_BODY_SCHEMA),
        },
        "error_codes": {
            code: {"status": status, "description": description}
            for code, (status, description) in ERROR_CODES.items()
        },
    }


def error_payload(
    code: str, message: str, detail: Optional[dict] = None
) -> dict:
    """One unified error envelope (used for every error on every route)."""
    return {"error": {"code": code, "message": message, "detail": detail}}


def error_response(
    exc: BaseException, detail: Optional[dict] = None
) -> Tuple[int, dict]:
    """Map a library exception to ``(http_status, envelope)``.

    Unmapped exception types (a bug escaping the handler) become the
    ``internal`` code rather than an opaque HTML 500.
    """
    for exc_type, code in CODE_FOR_EXCEPTION:
        if isinstance(exc, exc_type):
            status, _ = ERROR_CODES[code]
            return status, error_payload(code, str(exc), detail)
    status, _ = ERROR_CODES["internal"]
    return status, error_payload(
        "internal", f"{type(exc).__name__}: {exc}", detail
    )


# -- schema validation -----------------------------------------------------

def _type_ok(value: Any, spec: str) -> bool:
    for alt in spec.split("|"):
        if alt == "null" and value is None:
            return True
        if alt == "bool" and isinstance(value, bool):
            return True
        if isinstance(value, bool):  # bool is int; don't let it pass below
            continue
        if alt == "str" and isinstance(value, str):
            return True
        if alt == "int" and isinstance(value, int):
            return True
        if alt == "float" and isinstance(value, (int, float)):
            return True
        if alt == "list" and isinstance(value, list):
            return True
        if alt == "dict" and isinstance(value, dict):
            return True
    return False


def validate_payload(
    payload: Any,
    schema: Dict[str, Dict[str, str]],
    where: str = "payload",
) -> List[str]:
    """Hold ``payload`` to ``schema``; returns the problems (empty = ok).

    Checks presence and type of every required field, types of present
    optional fields, and flags undocumented fields — the catalog must
    describe everything the service actually sends.
    """
    if not isinstance(payload, dict):
        return [f"{where}: expected an object, got {type(payload).__name__}"]
    problems: List[str] = []
    required = schema.get("required", {})
    optional = schema.get("optional", {})
    for name, spec in required.items():
        if name not in payload:
            problems.append(f"{where}: missing required field {name!r}")
        elif not _type_ok(payload[name], spec):
            problems.append(
                f"{where}.{name}: expected {spec}, "
                f"got {type(payload[name]).__name__}"
            )
    for name, spec in optional.items():
        if name in payload and not _type_ok(payload[name], spec):
            problems.append(
                f"{where}.{name}: expected {spec}, "
                f"got {type(payload[name]).__name__}"
            )
    for name in payload:
        if name not in required and name not in optional:
            problems.append(f"{where}: undocumented field {name!r}")
    return problems


def validate_error_envelope(payload: Any, where: str = "error") -> List[str]:
    """Validate a full error response body against the envelope."""
    problems = validate_payload(payload, ERROR_ENVELOPE_SCHEMA, where)
    if not problems:
        problems = validate_payload(
            payload["error"], ERROR_BODY_SCHEMA, where + ".error"
        )
        if not problems and payload["error"]["code"] not in ERROR_CODES:
            problems = [
                f"{where}.error.code: {payload['error']['code']!r} is not "
                f"a documented error code"
            ]
    return problems


def find_route(name: str) -> Route:
    """Look a route up by catalog name (conformance-suite helper)."""
    for route in ROUTES:
        if route.name == name:
            return route
    raise KeyError(name)


__all__ = [
    "API_PREFIX",
    "CLAIM_JOB_SCHEMA",
    "CODE_FOR_EXCEPTION",
    "ERROR_BODY_SCHEMA",
    "ERROR_CODES",
    "ERROR_ENVELOPE_SCHEMA",
    "EXCEPTION_FOR_CODE",
    "JOB_RESULT_SCHEMA",
    "JOB_STATUS_SCHEMA",
    "PROTOCOL",
    "ROUTES",
    "Route",
    "catalog_payload",
    "error_payload",
    "error_response",
    "find_route",
    "validate_error_envelope",
    "validate_payload",
]
