"""A long-lived job service over :mod:`repro.batch`.

The CLI's ``batch-optimize`` is one-shot: every invocation pays context
generation and privacy-session warmup again.  :class:`JobService` keeps
those caches alive instead — jobs arrive as a stream (HTTP+JSON) and run
on persistent workers whose context cache and
:class:`~repro.core.privacy.PrivacySession` cache in
``repro.batch.optimizer`` stay warm across requests.  The amortization
is observable: the ``/stats`` endpoint reports ``sessions_reused`` (jobs
that attached to a privacy session warmed by an earlier request) next to
the aggregate search counters.

*Where* a claimed job executes is pluggable
(:mod:`repro.service.executors`): the default ``thread`` backend runs it
on the worker thread itself (shared warm caches, GIL-capped at roughly
one core), while the ``process`` backend (``repro serve --executor
process --workers N``) dispatches it to a process pool whose workers
each own warm caches and share the file-backed result cache — the
pure-CPU search then scales to the cores while every service behavior
around it (queueing, cancellation, timeout clamps, backpressure,
durability, stats) is backend-independent.

The HTTP surface is the versioned v1 wire protocol defined (as data) in
:mod:`repro.service.protocol` — ``GET /v1/`` serves the machine-readable
route catalog, every error is one ``{"error": {"code", "message",
"detail"}}`` envelope, and legacy unversioned paths answer identically
for one release with a ``Deprecation`` header:

====================================  =========================================
``GET  /v1/``                         the route catalog (the whole contract)
``POST /v1/jobs``                     submit one spec or a list (named-workload
                                      or inline-context, ``job_from_spec``);
                                      returns ``{"ids": [...]}``;
                                      ``invalid_job_spec`` on a bad spec,
                                      ``queue_full`` when the queue is full
``GET  /v1/jobs``                     status summaries of every known job
``GET  /v1/jobs/<id>``                one job's status summary
``GET  /v1/jobs/<id>/result``         full result once terminal, else
                                      ``result_not_ready``
``POST /v1/jobs/<id>/cancel``         cancel a still-queued job
``GET  /v1/stats``                    queue depth + aggregate counters (and the
                                      ``fleet`` section on a remote service)
``GET  /v1/metrics``                  Prometheus text exposition
``GET  /v1/healthz``                  liveness probe
``POST /v1/workers/claim``            fleet worker claims a leased job
``POST /v1/workers/heartbeat``        fleet worker extends its lease
``POST /v1/workers/complete``         fleet worker delivers a result payload
====================================  =========================================

The ``/v1/workers/*`` endpoints exist only on a ``--executor remote``
service (``not_remote`` elsewhere) and only under ``/v1/`` — there is no
legacy fleet traffic to stay compatible with.  See
:mod:`repro.service.fleet` for the lease state machine and
``docs/PROTOCOL.md`` for the full wire contract.

Per-job timeouts: a service-level ``job_timeout`` clamps every job's
``max_seconds`` budget (the search returns its best-so-far when it
trips), so one runaway job cannot starve the stream.  Backpressure: the
queue is bounded; submissions beyond it are rejected rather than queued
without limit.

Durability: with a :class:`repro.store.JobStore` attached (``repro serve
--store PATH``), every accepted job is persisted (spec, content hash,
lifecycle state) and every clean result payload is stored
content-addressed.  A restarted service recovers the store on startup —
completed results are served again, queued *and* interrupted running
jobs are re-enqueued — and the worker loop consults the result cache
before every search, so a job content-identical to any earlier one (this
process or a previous life) returns instantly with ``cache_hit`` set.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import sqlite3
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Empty, Queue
from typing import Optional, Sequence

from repro.batch.jobs import BatchJobResult, job_from_spec, job_to_spec
from repro.core.optimizer import OptimizerConfig
from repro.engine import DEFAULT_ENGINE
from repro.errors import (
    JobNotFoundError,
    JobSpecError,
    NotRemoteError,
    QueueFullError,
    ReproError,
    RequestError,
    ResultNotReadyError,
    ServiceError,
)
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.obs import clock, metrics
from repro.obs.trace import TraceWriter, trace_record
from repro.service import protocol
from repro.service.executors import make_backend
from repro.service.state import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobRecord,
)
from repro.store import (
    JobStore,
    ResultCache,
    job_content_hash,
    shareable_store_path,
)


class _UnparseableJob:
    """Stand-in for a recovered job whose stored spec no longer parses.

    Carries just the display fields the status payload needs, so the
    record stays listable while its failure explains itself.
    """

    def __init__(self, stored):
        self.query_name = stored.label
        self.threshold = stored.spec.get("threshold", -1)
        self.tag = str(stored.spec.get("tag", ""))


class JobService:
    """The queue + worker-thread pool behind the HTTP front-end.

    ``worker_threads=1`` (the default) runs jobs strictly in submission
    order — deterministic, and every job sees the caches its
    predecessors warmed.  More threads trade determinism for throughput;
    ``worker_threads=0`` starts no workers, leaving execution to explicit
    :meth:`run_next` calls (how the tests drive the queue).

    ``max_queue`` bounds pending jobs (submissions beyond it raise
    :class:`ServiceError` — HTTP 503); ``job_timeout`` caps any single
    job's ``max_seconds`` search budget.  ``store`` attaches a
    :class:`repro.store.JobStore` for durability and cross-restart result
    dedup (recovery runs synchronously in the constructor, before any
    worker starts).

    ``executor`` picks the execution tier (see
    :mod:`repro.service.executors`): ``"thread"`` runs searches on the
    worker threads themselves — shared warm caches, GIL-capped at about
    one core; ``"process"`` dispatches each claimed job to a process
    pool sized to the worker-thread count, scaling the pure-CPU search
    to the hardware while queueing, cancellation, timeouts,
    backpressure, recovery, and ``/stats`` behave identically.
    ``"remote"`` executes nothing locally: each claimed job is offered
    to the worker fleet (:mod:`repro.service.fleet`) under a
    ``lease_seconds`` lease, retried up to ``lease_attempts`` claims —
    so ``worker_threads`` bounds the number of *in-flight leases*, and
    should be at least the expected fleet size.
    """

    def __init__(
        self,
        settings: ExperimentSettings = DEFAULT_SETTINGS,
        worker_threads: int = 1,
        max_queue: int = 64,
        job_timeout: Optional[float] = None,
        store: Optional[JobStore] = None,
        executor: str = "thread",
        engine: str = "naive",
        trace: bool = False,
        trace_path: Optional[str] = None,
        lease_seconds: float = 15.0,
        lease_attempts: int = 3,
    ):
        from repro.engine import get_engine

        self._settings = settings
        self._worker_threads = max(0, worker_threads)
        self._job_timeout = job_timeout
        # Tracing is stamped onto every job like the engine (execution
        # detail, hash-neutral); a trace file implies tracing, and each
        # completed traced job streams one repro-trace-v1 line to it.
        self._trace = trace or trace_path is not None
        self._trace_writer = (
            TraceWriter(trace_path) if trace_path is not None else None
        )
        # The evaluation engine stamped onto every job this service runs
        # (an execution detail, like the executor tier: content hashes
        # and results are engine-independent).  Resolving it now fails
        # fast — `serve --engine duckdb` without duckdb importable must
        # die at startup, not on the first job.
        get_engine(engine)
        self._engine = engine
        # Capacity is enforced on the *queued-record count*, not the
        # Queue's maxsize: a cancelled job leaves a stale id in the Queue
        # (workers skip it) but frees its capacity slot immediately.
        self._max_queue = max_queue
        self._queue: "Queue[Optional[str]]" = Queue()
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._threads: list[threading.Thread] = []
        self._ids = itertools.count(1)
        self._started_monotonic = clock.monotonic()
        # Service-level metrics live in a private registry so concurrent
        # services in one process (tests) don't bleed into each other;
        # /metrics renders it alongside the process-wide library
        # registry (engine/store/cache instruments).
        self._smetrics = metrics.MetricsRegistry()
        self._m_submitted = self._smetrics.counter(
            "repro_service_jobs_submitted_total",
            "Jobs accepted into the queue.",
        )
        self._m_completed = self._smetrics.counter(
            "repro_service_jobs_completed_total",
            "Jobs reaching a terminal state, by state.",
            labelnames=("state",),
        )
        self._m_cache_hits = self._smetrics.counter(
            "repro_service_cache_hits_total",
            "Jobs answered from the content-addressed result cache.",
        )
        self._m_store_errors = self._smetrics.counter(
            "repro_service_store_errors_total",
            "Store operations that failed and were degraded (persistence "
            "skipped, stats fell back to defaults).",
        )
        self._m_queue_wait = self._smetrics.histogram(
            "repro_service_queue_wait_seconds",
            "Time from submission to execution start.",
        )
        self._m_job_seconds = self._smetrics.histogram(
            "repro_service_job_seconds",
            "Search seconds per executed (non-cache-hit) job.",
        )
        self._m_phase_seconds = self._smetrics.histogram(
            "repro_service_phase_seconds",
            "Per-job time inside each trace phase (traced jobs only).",
            labelnames=("phase",),
        )
        self._g_queue_depth = self._smetrics.gauge(
            "repro_service_queue_depth", "Jobs currently queued.",
        )
        self._g_jobs_running = self._smetrics.gauge(
            "repro_service_jobs_running", "Jobs currently executing.",
        )
        self._g_results_stored = self._smetrics.gauge(
            "repro_service_results_stored",
            "Result payloads in the attached store (0 without --store).",
        )
        self._g_uptime = self._smetrics.gauge(
            "repro_service_uptime_seconds", "Service uptime.",
        )
        self._g_info = self._smetrics.gauge(
            "repro_service_info",
            "Constant 1; the labels carry the service configuration.",
            labelnames=("executor", "engine", "workers"),
        )
        # Fleet instruments (flat until a remote backend feeds them; the
        # worker label stays bounded — one series per fleet worker id).
        self._m_worker_jobs = self._smetrics.counter(
            "repro_service_worker_jobs_total",
            "Jobs delivered by fleet workers, by worker id and outcome.",
            labelnames=("worker", "outcome"),
        )
        self._m_lease_requeues = self._smetrics.counter(
            "repro_service_lease_requeues_total",
            "Fleet leases that expired (worker went silent) and were "
            "requeued or, attempts exhausted, failed.",
        )
        self._m_claim_wait = self._smetrics.histogram(
            "repro_service_claim_wait_seconds",
            "Time a fleet job waited from offer to worker claim.",
        )
        self._g_fleet_workers = self._smetrics.gauge(
            "repro_service_fleet_workers_live",
            "Fleet workers seen within the liveness window.",
        )
        # Aggregates over completed jobs (mirrors BatchStats' reuse/effort
        # counters, accumulated as the stream drains).
        self._job_seconds = 0.0
        self._sessions_reused = 0
        self._candidates_scanned = 0
        self._privacy_computations = 0
        self._row_option_cache_hits = 0
        self._row_option_cache_misses = 0
        self._cache_hits = 0
        self._store = store
        self._cache = ResultCache(store) if store is not None else None
        # Pool workers can only share a store that lives in a file; an
        # in-memory store stays service-side (the backend then reports
        # manages_store=False and this process persists results itself).
        self._backend = make_backend(
            executor,
            workers=max(1, self._worker_threads),
            store_path=shareable_store_path(store),
            lease_seconds=lease_seconds,
            lease_attempts=lease_attempts,
            store=store,
        )
        if self._backend.is_remote:
            self._backend.bind_metrics(
                worker_jobs=self._m_worker_jobs,
                requeues=self._m_lease_requeues,
                claim_wait=self._m_claim_wait,
                store_errors=self._m_store_errors,
                workers_gauge=self._g_fleet_workers,
            )
        self._g_info.set(
            1,
            executor=self._backend.name,
            engine=engine,
            workers=str(max(1, self._worker_threads)),
        )
        self._recovered_jobs = 0
        self._requeued_jobs = 0
        if store is not None:
            self._recover()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobService":
        """Start the backend, then spawn the worker threads (idempotent).

        Order matters for the process backend under the ``fork`` start
        method: its pool workers are pre-spawned here, while this
        process is still single-threaded.
        """
        self._backend.start()
        with self._lock:
            while len(self._threads) < self._worker_threads:
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-job-worker-{len(self._threads)}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers after they finish their current job."""
        threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout)
        self._backend.shutdown()
        if self._trace_writer is not None:
            self._trace_writer.close()

    # -- durability --------------------------------------------------------

    def _content_hash(self, job) -> str:
        """The canonical hash of the *effective* job (timeout clamped).

        Hashing after the clamp keeps submit-time persistence and
        run-time cache lookups on the same key, and stops a cached
        result computed under one ``job_timeout`` from answering a job
        that would run under another.
        """
        return job_content_hash(self._effective_job(job), self._settings)

    def _persist_submit(self, job_id: str, seq: int, job) -> None:
        """Persist one accepted job (called *outside* the service lock).

        Hashing a large inline payload and committing to SQLite are the
        slow parts of a submission; doing them after the lock is
        released keeps status/stats/worker traffic flowing.  The record
        is inserted as queued, then re-checked: a cancel that raced the
        insert (possible once the id is listable) is re-applied so the
        store never resurrects a cancelled job on restart.
        """
        if self._store is None:
            return
        try:
            self._store.record_job(
                job_id, seq, self._content_hash(job), job_to_spec(job),
                JOB_QUEUED,
            )
            with self._lock:
                record = self._records[job_id]
                state, finished_at = record.state, record.finished_at
            if state != JOB_QUEUED:
                self._store.update_job(
                    job_id, state, finished_at=finished_at
                )
        except sqlite3.Error:
            # Durability is best-effort; serving continues — but the
            # degradation is counted, not invisible (stats + /metrics).
            self._m_store_errors.inc()

    def _persist_state(self, job_id: str, state: str, **times) -> None:
        if self._store is None:
            return
        try:
            self._store.update_job(job_id, state, **times)
        except sqlite3.Error:
            self._m_store_errors.inc()

    def _recover(self) -> None:
        """Rebuild records from the store; re-enqueue unfinished jobs.

        Completed jobs come back with their results attached (the
        content-addressed payload), so ``GET /jobs/<id>/result`` keeps
        answering across restarts; queued jobs — and running ones, whose
        previous process died mid-search — are re-enqueued in their
        original submission order, provided the rebuilt job still hashes
        to the submitted content hash (otherwise the job fails visibly
        rather than re-running as something else).  Job ids continue
        from the highest persisted sequence number, so recovered and new
        ids never clash.
        """
        stored_jobs = self._store.list_jobs()
        self._ids = itertools.count(self._store.max_seq() + 1)
        for stored in stored_jobs:
            try:
                job = job_from_spec(
                    stored.spec,
                    default_rows=self._settings.kexample_rows,
                    base_config=self._base_config(),
                )
            except JobSpecError as exc:
                # A spec this code version cannot parse (version drift)
                # becomes a visible failure, not a silent drop.
                record = JobRecord(
                    job_id=stored.job_id, job=_UnparseableJob(stored),
                    state=JOB_FAILED,
                    error=f"unrecoverable job spec: {exc}",
                    submitted_at=stored.submitted_at,
                    finished_at=stored.finished_at or stored.submitted_at,
                )
                self._records[stored.job_id] = record
                self._recovered_jobs += 1  # rebuilt, just not runnable
                # Persist the failure: leaving the row queued would make
                # it ungarbage-collectable and re-report it every boot.
                self._persist_state(
                    stored.job_id, JOB_FAILED,
                    error=record.error, finished_at=record.finished_at,
                )
                continue
            record = JobRecord(
                job_id=stored.job_id, job=job, state=stored.state,
                error=stored.error, submitted_at=stored.submitted_at,
                started_at=stored.started_at, finished_at=stored.finished_at,
            )
            if stored.state in (JOB_QUEUED, JOB_RUNNING):
                # Re-run only what re-hashes identically: a spec cannot
                # express every OptimizerConfig (budget fields only), and
                # the service may have restarted under different
                # settings — silently running *similar* work and filing
                # it under the submitted job's id would hand the poller
                # a result for inputs they never asked for.
                if self._content_hash(job) != stored.content_hash:
                    record.state = JOB_FAILED
                    record.started_at = None
                    record.finished_at = time.time()
                    record.error = (
                        "cannot re-run faithfully after restart: the "
                        "job's content hash changed (a config beyond "
                        "spec budgets, or different serve settings); "
                        "resubmit it"
                    )
                    self._persist_state(
                        stored.job_id, JOB_FAILED,
                        error=record.error,
                        finished_at=record.finished_at,
                        clear_started_at=True,
                    )
                else:
                    record.state = JOB_QUEUED
                    record.started_at = None
                    self._persist_state(
                        stored.job_id, JOB_QUEUED, clear_started_at=True
                    )
                    # A lease held when the previous service died is
                    # stale by definition — the new backend knows
                    # nothing of it; requeueing clears the audit row.
                    if stored.lease_worker is not None:
                        try:
                            self._store.clear_lease(stored.job_id)
                        except sqlite3.Error:
                            self._m_store_errors.inc()
                    self._queue.put(stored.job_id)
                    self._requeued_jobs += 1
            elif stored.state == JOB_DONE:
                # peek, not load: recovery is not cache usage, and must
                # not refresh gc's LRU clock for every old result.  A
                # damaged payload must not stop the service from coming
                # up — the record just loses its result.
                try:
                    payload = self._store.peek_result(stored.content_hash)
                    if payload is not None:
                        record.result = BatchJobResult.from_payload(
                            payload, job
                        )
                except sqlite3.Error:
                    self._m_store_errors.inc()
                    payload = None
                except (ValueError, TypeError, KeyError, AttributeError):
                    payload = None
                if record.result is None:
                    record.error = (
                        "result payload no longer readable from the store "
                        "(evicted by gc, or damaged)"
                    )
            self._records[stored.job_id] = record
            self._recovered_jobs += 1

    # -- submission --------------------------------------------------------

    def submit(self, job) -> str:
        """Enqueue one built job; raises :class:`QueueFullError` when full."""
        with self._lock:
            if 0 < self._max_queue <= self._queued_count():
                raise QueueFullError(
                    f"job queue is full ({self._max_queue} pending); "
                    f"poll for results and retry"
                )
            seq = next(self._ids)
            job_id = f"job-{seq:06d}"
            self._records[job_id] = JobRecord(job_id=job_id, job=job)
        self._m_submitted.inc()
        self._persist_submit(job_id, seq, job)
        self._queue.put(job_id)
        return job_id

    def _queued_count(self) -> int:
        return sum(
            1 for r in self._records.values() if r.state == JOB_QUEUED
        )

    def submit_specs(self, specs: Sequence[dict]) -> list[str]:
        """Validate all specs first, then enqueue them in order.

        Validation failures (:class:`JobSpecError`) reject the whole
        batch before anything is queued; a queue-full rejection mid-batch
        reports how many jobs were accepted.
        """
        jobs = [
            self._attach_spec_context(index, spec)
            for index, spec in enumerate(specs)
        ]
        ids: list[str] = []
        try:
            for job in jobs:
                ids.append(self.submit(job))
        except ServiceError as exc:
            # Re-raise as the same type: the wire error code (e.g.
            # queue_full) must survive the batch-context wrapping.
            raise type(exc)(
                f"{exc} (accepted {len(ids)} of {len(jobs)} jobs"
                f"{': ' + ', '.join(ids) if ids else ''})"
            ) from None
        return ids

    def _attach_spec_context(self, index: int, spec: dict):
        try:
            return job_from_spec(
                spec,
                default_rows=self._settings.kexample_rows,
                base_config=self._base_config(),
            )
        except JobSpecError as exc:
            raise JobSpecError(f"job {index}: {exc}") from None

    def _base_config(self) -> OptimizerConfig:
        return OptimizerConfig(
            max_candidates=self._settings.max_candidates,
            max_seconds=self._settings.max_seconds,
            engine=self._engine,
            trace=self._trace,
        )

    # -- queries -----------------------------------------------------------

    def record(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._records[job_id]  # KeyError -> 404 upstream

    def status_payload(self, job_id: str) -> dict:
        with self._lock:
            return self._records[job_id].status_payload()

    def list_payload(self) -> list[dict]:
        with self._lock:
            return [r.status_payload() for r in self._records.values()]

    def result_payload(self, job_id: str) -> tuple[int, dict]:
        """(HTTP status, payload): 200 once terminal, else 409."""
        with self._lock:
            record = self._records[job_id]
            if record.state in (JOB_QUEUED, JOB_RUNNING):
                return 409, {"id": job_id, "state": record.state}
            return 200, record.result_payload()

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/terminal jobs are not preempted."""
        with self._lock:
            record = self._records[job_id]
            if record.state != JOB_QUEUED:
                return False
            record.state = JOB_CANCELLED
            record.finished_at = time.time()
            finished_at = record.finished_at
        # Store commit outside the lock: a contended SQLite file must
        # not freeze the other endpoints (same rule as stats/submit).
        self._m_completed.inc(state="cancelled")
        self._persist_state(job_id, JOB_CANCELLED, finished_at=finished_at)
        return True

    # -- fleet (remote executor only) --------------------------------------

    def _remote_backend(self):
        """The fleet backend, or :class:`NotRemoteError` — the worker
        endpoints only exist on a ``--executor remote`` service."""
        if not self._backend.is_remote:
            raise NotRemoteError(
                f"this service runs executor {self._backend.name!r}; "
                f"the worker endpoints need a service started with "
                f"--executor remote"
            )
        return self._backend

    def worker_claim(self, worker_id) -> dict:
        return self._remote_backend().claim(worker_id)

    def worker_heartbeat(self, worker_id, job_id) -> dict:
        return self._remote_backend().heartbeat(worker_id, job_id)

    def worker_complete(self, worker_id, job_id, payload) -> dict:
        return self._remote_backend().complete(worker_id, job_id, payload)

    def stats_payload(self) -> dict:
        # Fleet stats come from the backend's own lock, taken *before*
        # the service lock (never nested inside it).
        fleet = (
            self._backend.fleet_stats() if self._backend.is_remote else None
        )
        # The store read happens before taking the service lock: a
        # contended SQLite file (a concurrent batch-optimize writer) may
        # block up to its busy timeout, and that wait must not freeze
        # submit/status/worker traffic.  Best-effort like every other
        # store call — a broken store must not take /stats down with it.
        results_stored = 0
        if self._store is not None:
            try:
                results_stored = self._store.result_count()
            except sqlite3.Error:
                self._m_store_errors.inc()
        store_errors = int(self._m_store_errors.value())
        with self._lock:
            states = [r.state for r in self._records.values()]
            payload = {
                "uptime_seconds": clock.monotonic() - self._started_monotonic,
                "executor": self._backend.name,
                "engine": self._engine,
                "worker_threads": self._worker_threads,
                "queue_capacity": self._max_queue,
                "queue_depth": states.count(JOB_QUEUED),
                "jobs_submitted": len(states),
                "jobs_running": states.count(JOB_RUNNING),
                "jobs_done": states.count(JOB_DONE),
                "jobs_failed": states.count(JOB_FAILED),
                "jobs_cancelled": states.count(JOB_CANCELLED),
                "job_seconds": self._job_seconds,
                "sessions_reused": self._sessions_reused,
                "candidates_scanned": self._candidates_scanned,
                "privacy_computations": self._privacy_computations,
                "row_option_cache_hits": self._row_option_cache_hits,
                "row_option_cache_misses": self._row_option_cache_misses,
                # Persistent-store durability & dedup (zeros/None when
                # the service runs without --store).
                "cache_hits": self._cache_hits,
                "store_path": (
                    self._store.path if self._store is not None else None
                ),
                "results_stored": results_stored,
                # Store operations that failed and were degraded; nonzero
                # means durability/dedup is impaired even though serving
                # continues (the silent-swallow bugfix, also a /metrics
                # counter).
                "store_errors": store_errors,
                "jobs_recovered": self._recovered_jobs,
                "jobs_requeued": self._requeued_jobs,
            }
        if fleet is not None:
            payload["fleet"] = fleet
        return payload

    def metrics_text(self) -> str:
        """The Prometheus exposition document behind ``GET /metrics``.

        Scrape-time gauges are refreshed here; the rest of the document
        is the live service registry plus the process-wide library
        registry (engine/store/cache instruments).
        """
        with self._lock:
            states = [r.state for r in self._records.values()]
        self._g_queue_depth.set(states.count(JOB_QUEUED))
        self._g_jobs_running.set(states.count(JOB_RUNNING))
        self._g_uptime.set(clock.monotonic() - self._started_monotonic)
        results_stored = 0
        if self._store is not None:
            try:
                results_stored = self._store.result_count()
            except sqlite3.Error:
                self._m_store_errors.inc()
        self._g_results_stored.set(results_stored)
        return metrics.render_many([self._smetrics, metrics.REGISTRY])

    # -- execution ---------------------------------------------------------

    def run_next(self) -> bool:
        """Pop and execute one queue entry synchronously (test hook).

        Returns ``False`` when the queue is empty.  A cancelled entry is
        consumed (and counts as processed) without running anything.
        """
        try:
            job_id = self._queue.get_nowait()
        except Empty:
            return False
        if job_id is None:
            return False
        self._run_one(job_id)
        return True

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                self._run_one(job_id)
            except Exception as exc:  # noqa: BLE001 - workers must survive
                failed = None
                with self._lock:
                    record = self._records.get(job_id)
                    if record is not None and record.state == JOB_RUNNING:
                        record.state = JOB_FAILED
                        record.error = f"{type(exc).__name__}: {exc}"
                        record.finished_at = time.time()
                        failed = (record.error, record.finished_at)
                if failed is not None:  # store commit outside the lock
                    self._persist_state(
                        job_id, JOB_FAILED,
                        error=failed[0], finished_at=failed[1],
                    )

    def _effective_job(self, job):
        """The job as it will actually run: ``max_seconds`` clamped to the
        service timeout, and the service's engine and trace flag stamped
        on the config.

        None of the adjustments move the content hash: the materialized
        base budgets equal :func:`repro.store.hashing.effective_config`'s
        fallback exactly, and the engine and trace fields are stripped
        from hashing.  A job that needs nothing is returned untouched — a
        config-less job on a default-engine, untraced service already
        runs exactly this config through
        :func:`repro.batch.optimizer.run_job`'s own fallback.
        """
        base = job.config or self._base_config()
        config = base
        if self._job_timeout is not None:
            max_seconds = (
                self._job_timeout if config.max_seconds is None
                else min(config.max_seconds, self._job_timeout)
            )
            config = dataclasses.replace(config, max_seconds=max_seconds)
        if config.engine != self._engine:
            config = dataclasses.replace(config, engine=self._engine)
        if config.trace != self._trace:
            config = dataclasses.replace(config, trace=self._trace)
        if config is job.config:
            return job
        if (config is base and job.config is None
                and self._engine == DEFAULT_ENGINE and not self._trace):
            return job
        return dataclasses.replace(job, config=config)

    def _run_one(self, job_id: str) -> None:
        with self._lock:
            record = self._records[job_id]
            if record.state != JOB_QUEUED:
                return  # cancelled while waiting
            record.state = JOB_RUNNING
            record.started_at = time.time()
            record.executor = self._backend.name
        self._persist_state(job_id, JOB_RUNNING, started_at=record.started_at)
        # Queue wait from the wall-clock record timestamps: both stamped
        # by this process, so the difference is a valid interval.
        self._m_queue_wait.observe(
            max(0.0, record.started_at - record.submitted_at)
        )
        effective = self._effective_job(record.job)
        # The service-side cache consult answers repeats without a pool
        # round trip; a process backend with a file store consults (and
        # persists into) the same SQLite file again inside the worker,
        # which also catches results a concurrent writer stored after
        # this lookup missed.
        result = None
        if self._cache is not None:
            result = self._cache.lookup(effective, self._settings)
        if result is None:
            result = self._backend.run(
                effective, self._settings, job_id=job_id
            )
            if self._cache is not None and not self._backend.manages_store:
                self._cache.store_result(effective, self._settings, result)
        # Which fleet worker delivered (remote only); fetched before the
        # service lock — worker_of takes the backend's own lock.
        worker = (
            self._backend.worker_of(job_id)
            if self._backend.is_remote else None
        )
        with self._lock:
            record.result = result
            record.worker = worker
            record.finished_at = time.time()
            record.state = JOB_DONE if result.ok else JOB_FAILED
            if result.cache_hit:
                # Served from the store: count the dedup, not the effort —
                # the payload's counters describe the original run.
                self._cache_hits += 1
            elif result.ok:
                self._job_seconds += result.seconds
                self._sessions_reused += int(result.session_reused)
                self._candidates_scanned += result.stats.candidates_scanned
                self._privacy_computations += result.stats.privacy_computations
                self._row_option_cache_hits += result.stats.row_option_cache_hits
                self._row_option_cache_misses += (
                    result.stats.row_option_cache_misses
                )
        self._persist_state(
            job_id,
            JOB_DONE if result.ok else JOB_FAILED,
            finished_at=record.finished_at,
            error=result.error,
        )
        self._observe_completion(result)

    def _observe_completion(self, result: BatchJobResult) -> None:
        """Fold one finished job into the service metrics (and the trace
        file, when one is attached).  Runs outside the service lock."""
        self._m_completed.inc(state="done" if result.ok else "failed")
        if result.cache_hit:
            self._m_cache_hits.inc()
        elif result.ok:
            self._m_job_seconds.observe(result.seconds)
        if not result.trace:
            return
        # Per-phase totals for this job: spans grouped by name, one
        # histogram observation per phase per job.  Phase names are a
        # small fixed taxonomy, so label cardinality stays bounded.
        totals: dict[str, float] = {}
        for span in result.trace:
            name = str(span.get("name", ""))
            totals[name] = totals.get(name, 0.0) + float(
                span.get("seconds", 0.0)
            )
        for name, seconds in sorted(totals.items()):
            self._m_phase_seconds.observe(seconds, phase=name)
        if self._trace_writer is not None:
            job = result.job
            record = trace_record(
                result.trace,
                label=f"{job.query_name}@{job.threshold}",
                query=job.query_name,
                threshold=job.threshold,
                tag=job.tag or None,
                seconds=result.seconds,
            )
            try:
                self._trace_writer.write(record)
            except (OSError, ValueError):
                pass  # a full disk must not fail the job


class JobServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto a bound :class:`JobService`.

    Both the versioned ``/v1/...`` paths and the legacy unversioned
    ones dispatch to the same logic with the same bodies; legacy
    responses additionally carry ``Deprecation: true`` plus a ``Link``
    header naming the v1 successor, and will be removed one release
    after the v1 surface shipped.  Errors — library exceptions and
    unexpected ones alike — leave as the unified envelope via
    :func:`repro.service.protocol.error_response`.
    """

    service: JobService  # bound by make_server
    quiet = True
    server_version = "repro-service/1.0"
    #: Whether the *current* request came in on a legacy path (set per
    #: request in ``_dispatch``; class default covers early failures).
    _deprecated = False

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    def _parts(self) -> list[str]:
        return [p for p in self.path.split("?", 1)[0].split("/") if p]

    def _send_headers(self, code: int, length: int, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(length))
        if self._deprecated:
            successor = protocol.API_PREFIX + self.path
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f'<{successor}>; rel="successor-version"'
            )
        self.end_headers()

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send_headers(code, len(body), "application/json")
        self.wfile.write(body)

    def _send_text(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self._send_headers(code, len(data), content_type)
        self.wfile.write(data)

    def _fail(self, exc: BaseException, detail: Optional[dict] = None) -> None:
        code, payload = protocol.error_response(exc, detail)
        self._send(code, payload)

    def _fail_path(self, method: str) -> None:
        code, _ = protocol.ERROR_CODES["unknown_path"]
        self._send(code, protocol.error_payload(
            "unknown_path", f"no route for {method} {self.path!r}"
        ))

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        return json.loads(raw) if raw else None

    def _read_object(self) -> dict:
        data = self._read_json()
        if not isinstance(data, dict):
            raise RequestError("this endpoint expects a JSON object body")
        return data

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        raw_parts = self._parts()
        versioned = bool(raw_parts) and raw_parts[0] == "v1"
        parts = raw_parts[1:] if versioned else raw_parts
        self._deprecated = not versioned
        try:
            if not self._route(method, parts, versioned):
                self._fail_path(method)
        except KeyError:
            job_id = parts[1] if len(parts) > 1 else "?"
            self._fail(JobNotFoundError(f"unknown job {job_id!r}"))
        except json.JSONDecodeError as exc:
            self._fail(RequestError(f"malformed JSON body: {exc}"))
        except ReproError as exc:
            self._fail(exc)
        except (BrokenPipeError, ConnectionResetError):
            raise  # the client is gone; there is nobody to answer
        except Exception as exc:  # noqa: BLE001 - envelope over HTML 500
            self._fail(exc)

    def _route(self, method: str, parts: list[str], versioned: bool) -> bool:
        """Serve one request; ``False`` means no route matched."""
        if method == "GET":
            if not parts:
                # The catalog is v1-born: the legacy surface never had
                # a root route, so none goes deprecated.
                if versioned:
                    self._send(200, protocol.catalog_payload())
                    return True
                return False
            if parts == ["healthz"]:
                self._send(200, {"ok": True})
                return True
            if parts == ["stats"]:
                self._send(200, self.service.stats_payload())
                return True
            if parts == ["metrics"]:
                self._send_text(
                    200, self.service.metrics_text(), metrics.CONTENT_TYPE
                )
                return True
            if parts == ["jobs"]:
                self._send(200, {"jobs": self.service.list_payload()})
                return True
            if len(parts) == 2 and parts[0] == "jobs":
                self._send(200, self.service.status_payload(parts[1]))
                return True
            if (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "result"):
                code, payload = self.service.result_payload(parts[1])
                if code != 200:
                    self._fail(
                        ResultNotReadyError(
                            f"job {parts[1]} is {payload['state']}; "
                            f"the result exists once it is terminal"
                        ),
                        detail=payload,
                    )
                else:
                    self._send(200, payload)
                return True
            return False
        if method == "POST":
            if parts == ["jobs"]:
                data = self._read_json()
                if isinstance(data, dict) and "jobs" in data:
                    data = data["jobs"]
                specs = [data] if isinstance(data, dict) else data
                if not isinstance(specs, list) or not specs:
                    raise RequestError(
                        "POST /v1/jobs expects a job spec object or a "
                        "non-empty list of specs"
                    )
                self._send(200, {"ids": self.service.submit_specs(specs)})
                return True
            if (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "cancel"):
                cancelled = self.service.cancel(parts[1])
                self._send(200, {"id": parts[1], "cancelled": cancelled})
                return True
            if len(parts) == 2 and parts[0] == "workers":
                # Fleet endpoints are v1-only: they were born versioned,
                # so no legacy spelling exists to deprecate.
                if not versioned:
                    return False
                return self._route_worker(parts[1])
            return False
        return False

    def _route_worker(self, action: str) -> bool:
        if action == "claim":
            data = self._read_object()
            self._send(200, self.service.worker_claim(data.get("worker")))
            return True
        if action == "heartbeat":
            data = self._read_object()
            self._send(200, self.service.worker_heartbeat(
                data.get("worker"), data.get("id")
            ))
            return True
        if action == "complete":
            data = self._read_object()
            self._send(200, self.service.worker_complete(
                data.get("worker"), data.get("id"), data.get("payload")
            ))
            return True
        return False


def make_server(
    service: JobService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``service`` (port 0 picks a free port).

    Bind failures (port in use, bad host) surface as
    :class:`ServiceError` so CLI callers report them as one-line errors.
    """
    handler = type(
        "BoundJobServiceHandler",
        (JobServiceHandler,),
        {"service": service, "quiet": quiet},
    )
    try:
        server = ThreadingHTTPServer((host, port), handler)
    except OSError as exc:
        raise ServiceError(f"cannot bind {host}:{port}: {exc}") from None
    server.daemon_threads = True
    return server
