"""A small HTTP client for the job service's v1 wire protocol.

Used by the ``repro submit`` / ``repro poll`` / ``repro worker`` CLI
subcommands and the tests; stdlib-only (``urllib``).  The client speaks
only versioned ``/v1/...`` paths (:mod:`repro.service.protocol`).

Failures surface as *typed* exceptions: an error response's envelope
code is mapped through
:data:`repro.service.protocol.EXCEPTION_FOR_CODE`, so callers can catch
:class:`~repro.errors.JobNotFoundError`,
:class:`~repro.errors.QueueFullError`,
:class:`~repro.errors.LeaseLostError`, ... individually — all of them
subclasses of :class:`repro.errors.ServiceError`, which CLI callers
still map to exit code 2 like any other library error.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import warnings
from typing import Sequence

from repro.errors import ServiceError
from repro.obs import clock
from repro.service.protocol import API_PREFIX, EXCEPTION_FOR_CODE
from repro.service.state import JOB_CANCELLED, TERMINAL_STATES


class ServiceClient:
    """Talks JSON to a running :class:`repro.service.JobService`.

    A refused connection (the request never left this process) is
    retried with exponential backoff (``connect_retries`` extra attempts
    starting at ``retry_backoff`` seconds): ``repro submit`` typically
    races the ``repro serve`` process it was started after, and
    retrying a connection that was never made is safe for any method,
    POSTs included.  Resets, read timeouts, and HTTP error statuses are
    never retried — the server may have accepted the request or made a
    decision.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        connect_retries: int = 4,
        retry_backoff: float = 0.1,
    ):
        self._base = base_url.rstrip("/")
        self._timeout = timeout
        self._connect_retries = max(0, connect_retries)
        self._retry_backoff = retry_backoff

    @property
    def base_url(self) -> str:
        return self._base

    def _raise_http_error(
        self, method: str, path: str, exc: urllib.error.HTTPError
    ) -> None:
        """Map an HTTP error onto a typed exception via the envelope.

        A non-envelope body (a proxy's HTML error page, a pre-v1
        server) degrades to plain :class:`ServiceError` with the raw
        text, so the failure is never swallowed.
        """
        raw = exc.read().decode(errors="replace")
        code = None
        message = raw or str(exc.reason)
        try:
            envelope = json.loads(raw)
            error = envelope.get("error")
            if isinstance(error, dict):
                code = error.get("code")
                message = error.get("message", message)
        except (json.JSONDecodeError, AttributeError):
            pass
        exc_type = EXCEPTION_FOR_CODE.get(code, ServiceError)
        label = f" {code}" if code else ""
        raise exc_type(
            f"{method} {path} failed ({exc.code}{label}): {message}"
        ) from None

    def _request(self, method: str, path: str, payload=None) -> dict:
        """One v1 request; ``path`` is relative to :data:`API_PREFIX`."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self._base + API_PREFIX + path,
            data=data, headers=headers, method=method,
        )
        for attempt in range(self._connect_retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self._timeout
                ) as resp:
                    body = resp.read().decode()
                break
            except urllib.error.HTTPError as exc:
                self._raise_http_error(method, path, exc)
            except urllib.error.URLError as exc:
                # Retry only a refused connection: that alone guarantees
                # the request never reached the server.  A reset or
                # broken pipe can happen *after* the server accepted a
                # POST (died before answering), and a read timeout
                # (also a URLError) may mean it is still working —
                # retrying either could duplicate the job.
                refused = isinstance(exc.reason, ConnectionRefusedError)
                if refused and attempt < self._connect_retries:
                    time.sleep(self._retry_backoff * (2 ** attempt))
                    continue
                raise ServiceError(
                    f"cannot reach job service at {self._base}: {exc.reason}"
                ) from None
        try:
            return json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed response from {method} {path}: {exc}"
            ) from None

    # -- endpoints ---------------------------------------------------------

    def catalog(self) -> dict:
        """The machine-readable route catalog (``GET /v1/``)."""
        return self._request("GET", "/")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, spec: dict) -> str:
        """Submit one job spec (named or inline); returns its job id.

        Passing a sequence here is the deprecated pre-v1 calling
        convention — it still works (returning a *list* of ids) but
        warns; use :meth:`submit_many`.
        """
        if not isinstance(spec, dict):
            warnings.warn(
                "ServiceClient.submit(sequence) is deprecated; use "
                "submit_many(specs) for batches",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.submit_many(spec)  # type: ignore[return-value]
        return self.submit_many([spec])[0]

    def submit_many(self, specs: Sequence[dict]) -> list[str]:
        """Submit job specs; returns the job ids in submission order."""
        return self._request("POST", "/jobs", payload=list(specs))["ids"]

    def list_jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> bool:
        return self._request("POST", f"/jobs/{job_id}/cancel")["cancelled"]

    # -- fleet-worker endpoints (remote executor only) ---------------------

    def worker_claim(self, worker_id: str) -> dict:
        """Claim the next leased job; ``{"job": None}`` when idle."""
        return self._request(
            "POST", "/workers/claim", payload={"worker": worker_id}
        )

    def worker_heartbeat(self, worker_id: str, job_id: str) -> dict:
        """Extend the lease on ``job_id``; raises
        :class:`~repro.errors.LeaseLostError` once it is gone."""
        return self._request(
            "POST", "/workers/heartbeat",
            payload={"worker": worker_id, "id": job_id},
        )

    def worker_complete(
        self, worker_id: str, job_id: str, payload: dict
    ) -> dict:
        """Deliver a finished job's lossless result payload."""
        return self._request(
            "POST", "/workers/complete",
            payload={"worker": worker_id, "id": job_id, "payload": payload},
        )

    # -- polling helpers ---------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        interval: float = 0.2,
    ) -> dict:
        """Poll until ``job_id`` is terminal; return its result payload.

        A cancelled job returns its status payload (it has no result).
        Raises :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = clock.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                if status["state"] == JOB_CANCELLED:
                    return status
                return self.result(job_id)
            if clock.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state: {status['state']})"
                )
            time.sleep(interval)

    def wait_all(
        self,
        job_ids: Sequence[str],
        timeout: float = 300.0,
        interval: float = 0.2,
    ) -> list[dict]:
        """Wait for every id (shared deadline); payloads in input order."""
        deadline = clock.monotonic() + timeout
        payloads = []
        for job_id in job_ids:
            remaining = max(0.0, deadline - clock.monotonic())
            payloads.append(self.wait(job_id, timeout=remaining, interval=interval))
        return payloads

    def wait_until_healthy(
        self, timeout: float = 30.0, interval: float = 0.2
    ) -> None:
        """Block until ``/v1/healthz`` answers (server startup helper)."""
        deadline = clock.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except ServiceError:
                if clock.monotonic() >= deadline:
                    raise ServiceError(
                        f"job service at {self._base} did not become "
                        f"healthy within {timeout:.0f}s"
                    ) from None
                time.sleep(interval)
