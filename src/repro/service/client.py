"""A small HTTP client for the job service.

Used by the ``repro submit`` / ``repro poll`` CLI subcommands and the
tests; stdlib-only (``urllib``).  Every failure — unreachable server,
HTTP error status, malformed body — surfaces as
:class:`repro.errors.ServiceError` so CLI callers map it to exit code 2
like any other library error.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Sequence

from repro.errors import ServiceError
from repro.obs import clock
from repro.service.state import JOB_CANCELLED, TERMINAL_STATES


class ServiceClient:
    """Talks JSON to a running :class:`repro.service.JobService`.

    A refused connection (the request never left this process) is
    retried with exponential backoff (``connect_retries`` extra attempts
    starting at ``retry_backoff`` seconds): ``repro submit`` typically
    races the ``repro serve`` process it was started after, and
    retrying a connection that was never made is safe for any method,
    POSTs included.  Resets, read timeouts, and HTTP error statuses are
    never retried — the server may have accepted the request or made a
    decision.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        connect_retries: int = 4,
        retry_backoff: float = 0.1,
    ):
        self._base = base_url.rstrip("/")
        self._timeout = timeout
        self._connect_retries = max(0, connect_retries)
        self._retry_backoff = retry_backoff

    @property
    def base_url(self) -> str:
        return self._base

    def _request(self, method: str, path: str, payload=None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self._base + path, data=data, headers=headers, method=method
        )
        for attempt in range(self._connect_retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self._timeout
                ) as resp:
                    body = resp.read().decode()
                break
            except urllib.error.HTTPError as exc:
                raw = exc.read().decode(errors="replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except (json.JSONDecodeError, AttributeError):
                    message = raw or exc.reason
                raise ServiceError(
                    f"{method} {path} failed ({exc.code}): {message}"
                ) from None
            except urllib.error.URLError as exc:
                # Retry only a refused connection: that alone guarantees
                # the request never reached the server.  A reset or
                # broken pipe can happen *after* the server accepted a
                # POST (died before answering), and a read timeout
                # (also a URLError) may mean it is still working —
                # retrying either could duplicate the job.
                refused = isinstance(exc.reason, ConnectionRefusedError)
                if refused and attempt < self._connect_retries:
                    time.sleep(self._retry_backoff * (2 ** attempt))
                    continue
                raise ServiceError(
                    f"cannot reach job service at {self._base}: {exc.reason}"
                ) from None
        try:
            return json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed response from {method} {path}: {exc}"
            ) from None

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, specs: "Sequence[dict] | dict") -> list[str]:
        """Submit job specs (named or inline); returns the job ids.

        Accepts one spec dict or a sequence of them — the single-job
        case is common enough (smoke scripts, notebooks) that forcing a
        one-element list on every caller just invites the "iterating a
        dict submits its keys" mistake.
        """
        if isinstance(specs, dict):
            specs = [specs]
        return self._request("POST", "/jobs", payload=list(specs))["ids"]

    def list_jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> bool:
        return self._request("POST", f"/jobs/{job_id}/cancel")["cancelled"]

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        interval: float = 0.2,
    ) -> dict:
        """Poll until ``job_id`` is terminal; return its result payload.

        A cancelled job returns its status payload (it has no result).
        Raises :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = clock.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                if status["state"] == JOB_CANCELLED:
                    return status
                return self.result(job_id)
            if clock.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state: {status['state']})"
                )
            time.sleep(interval)

    def wait_all(
        self,
        job_ids: Sequence[str],
        timeout: float = 300.0,
        interval: float = 0.2,
    ) -> list[dict]:
        """Wait for every id (shared deadline); payloads in input order."""
        deadline = clock.monotonic() + timeout
        payloads = []
        for job_id in job_ids:
            remaining = max(0.0, deadline - clock.monotonic())
            payloads.append(self.wait(job_id, timeout=remaining, interval=interval))
        return payloads

    def wait_until_healthy(
        self, timeout: float = 30.0, interval: float = 0.2
    ) -> None:
        """Block until ``/healthz`` answers (server startup helper)."""
        deadline = clock.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except ServiceError:
                if clock.monotonic() >= deadline:
                    raise ServiceError(
                        f"job service at {self._base} did not become "
                        f"healthy within {timeout:.0f}s"
                    ) from None
                time.sleep(interval)
