"""Pluggable execution backends for the job service.

The service's queue, cancellation, backpressure, timeout-clamping,
durability, and stats logic live in :class:`repro.service.server.JobService`
and are backend-independent; an :class:`ExecutorBackend` only decides
*where one job's search runs* once a service worker thread has claimed it:

:class:`ThreadBackend`
    In this process, on the claiming thread — the original design.  All
    worker threads share one ``_cached_context`` / ``_cached_session``
    cache (maximum warm-cache reuse), but the search is pure Python, so
    the GIL caps one service at roughly one core no matter how many
    worker threads are configured.

:class:`ProcessPoolBackend`
    On a ``concurrent.futures`` process pool sized to the worker-thread
    count.  Each worker *process* owns its warm context/privacy-session
    caches (content-hash keyed, exactly as the batch layer's pool
    workers do) and — when the service has a file-backed store —
    consults the shared SQLite result cache before searching and
    persists fresh results into it.  Search parallelism scales to the
    cores; the store keeps dedup global across the processes.

Results cross the pool as :meth:`BatchJobResult.to_payload` dictionaries
(the PR-4 lossless JSON round trip), never as pickled result objects:
the payload is the same representation the store and the HTTP result
endpoint use, so whatever survives transport is exactly what every other
consumer sees.  A job that raises in a pool worker comes back as an
error payload carrying the traceback summary.  A worker process that
*dies* (OOM kill, segfault) condemns the whole pool — ``concurrent
.futures`` fails every in-flight future, not just the dead worker's —
so the backend replaces the pool and retries each interrupted job once
on the fresh one: innocent siblings typically survive a neighbor's
death (their retry completes unless the culprit breaks the next pool
mid-flight too), while a job that breaks two pools in a row fails
visibly.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from repro.batch.jobs import BatchJobResult
from repro.batch.optimizer import run_job, run_job_payload
from repro.errors import ServiceError
from repro.service.state import EXECUTOR_NAMES


class ExecutorBackend:
    """Where a service worker thread executes one claimed job.

    ``run`` is called from (possibly many) service worker threads and
    must be thread-safe; it returns a :class:`BatchJobResult` and never
    raises for job-level failures (those land in ``result.error``).
    ``job_id`` is the service's id for the job — local backends ignore
    it, the remote backend leases it to fleet workers under that id.
    ``manages_store`` tells the service whether this backend already
    consults/persists the shared result cache itself, so the service
    does not double-write fresh results.  ``is_remote`` gates the
    ``/v1/workers/*`` endpoints: only a fleet-facing backend serves
    claim/heartbeat/complete traffic.
    """

    name = "?"
    manages_store = False
    is_remote = False

    def start(self) -> "ExecutorBackend":
        """Bring up any execution resources (idempotent)."""
        return self

    def run(self, job, settings, job_id=None) -> BatchJobResult:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release execution resources; in-flight jobs may be abandoned."""


class ThreadBackend(ExecutorBackend):
    """Run the search in-process, on the claiming worker thread.

    Cache consult/persist stays with the service (its ``ResultCache``
    wraps the same ``JobStore`` connection, which keeps ``:memory:``
    stores working), so this backend is a plain ``run_job`` call.
    """

    name = "thread"
    manages_store = False

    def run(self, job, settings, job_id=None) -> BatchJobResult:
        return run_job(job, settings)


def _default_mp_context():
    """The start method for service pools: ``fork`` where it exists.

    Forked workers inherit the parent's imported modules and any
    already-warm batch caches, so they are serving within milliseconds;
    ``spawn`` (the only portable fallback) pays a fresh interpreter and
    import per worker instead.  The service pre-spawns its workers
    before the HTTP and worker threads exist (see
    :meth:`ProcessPoolBackend.start`), which keeps the forks
    single-threaded — the condition Python 3.12+ warns about.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessPoolBackend(ExecutorBackend):
    """Run searches on a process pool, one process per service worker.

    ``store_path`` (optional) is the file-backed job store the workers
    share: each worker process opens its own SQLite connection
    (pid-keyed inside ``run_job``), consults the result cache before
    searching, and persists fresh results — WAL journaling serializes
    the short writes.  In-memory stores cannot cross processes; the
    service keeps cache handling to itself in that case
    (``manages_store`` is False when no path was given).
    """

    name = "process"

    def __init__(
        self,
        workers: int = 1,
        store_path: Optional[str] = None,
        mp_context=None,
    ):
        self._workers = max(1, int(workers))
        self._store_path = store_path
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._pools_replaced = 0

    @property
    def manages_store(self) -> bool:  # type: ignore[override]
        return self._store_path is not None

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def pools_replaced(self) -> int:
        """How many times a broken pool was swapped for a fresh one."""
        return self._pools_replaced

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=self._mp_context or _default_mp_context(),
                )
            return self._pool

    def start(self) -> "ProcessPoolBackend":
        """Create the pool and pre-spawn every worker process.

        Eager spawning matters under the ``fork`` start method: the
        service calls this before its worker/HTTP threads exist, so the
        forks happen while the parent is still single-threaded (forking
        a multi-threaded process risks inheriting locks mid-acquire).
        One trivial task per worker forces the executor to actually
        create the processes.
        """
        pool = self._ensure_pool()
        for future in [
            pool.submit(os.getpid) for _ in range(self._workers)
        ]:
            future.result()
        return self

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is pool:
                self._pool = None
                self._pools_replaced += 1
        pool.shutdown(wait=False, cancel_futures=True)

    def run(self, job, settings, job_id=None) -> BatchJobResult:
        last_error = None
        for attempt in range(2):
            pool = self._ensure_pool()
            try:
                payload = pool.submit(
                    run_job_payload, job, settings, self._store_path
                ).result()
            except BrokenProcessPool as exc:
                # A worker died (OOM kill, segfault, an os._exit in
                # native code) and the executor condemned the *whole*
                # pool — this future fails whether or not its job was
                # the one on the dead worker.  Discard the pool and
                # retry once on a fresh one, so a neighbor's death does
                # not fail innocent in-flight jobs; a job that breaks
                # two pools in a row is the likely culprit and fails
                # visibly (the search is pure, so a retry is safe).
                self._discard_pool(pool)
                last_error = exc
                continue
            return BatchJobResult.from_payload(payload, job)
        return BatchJobResult(
            job=job,
            error=(
                f"a worker process died while this job was in flight, "
                f"twice — on the original pool and on a fresh retry pool "
                f"({type(last_error).__name__}: {last_error}); the job "
                f"itself likely kills its worker (out of memory?)"
            ),
        )

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def make_backend(
    executor: str,
    workers: int = 1,
    store_path: Optional[str] = None,
    *,
    lease_seconds: float = 15.0,
    lease_attempts: int = 3,
    store=None,
) -> ExecutorBackend:
    """Build the named backend; unknown names raise :class:`ServiceError`.

    ``workers`` sizes the process pool (thread execution is sized by the
    service's worker threads directly); ``store_path`` is forwarded to
    pool workers only — it must be a path other processes can open, so
    callers pass ``None`` for in-memory stores.  The lease knobs and
    ``store`` (the service's own :class:`~repro.store.JobStore`, for
    lease audit rows) apply to the ``remote`` backend only.
    """
    if executor == "thread":
        return ThreadBackend()
    if executor == "process":
        return ProcessPoolBackend(workers=workers, store_path=store_path)
    if executor == "remote":
        # Imported here, not at module top: fleet.py subclasses
        # ExecutorBackend from this module.
        from repro.service.fleet import RemoteBackend

        return RemoteBackend(
            lease_seconds=lease_seconds,
            max_attempts=lease_attempts,
            store=store,
        )
    raise ServiceError(
        f"unknown executor {executor!r} "
        f"(choose from: {', '.join(EXECUTOR_NAMES)})"
    )
