"""Job states and records shared by the service server and client.

Kept dependency-light so :mod:`repro.service.client` can import the state
vocabulary without pulling in the server (or the optimizer stack behind
it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_CANCELLED})

#: Backends that execute jobs with resources of this process (threads
#: or a local process pool) — the tiers that need no external workers.
LOCAL_EXECUTOR_NAMES = ("thread", "process")

#: The execution backends ``repro serve --executor`` accepts, in the
#: order the CLI advertises them.  Lives here (not in
#: :mod:`repro.service.executors`) so the CLI parser can name the
#: choices without importing the optimizer stack behind the backends.
#: ``remote`` runs nothing locally: jobs wait for fleet workers
#: (``repro worker``) to claim them over HTTP.
EXECUTOR_NAMES = (*LOCAL_EXECUTOR_NAMES, "remote")


@dataclass
class JobRecord:
    """One submitted job's lifecycle inside the service.

    ``result`` is the :class:`repro.batch.BatchJobResult` once the job ran
    (its ``error`` field holds per-job search failures); ``error`` here is
    reserved for service-level failures around the run itself.
    """

    job_id: str
    job: object  # BatchJob | InlineJob
    state: str = JOB_QUEUED
    result: Optional[object] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Which execution backend claimed the job
    #: ("thread"/"process"/"remote"); ``None`` until it leaves the
    #: queue.  Mixed deployments (a thread service and a process service
    #: sharing one store) stay auditable.
    executor: Optional[str] = None
    #: On the remote tier: the fleet worker id that completed the job
    #: (``None`` elsewhere, and until a worker delivers).
    worker: Optional[str] = None

    def status_payload(self) -> dict:
        """The JSON-ready status summary (no heavy result fields)."""
        payload: dict = {
            "id": self.job_id,
            "state": self.state,
            "executor": self.executor,
            "worker": self.worker,
            "query_name": self.job.query_name,
            "threshold": self.job.threshold,
            "tag": self.job.tag,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload.update(
                found=self.result.found,
                privacy=self.result.privacy,
                seconds=self.result.seconds,
                session_reused=self.result.session_reused,
                cache_hit=self.result.cache_hit,
                error=self.result.error,
            )
        return payload

    def result_payload(self) -> dict:
        """The full JSON-ready outcome (terminal states only)."""
        payload = {"id": self.job_id, "state": self.state}
        if self.result is not None:
            payload.update(self.result.to_payload())
        elif self.error is not None:
            payload["error"] = self.error
        return payload
