"""A simulated replication of the paper's user study (Section 5.2).

The paper ran 12 database-literate users in two groups: Group A saw a
K-example with its *original* provenance, Group B the *abstracted*
provenance plus the abstraction tree.  Tasks: (1) infer the underlying
query, (2) answer 10 hypothetical questions about the effect of deleting
rows on the query results.  Results (Table 7): 6/6 vs 0/6 identification,
9.6/10 vs 8.5/10 question accuracy.

Human subjects are not reproducible offline, so both tasks are simulated
by programs that exercise the same information:

* Query inference is the CIM-query attack itself: a user identifies the
  query iff exactly one CIM query fits what they see and it is equivalent
  to the real one.  Abstractions with privacy >= 2 defeat this by
  construction.
* Hypothetical questions are answered by an exact reasoner over the
  (possibly abstracted) provenance: an occurrence's fate under a deletion
  predicate is *known* if it is concrete, or if every/no leaf below its
  abstract label is deleted; otherwise the simulated user must guess.
  A small lapse rate models the "misunderstandings or lack of
  concentration" the paper reports for Group A.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.abstraction.tree import AbstractionTree
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer
from repro.db.database import KDatabase
from repro.db.tuples import Tuple
from repro.provenance.kexample import AbstractedKExample, KExample
from repro.query.ast import CQ
from repro.query.containment import is_contained_in, is_equivalent
from repro.seeding import DEFAULT_SEED


@dataclass(frozen=True)
class HypotheticalQuestion:
    """'If the tuples matching ``predicate`` were deleted, would output row
    ``row_index`` still be derivable?'"""

    description: str
    predicate: Callable[[Tuple], bool]
    row_index: int

    def ground_truth(self, example: KExample) -> bool:
        """True iff the row survives the deletion (no used tuple deleted)."""
        row = example.rows[self.row_index]
        return not any(
            self.predicate(example.tuple_of(ann)) for ann in row.occurrences
        )


@dataclass
class UserStudyResult:
    """Aggregate outcomes in the shape of Table 7 and Figure 20."""

    group_a_identified: int
    group_b_identified: int
    group_size: int
    group_a_correct: list[int]  # per question: # of group-A users correct
    group_b_correct: list[int]
    n_questions: int

    @property
    def group_a_accuracy(self) -> float:
        return sum(self.group_a_correct) / (self.group_size * self.n_questions)

    @property
    def group_b_accuracy(self) -> float:
        return sum(self.group_b_correct) / (self.group_size * self.n_questions)

    def summary(self) -> str:
        return (
            f"identification: A {self.group_a_identified}/{self.group_size}, "
            f"B {self.group_b_identified}/{self.group_size}; "
            f"question accuracy: A {self.group_a_accuracy:.0%}, "
            f"B {self.group_b_accuracy:.0%}"
        )


def simulate_query_inference(
    computer: PrivacyComputer,
    abstracted: AbstractedKExample,
    real_query: CQ,
) -> bool:
    """Whether a user can pin down the query from what they see.

    Succeeds iff the CIM attack yields exactly one candidate and that
    candidate is the real query or a data-determined specialization of it
    (e.g. the example pins 'Kevin Bacon, born 1958' although the query only
    names him — a human would still say they identified the query).
    """
    cims = computer.cim_queries(abstracted)
    if len(cims) != 1:
        return False
    (candidate,) = cims
    return is_equivalent(candidate, real_query) or is_contained_in(
        candidate, real_query
    )


def _answer_with_abstraction(
    question: HypotheticalQuestion,
    abstracted: AbstractedKExample,
    tree: AbstractionTree,
    example: KExample,
    rng: random.Random,
) -> bool:
    """A Group-B user's answer: exact when determinable, a guess otherwise."""
    row = abstracted.rows[question.row_index]
    definitely_deleted = False
    any_unknown = False
    for label in row.occurrences:
        if label in tree and not tree.is_leaf(label):
            leaf_fates = {
                question.predicate(example.registry.resolve(leaf))
                for leaf in tree.leaves_under(label)
            }
            if leaf_fates == {True}:
                definitely_deleted = True
            elif True in leaf_fates:
                any_unknown = True
        else:
            if question.predicate(example.registry.resolve(label)):
                definitely_deleted = True
    if definitely_deleted:
        return False  # the row does not survive
    if any_unknown:
        return rng.random() < 0.5  # undetermined: coin flip
    return True


def generate_questions(
    example: KExample,
    database: KDatabase,
    n_questions: int = 10,
    seed: int = DEFAULT_SEED,
) -> list[HypotheticalQuestion]:
    """Deletion questions mixing hits and misses over the example's rows.

    Half the questions target (relation, column, value) triples drawn from
    tuples the provenance actually uses (deletions that kill the row), half
    from unrelated tuples (deletions that spare it).
    """
    rng = random.Random(seed)
    questions: list[HypotheticalQuestion] = []

    used: list[Tuple] = []
    for row in example.rows:
        used.extend(example.tuple_of(ann) for ann in row.occurrences)
    used_annotations = {t.annotation for t in used}
    unused = [
        t for t in database.tuples() if t.annotation not in used_annotations
    ]
    rng.shuffle(unused)

    def add(source: Tuple, row_index: int) -> None:
        column = rng.randrange(source.arity)
        value = source.values[column]
        relation = source.relation

        def predicate(t: Tuple, relation=relation, column=column, value=value):
            return t.relation == relation and t.values[column] == value

        questions.append(HypotheticalQuestion(
            description=(
                f"delete all {relation} rows with "
                f"{database.schema.relation(relation).attributes[column]}"
                f" = {value!r}; does output row {row_index} survive?"
            ),
            predicate=predicate,
            row_index=row_index,
        ))

    while len(questions) < n_questions:
        row_index = rng.randrange(len(example.rows))
        if len(questions) % 2 == 0:
            row = example.rows[row_index]
            ann = rng.choice(row.occurrences)
            add(example.tuple_of(ann), row_index)
        elif unused:
            add(unused[len(questions) % len(unused)], row_index)
        else:
            add(rng.choice(used), row_index)
    return questions[:n_questions]


def run_user_study(
    example: KExample,
    real_query: CQ,
    tree: AbstractionTree,
    threshold: int = 2,
    group_size: int = 6,
    n_questions: int = 10,
    lapse_rate: float = 0.04,
    seed: int = DEFAULT_SEED,
    questions: Optional[Sequence[HypotheticalQuestion]] = None,
    database: Optional[KDatabase] = None,
) -> UserStudyResult:
    """Run the full simulated study for one query and tree.

    Group A receives ``example`` as-is; Group B receives the optimal
    abstraction at ``threshold``.  ``lapse_rate`` is the per-question
    probability that a user errs despite knowing the answer (the paper's
    Group A scored 9.6/10, not 10/10).
    """
    rng = random.Random(seed)
    result = find_optimal_abstraction(
        example, tree, threshold,
        config=OptimizerConfig(max_candidates=20_000),
    )
    if not result.found or result.abstracted is None:
        raise ValueError(
            f"no abstraction with privacy >= {threshold}; "
            "use a larger tree or a smaller threshold"
        )
    abstracted = result.abstracted

    computer = PrivacyComputer(tree, example.registry)
    identity = _identity_abstraction(example, tree)

    a_identifies = simulate_query_inference(computer, identity, real_query)
    b_identifies = simulate_query_inference(computer, abstracted, real_query)

    if questions is None:
        if database is None:
            raise ValueError("database is required to generate questions")
        questions = generate_questions(
            example, database, n_questions=n_questions, seed=seed
        )
    n_questions = len(questions)

    a_correct = [0] * n_questions
    b_correct = [0] * n_questions
    for _user in range(group_size):
        for q_index, question in enumerate(questions):
            truth = question.ground_truth(example)
            # Group A: exact knowledge, occasional lapse.
            a_answer = truth if rng.random() >= lapse_rate else not truth
            if a_answer == truth:
                a_correct[q_index] += 1
            # Group B: reason over the abstraction, occasional lapse.
            b_exact = _answer_with_abstraction(
                question, abstracted, tree, example, rng
            )
            b_answer = b_exact if rng.random() >= lapse_rate else not b_exact
            if b_answer == truth:
                b_correct[q_index] += 1

    return UserStudyResult(
        group_a_identified=group_size if a_identifies else 0,
        group_b_identified=group_size if b_identifies else 0,
        group_size=group_size,
        group_a_correct=a_correct,
        group_b_correct=b_correct,
        n_questions=n_questions,
    )


def _identity_abstraction(
    example: KExample, tree: AbstractionTree
) -> AbstractedKExample:
    from repro.abstraction.function import AbstractionFunction

    return AbstractionFunction.identity(tree, example).apply(example)
