"""Simulated user study (Table 7 / Figure 20 substitution)."""

from repro.userstudy.simulator import (
    HypotheticalQuestion,
    UserStudyResult,
    generate_questions,
    run_user_study,
    simulate_query_inference,
)

__all__ = [
    "HypotheticalQuestion",
    "UserStudyResult",
    "generate_questions",
    "run_user_study",
    "simulate_query_inference",
]
