"""Canonical content hashing for optimizer jobs.

The optimizer is pure: the optimal abstraction for a given (context,
threshold, optimizer config, search mode) never changes.  This module
defines the *one* canonical content hash the whole codebase keys that
purity on — the inline-context hash in :mod:`repro.batch.jobs`, the
result cache consulted by batch workers and the job service, and the
persistent :class:`~repro.store.jobstore.JobStore` all derive from the
helpers here, so a hash computed in any process (or on any machine with
the same code) addresses the same work.

What goes into :func:`job_content_hash`:

* the **context spec** — for an :class:`~repro.batch.jobs.InlineJob` the
  content hash of its serialized (database, tree, query/K-example,
  n_rows); for a named-workload :class:`~repro.batch.jobs.BatchJob` the
  workload coordinates (``query_name``/``n_rows``/``n_leaves``/``height``)
  *plus* the context-shaping
  :class:`~repro.experiments.settings.ExperimentSettings` fields
  (:data:`CONTEXT_SETTINGS_FIELDS` — the knobs ``prepare_context`` feeds
  into data/tree generation; pool sizes and sweep lists cannot change a
  single job's result and stay out),
* the **threshold**,
* the **effective optimizer config** — the job's own config, or the
  settings-level budgets exactly as ``run_job`` would apply them, every
  switch included (privacy and consistency knobs change results),
* the **search mode** (``"primal"`` today; jobs that grow a ``mode``
  attribute — e.g. a dual search — hash differently automatically once
  the mode is registered in :data:`KNOWN_MODES`; an unregistered mode is
  rejected rather than hashed).

Inline jobs deliberately exclude the settings: their context is fully
self-describing, so the same user data + config shares one cache entry
across settings profiles.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Optional

#: Bumped whenever the hash inputs or payload layout change shape, so a
#: store written by an older code version can never serve a stale result.
HASH_VERSION = "repro-job-v1"

#: The search modes the job layer understands.  The ``mode`` slot is
#: reserved for the dual search ("max privacy under an LOI cap"); until a
#: dual job type exists, "primal" is the only value that may reach a
#: content hash — an unknown mode must fail loudly *before* hashing, or a
#: future dual job run by today's code would be filed (and cached!) as a
#: primal result.
KNOWN_MODES = ("primal",)


def canonical_json(data) -> str:
    """Canonical JSON text: equal values always serialize equally.

    The common input — an inline job's multi-megabyte database dict,
    fresh out of ``json.loads`` — is already plain JSON material, so the
    fast path serializes it in one pass, converting dataclasses, enums,
    and sets lazily via the ``default`` hook only where they occur.
    Inputs the hook cannot finish (non-finite floats, mixed-type dict
    keys) fall back to the :func:`jsonable` deep rebuild, which
    normalizes them; both paths emit identical text for any input the
    fast path accepts.
    """
    try:
        return json.dumps(
            data, sort_keys=True, separators=(",", ":"),
            default=_json_default, allow_nan=False,
        )
    except (TypeError, ValueError):
        return json.dumps(
            jsonable(data), sort_keys=True, separators=(",", ":")
        )


def _json_default(value):
    """Lazy converter for the fast path (mirrors :func:`jsonable`)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: getattr(value, f.name)
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    raise TypeError(
        f"not canonically serializable: {type(value).__name__}"
    )


def jsonable(value):
    """``value`` with dataclasses, enums, and tuples made JSON-safe.

    Dataclasses become sorted dicts, enums their ``value``, tuples/sets
    lists (sets sorted, for determinism); non-finite floats become
    strings (JSON has no ``inf``).  Everything else must already be JSON
    material — an unknown type raises ``TypeError`` at ``dumps`` time
    rather than hashing its ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, float) and (value != value or value in
                                     (float("inf"), float("-inf"))):
        return repr(value)
    return value


def hash_text(text: str) -> str:
    """Hex SHA-256 of ``text`` (the digest every key here bottoms out in)."""
    return hashlib.sha256(text.encode()).hexdigest()


def hash_parts(*parts: str) -> str:
    """Hex SHA-256 of unit-separated text parts.

    The delimiter keeps adjacent parts from aliasing (``("ab", "c")``
    must not equal ``("a", "bc")``).  This is the digest behind
    :meth:`repro.batch.jobs.InlineContext.content_hash`.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


#: The settings fields that shape a *named workload's* generated context
#: — exactly what :func:`repro.experiments.runner.prepare_context` feeds
#: into database/K-example/tree construction (``database_for`` uses the
#: scale/size knobs and the seed, ``build_kexample`` the default row
#: count, ``tree_for`` the tree shape).  Budgets enter the hash through
#: :func:`effective_config`; sweep lists and pool sizes never affect one
#: job's result, so changing them must not invalidate the cache.
CONTEXT_SETTINGS_FIELDS = (
    "tree_leaves",
    "tree_height",
    "kexample_rows",
    "tpch_scale",
    "imdb_people",
    "imdb_movies",
    "seed",
)


def context_settings(settings) -> dict:
    """The named-context identity slice of an ``ExperimentSettings``."""
    return {
        name: jsonable(getattr(settings, name))
        for name in CONTEXT_SETTINGS_FIELDS
    }


def effective_config(job, settings):
    """The config ``run_job`` would actually search with.

    ``job.config is None`` means "use the settings-level budgets"; two
    jobs that resolve to the same effective config must hash equally, so
    the resolution happens *before* hashing, mirroring
    :func:`repro.batch.optimizer.run_job` exactly.
    """
    from repro.core.optimizer import OptimizerConfig

    return job.config or OptimizerConfig(
        max_candidates=settings.max_candidates,
        max_seconds=settings.max_seconds,
    )


#: ``OptimizerConfig`` fields that choose *how* a job executes, never
#: *what* it computes — exactly like the service's executor tier, they
#: are stripped from the effective config before hashing so results
#: cache across engines (a SQL-engine run answers a naive-engine
#: resubmission, and vice versa).  The equivalence tests and the
#: scenario smoke's cross-engine baseline diff enforce the bit-identity
#: this stripping assumes.
EXECUTION_ONLY_CONFIG_FIELDS = ("engine", "trace")


def job_content_hash(job, settings) -> str:
    """The canonical content hash addressing one job's result.

    ``job`` is a :class:`~repro.batch.jobs.BatchJob` or
    :class:`~repro.batch.jobs.InlineJob`; ``settings`` the
    :class:`~repro.experiments.settings.ExperimentSettings` the run
    executes under.  ``tag`` is a display label and never participates;
    neither do the :data:`EXECUTION_ONLY_CONFIG_FIELDS`.
    """
    mode = getattr(job, "mode", "primal")
    if mode not in KNOWN_MODES:
        from repro.errors import JobSpecError

        raise JobSpecError(
            f"unknown search mode {mode!r} "
            f"(known modes: {', '.join(KNOWN_MODES)})"
        )
    inline_context = getattr(job, "context", None)
    if inline_context is not None:
        context_part = {"inline": inline_context.content_hash()}
    else:
        context_part = {
            "query_name": job.query_name,
            "n_rows": job.n_rows,
            "n_leaves": job.n_leaves,
            "height": job.height,
            "settings": context_settings(settings),
        }
    config_part = jsonable(effective_config(job, settings))
    for field_name in EXECUTION_ONLY_CONFIG_FIELDS:
        config_part.pop(field_name, None)
    return hash_text(canonical_json({
        "version": HASH_VERSION,
        "mode": mode,
        "threshold": job.threshold,
        "config": config_part,
        "context": context_part,
    }))


def spec_content_hash(
    spec: dict, settings, *, default_rows: Optional[int] = None
) -> str:
    """`job_content_hash` straight from a JSON job spec.

    Convenience for tools (CLI inspection, tests) that hold a spec but
    not a built job; parses through the one shared validator so spec and
    job hashes can never diverge.
    """
    from repro.batch.jobs import job_from_spec
    from repro.core.optimizer import OptimizerConfig

    job = job_from_spec(
        spec,
        default_rows=default_rows,
        base_config=OptimizerConfig(
            max_candidates=settings.max_candidates,
            max_seconds=settings.max_seconds,
        ),
    )
    return job_content_hash(job, settings)
