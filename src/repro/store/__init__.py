"""Persistent job store and content-addressed result cache.

The optimizer is pure, so identical work need never run twice — not
within a process (the warm caches in :mod:`repro.batch.optimizer`), and
with this package not across processes or restarts either.  A SQLite
file holds job records and full result payloads keyed by a canonical
content hash of (context spec, threshold, effective optimizer config,
search mode); the batch workers, the job service (``repro serve
--store``), and the ``repro jobs`` CLI all share it.  See
``docs/PERFORMANCE.md`` ("Persistent job store & result cache").
"""

from repro.store.cache import ResultCache, shareable_store_path
from repro.store.hashing import (
    CONTEXT_SETTINGS_FIELDS,
    HASH_VERSION,
    canonical_json,
    context_settings,
    effective_config,
    job_content_hash,
    spec_content_hash,
)
from repro.store.jobstore import JobStore, StoredJob

__all__ = [
    "CONTEXT_SETTINGS_FIELDS",
    "HASH_VERSION",
    "JobStore",
    "ResultCache",
    "StoredJob",
    "canonical_json",
    "context_settings",
    "effective_config",
    "job_content_hash",
    "shareable_store_path",
    "spec_content_hash",
]
