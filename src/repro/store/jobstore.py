"""A SQLite-backed persistent job store.

One file (or ``:memory:``) holds two tables:

``jobs``
    Every job the service has accepted: its id, canonical JSON spec
    (:func:`repro.batch.jobs.job_to_spec` — enough to rebuild and re-run
    the job after a restart), content hash, lifecycle state with
    timestamps, and any service-level error.

``results``
    Full :meth:`repro.batch.jobs.BatchJobResult.to_payload` payloads,
    keyed by the job's :func:`~repro.store.hashing.job_content_hash` —
    *content-addressed*, so two jobs asking for the same work share one
    row and the second never runs the optimizer.  ``hits`` /
    ``last_used_at`` record cache traffic and drive ``gc`` retention.

The store is safe to share across the service's HTTP and worker threads
(one connection guarded by a lock) and across batch worker *processes*
(each opens its own connection; WAL journaling plus a busy timeout
serialize the short writes).  All values cross the boundary as canonical
JSON text, so a payload read back is byte-for-byte the payload written.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceError
from repro.obs import clock, metrics, spans

#: Process-local store-operation latency, by operation name.  The timer
#: wraps the lock acquisition too, so lock contention shows up here.
_OP_SECONDS = metrics.REGISTRY.histogram(
    "repro_store_op_seconds",
    "JobStore operation latency (lock wait included), by operation.",
    labelnames=("op",),
)


class _timed:
    """Times one store operation into the histogram and — when a job
    tracer is ambient — the job's aggregated ``store_io`` span."""

    __slots__ = ("_op", "_t0")

    def __init__(self, op: str) -> None:
        self._op = op

    def __enter__(self) -> "_timed":
        self._t0 = clock.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = clock.perf_counter() - self._t0
        _OP_SECONDS.observe(elapsed, op=self._op)
        tracer = spans.current()
        if tracer is not None:
            tracer.add("store_io", elapsed, op=self._op)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id           TEXT PRIMARY KEY,
    seq              INTEGER NOT NULL,
    content_hash     TEXT NOT NULL,
    spec             TEXT NOT NULL,
    state            TEXT NOT NULL,
    error            TEXT,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    lease_worker     TEXT,
    lease_expires_at REAL,
    attempts         INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
CREATE INDEX IF NOT EXISTS jobs_hash ON jobs (content_hash);
CREATE TABLE IF NOT EXISTS results (
    content_hash TEXT PRIMARY KEY,
    payload      TEXT NOT NULL,
    created_at   REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0,
    last_used_at REAL NOT NULL
);
"""


@dataclass(frozen=True)
class StoredJob:
    """One persisted job record, spec already parsed back to a dict."""

    job_id: str
    seq: int
    content_hash: str
    spec: dict
    state: str
    error: Optional[str]
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    #: Fleet lease bookkeeping (remote executor only): the worker id
    #: holding the lease, its wall-clock expiry, and how many times the
    #: job has been claimed (requeues after lost leases included).
    lease_worker: Optional[str] = None
    lease_expires_at: Optional[float] = None
    attempts: int = 0

    @property
    def label(self) -> str:
        """A short human label: the workload name or ``inline``."""
        return str(self.spec.get("query_name", "inline"))


class JobStore:
    """Thread-safe persistence for job records and result payloads."""

    def __init__(self, path: str = ":memory:"):
        self._path = str(path)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                self._path, check_same_thread=False, timeout=10.0
            )
            # WAL lets batch worker processes append results while the
            # service reads; in-memory databases silently keep the
            # default journal, which is fine (they have one process).
            # Connecting is lazy — pointing at a non-SQLite file only
            # fails here, so the schema setup shares the error mapping.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()
            self._conn.commit()
        except sqlite3.Error as exc:
            conn = getattr(self, "_conn", None)
            if conn is not None:
                conn.close()
            raise ServiceError(
                f"cannot open job store {self._path!r}: {exc}"
            ) from None

    def _migrate(self) -> None:
        """Bring a pre-fleet store file up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves an existing ``jobs`` table
        untouched, so the lease columns (added for the remote-executor
        fleet) are retrofitted with ``ALTER TABLE`` — additive and
        nullable, so old code reading a migrated file keeps working.
        """
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        for name, declaration in (
            ("lease_worker", "TEXT"),
            ("lease_expires_at", "REAL"),
            ("attempts", "INTEGER NOT NULL DEFAULT 0"),
        ):
            if name not in columns:
                self._conn.execute(
                    f"ALTER TABLE jobs ADD COLUMN {name} {declaration}"
                )

    @property
    def path(self) -> str:
        return self._path

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- job records -------------------------------------------------------

    def record_job(
        self,
        job_id: str,
        seq: int,
        content_hash: str,
        spec: dict,
        state: str,
        submitted_at: Optional[float] = None,
    ) -> None:
        """Insert (or overwrite) one job record."""
        with _timed("record_job"), self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs "
                "(job_id, seq, content_hash, spec, state, submitted_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    job_id, seq, content_hash,
                    json.dumps(spec, sort_keys=True, separators=(",", ":")),
                    state,
                    # Operational submission timestamp — displayed and
                    # gc-compared, never part of a content hash.
                    time.time() if submitted_at is None else submitted_at,  # repro: allow[REP001]
                ),
            )
            self._conn.commit()

    def update_job(
        self,
        job_id: str,
        state: str,
        *,
        error: Optional[str] = None,
        started_at: Optional[float] = None,
        finished_at: Optional[float] = None,
        clear_started_at: bool = False,
    ) -> None:
        """Advance a job's lifecycle state.

        ``None`` fields keep their stored values (timestamps only move
        forward) — except under ``clear_started_at``, which nulls
        ``started_at``: restart recovery re-queues a job that was running
        in a dead process, and a queued row must not carry that process's
        start timestamp.
        """
        with _timed("update_job"), self._lock:
            if clear_started_at:
                started_sql, started_param = "?", None
            else:
                started_sql, started_param = (
                    "COALESCE(?, started_at)", started_at,
                )
            self._conn.execute(
                "UPDATE jobs SET state = ?, "
                "error = COALESCE(?, error), "
                f"started_at = {started_sql}, "
                "finished_at = COALESCE(?, finished_at) "
                "WHERE job_id = ?",
                (state, error, started_param, finished_at, job_id),
            )
            self._conn.commit()

    def set_lease(
        self,
        job_id: str,
        worker: str,
        expires_at: float,
        attempts: int,
    ) -> None:
        """Record a claimed (or re-heartbeated) fleet lease.

        The in-memory :class:`repro.service.fleet.RemoteBackend` is
        authoritative for lease arbitration (monotonic deadlines); these
        wall-clock rows exist so a restarted service — and offline
        ``repro jobs show`` — can see who held what and how many
        attempts a job has burned.
        """
        with _timed("set_lease"), self._lock:
            self._conn.execute(
                "UPDATE jobs SET lease_worker = ?, lease_expires_at = ?, "
                "attempts = ? WHERE job_id = ?",
                (worker, expires_at, attempts, job_id),
            )
            self._conn.commit()

    def clear_lease(self, job_id: str) -> None:
        """Drop the lease columns (job completed, requeued, or failed);
        ``attempts`` is kept — it is audit history, not lease state."""
        with _timed("clear_lease"), self._lock:
            self._conn.execute(
                "UPDATE jobs SET lease_worker = NULL, "
                "lease_expires_at = NULL WHERE job_id = ?",
                (job_id,),
            )
            self._conn.commit()

    def get_job(self, job_id: str) -> Optional[StoredJob]:
        with _timed("get_job"), self._lock:
            row = self._conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return _stored_job(row) if row is not None else None

    def list_jobs(self, state: Optional[str] = None) -> list[StoredJob]:
        """Every job record (optionally one state), in submission order."""
        query = f"SELECT {_JOB_COLUMNS} FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY seq"
        with _timed("list_jobs"), self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [_stored_job(row) for row in rows]

    def max_seq(self) -> int:
        """The highest numeric job id ever issued (0 for a fresh store)."""
        with self._lock:
            row = self._conn.execute("SELECT MAX(seq) FROM jobs").fetchone()
        return int(row[0] or 0)

    # -- result payloads ---------------------------------------------------

    def save_result(self, content_hash: str, payload: dict) -> bool:
        """Store one result payload; ``False`` when the hash already has one.

        Content-addressing makes the first write authoritative: a racing
        second writer computed the same payload, so keeping the existing
        row preserves bit-identical reads.
        """
        # created_at/last_used_at are gc bookkeeping, not hash inputs.
        now = time.time()  # repro: allow[REP001]
        with _timed("save_result"), self._lock:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(content_hash, payload, created_at, last_used_at) "
                "VALUES (?, ?, ?, ?)",
                (
                    content_hash,
                    json.dumps(payload, sort_keys=True, separators=(",", ":")),
                    now, now,
                ),
            )
            self._conn.commit()
        return cursor.rowcount > 0

    def load_result(self, content_hash: str) -> Optional[dict]:
        """The stored payload for ``content_hash``, bumping the hit counters.

        This is the *cache-hit* path: ``hits``/``last_used_at`` drive gc
        retention, so only reads that stand in for a search should go
        through here.  Inspection and restart recovery use
        :meth:`peek_result`.
        """
        with _timed("load_result"), self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE content_hash = ?",
                (content_hash,),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE results SET hits = hits + 1, last_used_at = ? "
                "WHERE content_hash = ?",
                # LRU clock for gc retention, never hashed.
                (time.time(), content_hash),  # repro: allow[REP001]
            )
            self._conn.commit()
        return json.loads(row[0])

    def peek_result(self, content_hash: str) -> Optional[dict]:
        """The stored payload without touching the usage counters."""
        with _timed("peek_result"), self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE content_hash = ?",
                (content_hash,),
            ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def result_count(self) -> int:
        with _timed("result_count"), self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(row[0])

    # -- maintenance -------------------------------------------------------

    def gc(
        self,
        *,
        keep_results: Optional[int] = None,
        max_age_days: Optional[float] = None,
        drop_terminal_jobs: bool = False,
        now: Optional[float] = None,
    ) -> dict:
        """Prune old rows; returns ``{"results_deleted", "jobs_deleted"}``.

        ``keep_results`` keeps only the N most-recently-used result rows;
        ``max_age_days`` drops results not used (and terminal job records
        not finished) within the window; ``drop_terminal_jobs`` also
        clears *all* done/failed/cancelled job records — their results
        stay unless evicted by the other knobs, so dedup survives.
        Queued/running records are never touched: they are the restart
        recovery set.
        """
        # Retention-window clock (injectable for tests), never hashed.
        now = time.time() if now is None else now  # repro: allow[REP001]
        results_deleted = jobs_deleted = 0
        terminal = ("done", "failed", "cancelled")
        marks = ",".join("?" * len(terminal))
        with self._lock:
            if max_age_days is not None:
                cutoff = now - max_age_days * 86400.0
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE last_used_at < ?", (cutoff,)
                )
                results_deleted += cursor.rowcount
                cursor = self._conn.execute(
                    f"DELETE FROM jobs WHERE state IN ({marks}) "
                    "AND COALESCE(finished_at, submitted_at) < ?",
                    (*terminal, cutoff),
                )
                jobs_deleted += cursor.rowcount
            if keep_results is not None:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE content_hash NOT IN ("
                    "SELECT content_hash FROM results "
                    "ORDER BY last_used_at DESC, content_hash LIMIT ?)",
                    (max(0, keep_results),),
                )
                results_deleted += cursor.rowcount
            if drop_terminal_jobs:
                cursor = self._conn.execute(
                    f"DELETE FROM jobs WHERE state IN ({marks})", terminal
                )
                jobs_deleted += cursor.rowcount
            self._conn.commit()
        return {
            "results_deleted": results_deleted,
            "jobs_deleted": jobs_deleted,
        }


_JOB_COLUMNS = (
    "job_id, seq, content_hash, spec, state, error, "
    "submitted_at, started_at, finished_at, "
    "lease_worker, lease_expires_at, attempts"
)


def _stored_job(row) -> StoredJob:
    (job_id, seq, content_hash, spec, state, error,
     submitted_at, started_at, finished_at,
     lease_worker, lease_expires_at, attempts) = row
    return StoredJob(
        job_id=job_id,
        seq=int(seq),
        content_hash=content_hash,
        spec=json.loads(spec),
        state=state,
        error=error,
        submitted_at=submitted_at,
        started_at=started_at,
        finished_at=finished_at,
        lease_worker=lease_worker,
        lease_expires_at=lease_expires_at,
        attempts=int(attempts or 0),
    )
