"""The content-addressed result cache over a :class:`JobStore`.

This is the API the execution layers consult *before* running the
optimizer: :func:`repro.batch.optimizer.run_job` (one cache per worker
process, keyed by store path) and the job service's run loop both ask
:meth:`ResultCache.lookup` first — a hit rebuilds the stored
:class:`~repro.batch.jobs.BatchJobResult` instantly, marked
``cache_hit=True``; a miss runs the search and :meth:`ResultCache.store`
persists the payload for every later identical job, in this process or
any other, before or after a restart.

Only clean, *reproducible* results are cached: a crashed search
(``not result.ok``) may be environmental (out of memory, a bug since
fixed) and must be retried, and a search that tripped its **wall-clock**
budget is skipped too — how far a search gets in ``max_seconds`` depends
on machine speed and load, so caching it would freeze one slow machine's
best-so-far as the canonical answer for every faster reader of the same
store.  A ``max_candidates``-limited outcome, by contrast, is exactly as
deterministic as a completed search (the budget is part of the content
hash) and is cached, found or not.

Store-level failures (a corrupt or locked file) degrade to cache misses
rather than failing the job: the cache is an amortization, never a
correctness dependency.
"""

from __future__ import annotations

import sqlite3
from typing import Optional

from repro.obs import metrics, spans
from repro.store.hashing import job_content_hash
from repro.store.jobstore import JobStore

#: Process-local cache-lookup traffic, by outcome: ``hit`` (payload
#: served), ``miss`` (no row), ``error`` (a damaged store degraded to a
#: miss — the only signal the degradation leaves behind).
_LOOKUPS = metrics.REGISTRY.counter(
    "repro_cache_lookups_total",
    "ResultCache lookups by outcome (hit/miss/error).",
    labelnames=("outcome",),
)


def shareable_store_path(store: Optional[JobStore]) -> Optional[str]:
    """A store path other processes can open, or ``None``.

    An in-memory store is private to the connection that created it —
    handing ``":memory:"`` to a pool worker would silently open a
    fresh, empty database and every result persisted there would die
    with the worker.  Callers that fan execution out across processes
    (the service's process backend) use this to decide whether workers
    can share the cache or the owning process must keep cache handling
    to itself.
    """
    if store is None:
        return None
    path = store.path
    if path == ":memory:" or path.startswith("file::memory:"):
        return None
    return path


class ResultCache:
    """Lookup/store of job results keyed by canonical content hash."""

    def __init__(self, store: JobStore):
        self._store = store

    @property
    def store(self) -> JobStore:
        return self._store

    def key(self, job, settings) -> str:
        return job_content_hash(job, settings)

    def lookup(self, job, settings):
        """The cached :class:`BatchJobResult` for ``job``, or ``None``.

        The returned result is rebuilt from the stored payload —
        bit-identical to the original run except for ``cache_hit``,
        which flips to ``True`` so callers and payload consumers can
        audit the dedup.
        """
        from repro.batch.jobs import BatchJobResult

        # Everything a damaged store row can throw — sqlite errors, a
        # truncated JSON payload (json errors are ValueErrors), or a
        # payload whose shape from_payload cannot digest — must degrade
        # to a miss: run_job's "never raises" contract sits on top.
        try:
            with spans.aggregate("cache_lookup"):
                payload = self._store.load_result(self.key(job, settings))
                if payload is None:
                    _LOOKUPS.inc(outcome="miss")
                    return None
                result = BatchJobResult.from_payload(payload, job)
        except (sqlite3.Error, ValueError, TypeError, KeyError,
                AttributeError):
            _LOOKUPS.inc(outcome="error")
            return None
        _LOOKUPS.inc(outcome="hit")
        result.cache_hit = True
        return result

    def store_result(self, job, settings, result) -> Optional[str]:
        """Persist a fresh result; returns its hash, or ``None`` if skipped.

        Skipped: errored results, results that were themselves cache
        hits (already stored — rewriting would bump ``created_at`` and
        could race a concurrent writer), and searches whose scan was cut
        short by the wall-clock budget (machine-speed-dependent, see the
        module docstring).  The optimizer reports the cut exactly
        (``stats.stopped_by_wall_clock``), so a search that brushed its
        budget but *completed* is still cached.
        """
        if not result.ok or result.cache_hit:
            return None
        if result.stats.stopped_by_wall_clock:
            return None
        key = self.key(job, settings)
        try:
            self._store.save_result(key, result.to_payload())
        except sqlite3.Error:
            return None
        return key
