"""Hypothetical reasoning over (abstracted) provenance.

The utility the paper's user study measures — and the application driving
the abstraction framework of [24] — is answering *what-if* questions from
provenance without re-running the query: "if these tuples were deleted,
would this result still hold?".

With exact provenance the answer is determined: a monomial survives iff
none of its tuples is deleted.  With *abstracted* provenance the answer is
three-valued: an abstract label survives for sure only if no leaf below it
is deleted, dies for sure only if all leaves below it are, and is unknown
otherwise.  :class:`HypotheticalReasoner` implements that logic for
K-example rows and aggregate expressions, returning :class:`Verdict`
values rather than guesses (the user-study simulator layers coin flips on
top of this module).
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.abstraction.tree import AbstractionTree
from repro.db.database import AnnotationRegistry
from repro.db.tuples import Tuple
from repro.provenance.kexample import AbstractedKExample, KExample
from repro.semirings.semimodule import AggregateExpression

DeletionPredicate = Callable[[Tuple], bool]


class Verdict(enum.Enum):
    """Three-valued answer to a what-if deletion question."""

    SURVIVES = "survives"
    DELETED = "deleted"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "Verdict is three-valued; compare against Verdict members"
        )


class HypotheticalReasoner:
    """Answers deletion questions over concrete or abstracted provenance."""

    def __init__(
        self,
        registry: AnnotationRegistry,
        tree: "AbstractionTree | None" = None,
    ):
        self._registry = registry
        self._tree = tree

    # -- concrete provenance ---------------------------------------------------

    def row_survives(self, example: KExample, row_index: int,
                     deleted: DeletionPredicate) -> Verdict:
        """Exact answer for a concrete K-example row."""
        row = example.rows[row_index]
        for annotation in row.occurrences:
            if deleted(self._registry.resolve(annotation)):
                return Verdict.DELETED
        return Verdict.SURVIVES

    # -- abstracted provenance ---------------------------------------------------

    def abstracted_row_survives(
        self,
        abstracted: AbstractedKExample,
        row_index: int,
        deleted: DeletionPredicate,
    ) -> Verdict:
        """Three-valued answer for an abstracted row.

        Requires the reasoner to have been built with the abstraction tree
        (to resolve which leaves an abstract label may stand for).
        """
        if self._tree is None:
            raise ValueError("an abstraction tree is required for abstracted rows")
        row = abstracted.rows[row_index]
        unknown = False
        for label in row.occurrences:
            if label in self._tree and not self._tree.is_leaf(label):
                fates = {
                    deleted(self._registry.resolve(leaf))
                    for leaf in self._tree.leaves_under(label)
                }
                if fates == {True}:
                    return Verdict.DELETED
                if True in fates:
                    unknown = True
            elif deleted(self._registry.resolve(label)):
                return Verdict.DELETED
        return Verdict.UNKNOWN if unknown else Verdict.SURVIVES

    # -- aggregates ------------------------------------------------------------

    def aggregate_after_deletion(
        self,
        expression: AggregateExpression,
        deleted: DeletionPredicate,
    ) -> "float | None":
        """Re-evaluate an aggregate after deleting matching tuples.

        Tensor terms whose annotation uses a deleted tuple drop out; the
        rest are folded with the aggregate's monoid.  Returns ``None`` when
        no term survives.  Annotations must be concrete (aggregate
        abstraction keeps values exact but makes survival three-valued;
        use :meth:`abstracted_aggregate_bounds` for that case).
        """
        surviving = []
        for term in expression.terms:
            if not any(
                deleted(self._registry.resolve(ann))
                for ann in term.annotation.variables()
            ):
                surviving.append(term)
        if not surviving:
            return None
        return AggregateExpression(expression.op, surviving).evaluate()

    def abstracted_aggregate_bounds(
        self,
        expression: AggregateExpression,
        deleted: DeletionPredicate,
    ) -> "tuple[float, float] | None":
        """(lower, upper) bounds on the post-deletion aggregate value.

        A term with an abstract annotation may or may not survive; the
        bounds are taken over both possibilities.  ``None`` when even the
        optimistic case keeps no term.
        """
        if self._tree is None:
            raise ValueError("an abstraction tree is required")
        certain, maybe = [], []
        for term in expression.terms:
            verdict = self._term_verdict(term.annotation.variables(), deleted)
            if verdict is Verdict.SURVIVES:
                certain.append(term)
            elif verdict is Verdict.UNKNOWN:
                maybe.append(term)
        if not certain and not maybe:
            return None
        candidates = []
        subsets = [certain] if certain else []
        if maybe:
            subsets.append(certain + maybe)
            if certain:
                subsets.extend(certain + [m] for m in maybe)
        for subset in subsets:
            if subset:
                candidates.append(
                    AggregateExpression(expression.op, subset).evaluate()
                )
        if not candidates:
            return None
        return (min(candidates), max(candidates))

    def _term_verdict(self, labels, deleted: DeletionPredicate) -> Verdict:
        assert self._tree is not None
        unknown = False
        for label in labels:
            if label in self._tree and not self._tree.is_leaf(label):
                fates = {
                    deleted(self._registry.resolve(leaf))
                    for leaf in self._tree.leaves_under(label)
                }
                if fates == {True}:
                    return Verdict.DELETED
                if True in fates:
                    unknown = True
            elif deleted(self._registry.resolve(label)):
                return Verdict.DELETED
        return Verdict.UNKNOWN if unknown else Verdict.SURVIVES
