"""Building K-examples from queries and databases.

This is the "provenance tracking" entry point: run a query with provenance
enabled and package a sample of the results — one derivation per output row
— as the K-example an organization would publish (Definition 2.4).
"""

from __future__ import annotations

from typing import Optional

from repro.db.database import KDatabase
from repro.engine.registry import resolve_engine
from repro.errors import EvaluationError
from repro.provenance.kexample import KExample, KExampleRow
from repro.query.ast import CQ
from repro.semirings.semimodule import AggregateExpression, AggregateOp, AggregateTerm


def build_kexample(
    query: CQ,
    database: KDatabase,
    n_rows: int = 2,
    distinct_outputs: bool = True,
    max_overlap: Optional[float] = None,
    engine=None,
) -> KExample:
    """Evaluate ``query`` and keep the first ``n_rows`` explained results.

    Each K-example row pairs an output tuple with the provenance monomial of
    one derivation, mirroring the paper's K-examples (Figure 2).  With
    ``distinct_outputs`` each output value combination appears at most once.
    ``max_overlap`` (0..1) additionally skips derivations whose annotations
    mostly repeat earlier rows' — useful to avoid degenerate examples (e.g.
    the same movie explaining every row), which would bake spurious
    constants into the reverse-engineered queries.  ``engine`` picks the
    evaluation backend (name or :class:`EvaluationEngine`; default
    naive); every engine yields the same derivations in the same order,
    so the resulting K-example is engine-independent.
    """
    rows: list[KExampleRow] = []
    seen_outputs: set[tuple] = set()
    seen_annotations: set[str] = set()
    for derivation in resolve_engine(engine).derivations(query, database):
        output = derivation.output()
        if distinct_outputs and output in seen_outputs:
            continue
        monomial = derivation.monomial()
        if max_overlap is not None and rows:
            anns = monomial.variables()
            overlap = len(anns & seen_annotations) / len(anns)
            if overlap > max_overlap:
                continue
        seen_outputs.add(output)
        seen_annotations.update(monomial.variables())
        rows.append(KExampleRow(output, monomial))
        if len(rows) == n_rows:
            break
    if len(rows) < n_rows:
        raise EvaluationError(
            f"query produced only {len(rows)} distinct rows; "
            f"{n_rows} requested"
        )
    return KExample(rows, database.registry)


def build_aggregate_example(
    query: CQ,
    database: KDatabase,
    op: AggregateOp,
    value_column: int,
    n_terms: Optional[int] = None,
    engine=None,
) -> AggregateExpression:
    """Aggregate provenance for ``query``: one tensor term per derivation.

    ``value_column`` indexes the head tuple; e.g. for a MAX over ages with
    head ``Q(age)`` pass 0.  The result is the semimodule expression of
    Section 3.4, ready to be abstracted alongside a matching K-example.
    """
    terms: list[AggregateTerm] = []
    for derivation in resolve_engine(engine).derivations(query, database):
        output = derivation.output()
        value = output[value_column]
        if not isinstance(value, (int, float)):
            raise EvaluationError(
                f"aggregate value column {value_column} holds non-numeric "
                f"value {value!r}"
            )
        terms.append(AggregateTerm(derivation.monomial(), float(value)))
        if n_terms is not None and len(terms) == n_terms:
            break
    if not terms:
        raise EvaluationError("query produced no derivations to aggregate")
    return AggregateExpression(op, terms)
