"""K-examples: query outputs paired with their provenance (Definition 2.4)."""

from repro.provenance.kexample import AbstractedKExample, KExample, KExampleRow
from repro.provenance.builder import build_kexample, build_aggregate_example

__all__ = [
    "AbstractedKExample",
    "KExample",
    "KExampleRow",
    "build_aggregate_example",
    "build_kexample",
]
