"""K-examples and abstracted K-examples.

A :class:`KExample` models Definition 2.4: a set of output rows, each paired
with its provenance monomial, together with the input tuples the annotations
refer to (the restriction of the input K-database to the participating
tuples).  An :class:`AbstractedKExample` is the result of applying an
abstraction function: structurally identical, but annotation *occurrences*
may have been replaced by abstraction-tree labels, so it also remembers
which occurrences are abstracted.

Rows use plain monomials rather than full polynomials because the paper's
K-examples show one explanation (derivation) per output row; multi-monomial
outputs can be modelled as multiple rows with the same output values.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
import networkx as nx

from repro.db.database import AnnotationRegistry
from repro.db.tuples import Tuple
from repro.errors import SchemaError
from repro.semirings.polynomial import Monomial


class KExampleRow:
    """One output row with its provenance: ``(output values, monomial)``.

    ``occurrences`` is the monomial expanded to a tuple of annotation
    occurrences in a canonical (sorted) order; abstraction functions operate
    per occurrence (Definition 3.1 allows mapping different occurrences of
    the same variable differently).
    """

    __slots__ = ("_output", "_occurrences")

    def __init__(self, output: tuple, provenance: "Monomial | Iterable[str]"):
        self._output = tuple(output)
        if isinstance(provenance, Monomial):
            self._occurrences = provenance.expand()
        else:
            self._occurrences = tuple(sorted(str(v) for v in provenance))
        if not self._occurrences:
            raise SchemaError("a K-example row must have non-empty provenance")

    @property
    def output(self) -> tuple:
        return self._output

    @property
    def occurrences(self) -> tuple[str, ...]:
        """Annotation occurrences, with multiplicity, in canonical order."""
        return self._occurrences

    def monomial(self) -> Monomial:
        return Monomial(self._occurrences)

    def variables(self) -> frozenset[str]:
        return frozenset(self._occurrences)

    def replace(self, occurrence_values: Iterable[str]) -> "KExampleRow":
        """A new row with the occurrences replaced positionally."""
        values = tuple(occurrence_values)
        if len(values) != len(self._occurrences):
            raise SchemaError(
                f"expected {len(self._occurrences)} occurrence values, "
                f"got {len(values)}"
            )
        return KExampleRow(self._output, Monomial(values))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KExampleRow)
            and self._output == other._output
            and self._occurrences == other._occurrences
        )

    def __hash__(self) -> int:
        return hash((self._output, self._occurrences))

    def __repr__(self) -> str:
        return f"{self._output!r} <- {self.monomial()!r}"


class KExample:
    """A K-example: rows of (output, provenance) over an annotated input.

    ``registry`` resolves each annotation occurring in any row to the input
    tuple it tags; it may contain more annotations than the example uses
    (typically the whole database registry).
    """

    __slots__ = ("_rows", "_registry")

    def __init__(self, rows: Iterable[KExampleRow], registry: AnnotationRegistry):
        self._rows = tuple(rows)
        self._registry = registry
        if not self._rows:
            raise SchemaError("a K-example needs at least one row")
        for row in self._rows:
            for ann in row.variables():
                if ann not in registry:
                    raise SchemaError(
                        f"K-example annotation {ann!r} is not in the registry"
                    )

    @property
    def rows(self) -> tuple[KExampleRow, ...]:
        return self._rows

    @property
    def registry(self) -> AnnotationRegistry:
        return self._registry

    def variables(self) -> frozenset[str]:
        """``Var(Ex)``: all annotations appearing in the provenance."""
        out: set[str] = set()
        for row in self._rows:
            out.update(row.variables())
        return frozenset(out)

    def tuple_of(self, annotation: str) -> Tuple:
        return self._registry.resolve(annotation)

    def prefix(self, n_rows: int) -> "KExample":
        """The K-example restricted to its first ``n_rows`` rows."""
        return KExample(self._rows[:n_rows], self._registry)

    def verify_against(self, query, database, engine=None) -> bool:
        """Whether every row is a genuine (output, derivation) of ``query``.

        Re-evaluates ``query`` over ``database`` on the given engine
        (name or :class:`~repro.engine.base.EvaluationEngine`; default
        naive) and checks each row's monomial appears in its output's
        provenance polynomial — i.e. the K-example really shows one
        derivation per row (Definition 2.4), under whichever execution
        backend re-checks it.
        """
        from repro.engine.registry import resolve_engine
        from repro.semirings.polynomial import Polynomial

        results = resolve_engine(engine).evaluate(query, database)
        for row in self._rows:
            polynomial = results.get(row.output)
            if polynomial is None:
                return False
            if not Polynomial.from_monomials([row.monomial()]) <= polynomial:
                return False
        return True

    def is_connected(self) -> bool:
        """Connectivity in the paper's sense (Section 4.1, item 2).

        Every row's monomial must induce a connected graph over its tuples,
        where two tuples are adjacent iff they share a constant.
        """
        return all(self.row_is_connected(i) for i in range(len(self._rows)))

    def row_is_connected(self, row_index: int) -> bool:
        row = self._rows[row_index]
        tuples = [self.tuple_of(ann) for ann in row.occurrences]
        if len(tuples) <= 1:
            return True
        graph = nx.Graph()
        graph.add_nodes_from(range(len(tuples)))
        for i, a in enumerate(tuples):
            for j in range(i + 1, len(tuples)):
                if a.value_set() & tuples[j].value_set():
                    graph.add_edge(i, j)
        return nx.is_connected(graph)

    def key(self) -> tuple:
        """A hashable identity for caching: rows only (registry-independent)."""
        return tuple((row.output, row.occurrences) for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KExample) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        lines = [f"  {row!r}" for row in self._rows]
        return "KExample(\n" + "\n".join(lines) + "\n)"


class AbstractedKExample:
    """An abstracted K-example: rows whose occurrences may be tree labels.

    Produced by :class:`repro.abstraction.function.AbstractionFunction`;
    remembers the source K-example so concretization machinery can check
    which occurrences were abstracted away.
    """

    __slots__ = ("_rows", "_source", "_mapping")

    def __init__(
        self,
        rows: Iterable[KExampleRow],
        source: KExample,
        mapping: Mapping[tuple[int, int], str],
    ):
        self._rows = tuple(rows)
        self._source = source
        # (row index, occurrence index) -> abstract label, only where changed
        self._mapping = dict(mapping)

    @property
    def rows(self) -> tuple[KExampleRow, ...]:
        return self._rows

    @property
    def source(self) -> KExample:
        return self._source

    @property
    def mapping(self) -> dict[tuple[int, int], str]:
        """Occurrence positions that were abstracted, with their labels."""
        return dict(self._mapping)

    def labels(self) -> frozenset[str]:
        """All labels (concrete or abstract) occurring in the rows."""
        out: set[str] = set()
        for row in self._rows:
            out.update(row.occurrences)
        return frozenset(out)

    def abstracted_positions(self) -> tuple[tuple[int, int], ...]:
        return tuple(sorted(self._mapping))

    def num_abstracted(self) -> int:
        return len(self._mapping)

    def key(self) -> tuple:
        return tuple((row.output, row.occurrences) for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AbstractedKExample) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        lines = [f"  {row!r}" for row in self._rows]
        return "AbstractedKExample(\n" + "\n".join(lines) + "\n)"
