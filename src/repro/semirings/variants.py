"""Coarser provenance semirings derived from ``N[X]``.

Each class in this module is an immutable provenance value in one of the
semirings of the Green hierarchy (see Table 4 of the paper).  All of them
can be built from an ``N[X]`` :class:`~repro.semirings.polynomial.Polynomial`
via their ``from_polynomial`` constructor, which is the semiring
homomorphism that "forgets" the corresponding structure.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.semirings.polynomial import Monomial, Polynomial


class BPolynomial:
    """``B[X]``: polynomials with Boolean coefficients (coefficients dropped).

    Represented as a frozenset of monomials; exponents are preserved.
    """

    __slots__ = ("_monomials",)

    def __init__(self, monomials: Iterable[Monomial] = ()):
        self._monomials = frozenset(monomials)

    @classmethod
    def zero(cls) -> "BPolynomial":
        return cls()

    @classmethod
    def one(cls) -> "BPolynomial":
        return cls((Monomial.one(),))

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "BPolynomial":
        return cls(poly.monomials())

    @property
    def monomials(self) -> frozenset[Monomial]:
        return self._monomials

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for mono in self._monomials:
            out.update(mono.variables())
        return frozenset(out)

    def __add__(self, other: "BPolynomial") -> "BPolynomial":
        return BPolynomial(self._monomials | other._monomials)

    def __mul__(self, other: "BPolynomial") -> "BPolynomial":
        return BPolynomial(
            a * b for a in self._monomials for b in other._monomials
        )

    def __le__(self, other: "BPolynomial") -> bool:
        """Natural order: set inclusion of monomials."""
        return self._monomials <= other._monomials

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BPolynomial) and self._monomials == other._monomials

    def __hash__(self) -> int:
        return hash(("B[X]", self._monomials))

    def __repr__(self) -> str:
        if not self._monomials:
            return "0"
        return " + ".join(sorted(repr(m) for m in self._monomials))


class Trio:
    """``Trio(X)``: exponents dropped, coefficients kept (bags of witness sets)."""

    __slots__ = ("_terms",)

    def __init__(self, terms: dict[frozenset[str], int] | None = None):
        cleaned = {}
        if terms:
            for witness, coeff in terms.items():
                if coeff < 0:
                    raise ValueError("Trio(X) has no negative coefficients")
                if coeff:
                    cleaned[frozenset(witness)] = cleaned.get(frozenset(witness), 0) + coeff
        self._terms: tuple[tuple[frozenset[str], int], ...] = tuple(
            sorted(cleaned.items(), key=lambda kv: sorted(kv[0]))
        )

    @classmethod
    def zero(cls) -> "Trio":
        return cls()

    @classmethod
    def one(cls) -> "Trio":
        return cls({frozenset(): 1})

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "Trio":
        terms: dict[frozenset[str], int] = {}
        for mono, coeff in poly.terms:
            witness = mono.variables()
            terms[witness] = terms.get(witness, 0) + coeff
        return cls(terms)

    @property
    def terms(self) -> tuple[tuple[frozenset[str], int], ...]:
        return self._terms

    def witnesses(self) -> frozenset[frozenset[str]]:
        return frozenset(w for w, _ in self._terms)

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for witness, _ in self._terms:
            out.update(witness)
        return frozenset(out)

    def __add__(self, other: "Trio") -> "Trio":
        terms = {w: c for w, c in self._terms}
        for witness, coeff in other._terms:
            terms[witness] = terms.get(witness, 0) + coeff
        return Trio(terms)

    def __mul__(self, other: "Trio") -> "Trio":
        terms: dict[frozenset[str], int] = {}
        for wit_a, coeff_a in self._terms:
            for wit_b, coeff_b in other._terms:
                joined = wit_a | wit_b
                terms[joined] = terms.get(joined, 0) + coeff_a * coeff_b
        return Trio(terms)

    def __le__(self, other: "Trio") -> bool:
        other_map = dict(other._terms)
        return all(other_map.get(w, 0) >= c for w, c in self._terms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trio) and self._terms == other._terms

    def __hash__(self) -> int:
        return hash(("Trio(X)", self._terms))

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for witness, coeff in self._terms:
            body = "*".join(sorted(witness)) or "1"
            parts.append(body if coeff == 1 else f"{coeff}*{body}")
        return " + ".join(parts)


class Why:
    """``Why(X)``: witness sets without coefficients or exponents."""

    __slots__ = ("_witnesses",)

    def __init__(self, witnesses: Iterable[frozenset[str]] = ()):
        self._witnesses = frozenset(frozenset(w) for w in witnesses)

    @classmethod
    def zero(cls) -> "Why":
        return cls()

    @classmethod
    def one(cls) -> "Why":
        return cls((frozenset(),))

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "Why":
        return cls(mono.variables() for mono in poly.monomials())

    @property
    def witnesses(self) -> frozenset[frozenset[str]]:
        return self._witnesses

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for witness in self._witnesses:
            out.update(witness)
        return frozenset(out)

    def __add__(self, other: "Why") -> "Why":
        return Why(self._witnesses | other._witnesses)

    def __mul__(self, other: "Why") -> "Why":
        return Why(a | b for a in self._witnesses for b in other._witnesses)

    def __le__(self, other: "Why") -> bool:
        return self._witnesses <= other._witnesses

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Why) and self._witnesses == other._witnesses

    def __hash__(self) -> int:
        return hash(("Why(X)", self._witnesses))

    def __repr__(self) -> str:
        if not self._witnesses:
            return "0"
        return " + ".join(
            sorted("*".join(sorted(w)) or "1" for w in self._witnesses)
        )


class PosBool:
    """``PosBool(X)``: like Why(X) but subsumed witnesses are absorbed.

    Only inclusion-minimal witness sets are kept (the irredundant DNF of the
    positive Boolean provenance expression).
    """

    __slots__ = ("_witnesses",)

    def __init__(self, witnesses: Iterable[frozenset[str]] = ()):
        self._witnesses = _absorb(frozenset(frozenset(w) for w in witnesses))

    @classmethod
    def zero(cls) -> "PosBool":
        return cls()

    @classmethod
    def one(cls) -> "PosBool":
        return cls((frozenset(),))

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "PosBool":
        return cls(mono.variables() for mono in poly.monomials())

    @property
    def witnesses(self) -> frozenset[frozenset[str]]:
        return self._witnesses

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for witness in self._witnesses:
            out.update(witness)
        return frozenset(out)

    def __add__(self, other: "PosBool") -> "PosBool":
        return PosBool(self._witnesses | other._witnesses)

    def __mul__(self, other: "PosBool") -> "PosBool":
        return PosBool(a | b for a in self._witnesses for b in other._witnesses)

    def __le__(self, other: "PosBool") -> bool:
        """Natural order: every witness here is implied by a smaller one there."""
        return all(
            any(theirs <= mine for theirs in other._witnesses)
            for mine in self._witnesses
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PosBool) and self._witnesses == other._witnesses

    def __hash__(self) -> int:
        return hash(("PosBool(X)", self._witnesses))

    def __repr__(self) -> str:
        if not self._witnesses:
            return "0"
        return " + ".join(
            sorted("*".join(sorted(w)) or "1" for w in self._witnesses)
        )


class Lineage:
    """``Lin(X)``: the flat set of all annotations that contributed.

    The coarsest model; the paper notes (Section 4) that privacy analysis
    under ``Lin(X)`` degenerates because the natural order is plain set
    containment, so any subset of the lineage is valid provenance.
    """

    __slots__ = ("_variables", "_nonzero")

    def __init__(self, variables: Iterable[str] = (), nonzero: bool = True):
        self._variables = frozenset(variables)
        self._nonzero = bool(nonzero) or bool(self._variables)

    @classmethod
    def zero(cls) -> "Lineage":
        return cls((), nonzero=False)

    @classmethod
    def one(cls) -> "Lineage":
        return cls((), nonzero=True)

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "Lineage":
        return cls(poly.variables(), nonzero=bool(poly))

    @property
    def variables_set(self) -> frozenset[str]:
        return self._variables

    def variables(self) -> frozenset[str]:
        return self._variables

    def __add__(self, other: "Lineage") -> "Lineage":
        return Lineage(
            self._variables | other._variables,
            nonzero=self._nonzero or other._nonzero,
        )

    def __mul__(self, other: "Lineage") -> "Lineage":
        if not (self._nonzero and other._nonzero):
            return Lineage.zero()
        return Lineage(self._variables | other._variables)

    def __le__(self, other: "Lineage") -> bool:
        if not self._nonzero:
            return True
        return other._nonzero and self._variables <= other._variables

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Lineage)
            and self._variables == other._variables
            and self._nonzero == other._nonzero
        )

    def __hash__(self) -> int:
        return hash(("Lin(X)", self._variables, self._nonzero))

    def __repr__(self) -> str:
        if not self._nonzero:
            return "0"
        return "{" + ", ".join(sorted(self._variables)) + "}"


def _absorb(witnesses: frozenset[frozenset[str]]) -> frozenset[frozenset[str]]:
    """Keep only inclusion-minimal witness sets."""
    minimal = set()
    for witness in sorted(witnesses, key=len):
        if not any(kept <= witness for kept in minimal):
            minimal.add(witness)
    return frozenset(minimal)
