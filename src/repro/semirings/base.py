"""The semiring registry: names, dispatch, and coarsening homomorphisms.

Evaluation always happens in ``N[X]`` (the most informative model); the
coarser views required by Table 4 of the paper are obtained afterwards via
:func:`coarsen`, which applies the unique semiring homomorphism that
preserves annotations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SemiringError
from repro.semirings.polynomial import Monomial, Polynomial
from repro.semirings.variants import BPolynomial, Lineage, PosBool, Trio, Why


class SemiringName(str, enum.Enum):
    """Names of the supported provenance semirings."""

    NX = "N[X]"
    BX = "B[X]"
    TRIO = "Trio(X)"
    WHY = "Why(X)"
    POSBOOL = "PosBool(X)"
    LIN = "Lin(X)"

    @classmethod
    def parse(cls, name: "str | SemiringName") -> "SemiringName":
        if isinstance(name, SemiringName):
            return name
        for member in cls:
            if member.value == name or member.name == name.upper():
                return member
        raise SemiringError(f"unknown semiring: {name!r}")


@dataclass(frozen=True)
class Semiring:
    """A provenance semiring: identities, operations, and the natural order.

    Instances are obtained from :func:`get_semiring`; they bundle the value
    type with its operations so generic code (the evaluator, the subsumption
    check of Definition 3.8) can be written once.
    """

    name: SemiringName
    zero: Any
    one: Any
    value_type: type
    from_polynomial: Callable[[Polynomial], Any]

    def add(self, a: Any, b: Any) -> Any:
        return a + b

    def mul(self, a: Any, b: Any) -> Any:
        return a * b

    def leq(self, a: Any, b: Any) -> bool:
        """The natural order ``a <= b`` iff ``exists c. a + c = b``."""
        return a <= b

    def drops_exponents(self) -> bool:
        """True if the semiring forgets how many times a tuple was used.

        Relevant for the Table 4 adjustments: consistent-query search must
        consider re-using tuples when exponents are not visible.
        """
        return self.name in (
            SemiringName.TRIO,
            SemiringName.WHY,
            SemiringName.POSBOOL,
            SemiringName.LIN,
        )

    def drops_coefficients(self) -> bool:
        """True if the semiring forgets the number of derivations."""
        return self.name is not SemiringName.NX


_REGISTRY: dict[SemiringName, Semiring] = {
    SemiringName.NX: Semiring(
        name=SemiringName.NX,
        zero=Polynomial.zero(),
        one=Polynomial.one(),
        value_type=Polynomial,
        from_polynomial=lambda p: p,
    ),
    SemiringName.BX: Semiring(
        name=SemiringName.BX,
        zero=BPolynomial.zero(),
        one=BPolynomial.one(),
        value_type=BPolynomial,
        from_polynomial=BPolynomial.from_polynomial,
    ),
    SemiringName.TRIO: Semiring(
        name=SemiringName.TRIO,
        zero=Trio.zero(),
        one=Trio.one(),
        value_type=Trio,
        from_polynomial=Trio.from_polynomial,
    ),
    SemiringName.WHY: Semiring(
        name=SemiringName.WHY,
        zero=Why.zero(),
        one=Why.one(),
        value_type=Why,
        from_polynomial=Why.from_polynomial,
    ),
    SemiringName.POSBOOL: Semiring(
        name=SemiringName.POSBOOL,
        zero=PosBool.zero(),
        one=PosBool.one(),
        value_type=PosBool,
        from_polynomial=PosBool.from_polynomial,
    ),
    SemiringName.LIN: Semiring(
        name=SemiringName.LIN,
        zero=Lineage.zero(),
        one=Lineage.one(),
        value_type=Lineage,
        from_polynomial=Lineage.from_polynomial,
    ),
}


def get_semiring(name: "str | SemiringName") -> Semiring:
    """Look up a semiring by name (``"N[X]"``, ``"Why(X)"``, ...)."""
    return _REGISTRY[SemiringName.parse(name)]


def coarsen(value: "Polynomial | Monomial", target: "str | SemiringName") -> Any:
    """Apply the coarsening homomorphism from ``N[X]`` into ``target``."""
    if isinstance(value, Monomial):
        value = Polynomial({value: 1})
    if not isinstance(value, Polynomial):
        raise SemiringError(
            f"can only coarsen N[X] values, got {type(value).__name__}"
        )
    return get_semiring(target).from_polynomial(value)
