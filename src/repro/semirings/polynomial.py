"""Provenance polynomials: the ``N[X]`` semiring.

A :class:`Monomial` is a finite multiset of annotations (variables raised to
positive integer exponents); a :class:`Polynomial` is a finite formal sum of
monomials with positive natural-number coefficients.  Together they form the
free commutative semiring over the annotation set ``X`` — the most
informative provenance model (Green, Karvounarakis, Tannen 2007).

Both classes are immutable and hashable so they can serve as dictionary keys
throughout the caching layers of the privacy computation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Union

AnnotationLike = Union[str, "Monomial", "Polynomial"]


class Monomial:
    """A product of annotations, e.g. ``p1 * h1 * i1`` or ``a^2 * b``.

    Internally a sorted tuple of ``(variable, exponent)`` pairs with
    ``exponent >= 1``.  The empty monomial is the multiplicative identity.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, variables: Union[Mapping[str, int], Iterable[str], None] = None):
        counts: dict[str, int] = {}
        if variables is None:
            pass
        elif isinstance(variables, Mapping):
            for var, exp in variables.items():
                if exp < 0:
                    raise ValueError(f"negative exponent for {var!r}: {exp}")
                if exp:
                    counts[str(var)] = counts.get(str(var), 0) + int(exp)
        else:
            for var in variables:
                counts[str(var)] = counts.get(str(var), 0) + 1
        self._items: tuple[tuple[str, int], ...] = tuple(sorted(counts.items()))
        self._hash = hash(self._items)

    @classmethod
    def one(cls) -> "Monomial":
        """The multiplicative identity (empty product)."""
        return _ONE

    @classmethod
    def of(cls, *variables: str) -> "Monomial":
        """Build a monomial from variable names, e.g. ``Monomial.of("a", "b")``."""
        return cls(variables)

    @property
    def items(self) -> tuple[tuple[str, int], ...]:
        """Sorted ``(variable, exponent)`` pairs."""
        return self._items

    def variables(self) -> frozenset[str]:
        """The set of distinct annotations appearing in the monomial."""
        return frozenset(var for var, _ in self._items)

    def degree(self) -> int:
        """Total degree: the number of annotation occurrences, with multiplicity."""
        return sum(exp for _, exp in self._items)

    def exponent(self, variable: str) -> int:
        """Exponent of ``variable`` (0 if absent)."""
        for var, exp in self._items:
            if var == variable:
                return exp
        return 0

    def expand(self) -> tuple[str, ...]:
        """The monomial as a sorted tuple of occurrences, e.g. ``a^2 b -> (a, a, b)``."""
        out: list[str] = []
        for var, exp in self._items:
            out.extend([var] * exp)
        return tuple(out)

    def support(self) -> "Monomial":
        """Drop exponents: ``a^2 b -> a b`` (the Why(X)/Trio(X) view)."""
        return Monomial({var: 1 for var, _ in self._items})

    def rename(self, mapping: Mapping[str, str]) -> "Monomial":
        """Replace variables via ``mapping``; unmapped variables are kept.

        Distinct variables mapped to the same target are merged (their
        exponents add) — this is exactly what applying an abstraction
        function to a monomial does.
        """
        counts: dict[str, int] = {}
        for var, exp in self._items:
            target = mapping.get(var, var)
            counts[target] = counts.get(target, 0) + exp
        return Monomial(counts)

    def divides(self, other: "Monomial") -> bool:
        """True iff this monomial's multiset is contained in ``other``'s."""
        return all(other.exponent(var) >= exp for var, exp in self._items)

    def __mul__(self, other: AnnotationLike) -> AnnotationLike:
        if isinstance(other, Monomial):
            counts = dict(self._items)
            for var, exp in other._items:
                counts[var] = counts.get(var, 0) + exp
            return Monomial(counts)
        if isinstance(other, str):
            return self * Monomial.of(other)
        if isinstance(other, Polynomial):
            return Polynomial({self: 1}) * other
        return NotImplemented

    __rmul__ = __mul__

    def __add__(self, other: AnnotationLike) -> "Polynomial":
        return Polynomial({self: 1}) + other

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Monomial") -> bool:
        return self._items < other._items

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        if not self._items:
            return "1"
        parts = [var if exp == 1 else f"{var}^{exp}" for var, exp in self._items]
        return "*".join(parts)


_ONE = Monomial()


class Polynomial:
    """A formal sum of monomials with positive integer coefficients.

    Supports semiring arithmetic (``+``, ``*``) and the natural order
    ``<=`` of ``N[X]``: ``p <= q`` iff ``q - p`` has non-negative
    coefficients (Definition 3.8 of the paper).
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Union[Mapping[Monomial, int], None] = None):
        cleaned: dict[Monomial, int] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff < 0:
                    raise ValueError(f"negative coefficient for {mono!r}: {coeff}")
                if coeff:
                    cleaned[mono] = cleaned.get(mono, 0) + int(coeff)
        self._terms: tuple[tuple[Monomial, int], ...] = tuple(
            sorted(cleaned.items(), key=lambda kv: kv[0].items)
        )
        self._hash = hash(self._terms)

    @classmethod
    def zero(cls) -> "Polynomial":
        """The additive identity (empty sum)."""
        return _ZERO

    @classmethod
    def one(cls) -> "Polynomial":
        """The multiplicative identity."""
        return _POLY_ONE

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        """The polynomial consisting of a single annotation."""
        return cls({Monomial.of(name): 1})

    @classmethod
    def from_monomials(cls, monomials: Iterable[Monomial]) -> "Polynomial":
        """Sum of the given monomials (duplicates accumulate coefficients)."""
        terms: dict[Monomial, int] = {}
        for mono in monomials:
            terms[mono] = terms.get(mono, 0) + 1
        return cls(terms)

    @property
    def terms(self) -> tuple[tuple[Monomial, int], ...]:
        """Sorted ``(monomial, coefficient)`` pairs."""
        return self._terms

    def monomials(self) -> tuple[Monomial, ...]:
        """The distinct monomials of the polynomial."""
        return tuple(mono for mono, _ in self._terms)

    def coefficient(self, monomial: Monomial) -> int:
        """Coefficient of ``monomial`` (0 if absent)."""
        for mono, coeff in self._terms:
            if mono == monomial:
                return coeff
        return 0

    def variables(self) -> frozenset[str]:
        """All distinct annotations appearing anywhere in the polynomial."""
        out: set[str] = set()
        for mono, _ in self._terms:
            out.update(mono.variables())
        return frozenset(out)

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Apply a variable substitution to every monomial."""
        terms: dict[Monomial, int] = {}
        for mono, coeff in self._terms:
            renamed = mono.rename(mapping)
            terms[renamed] = terms.get(renamed, 0) + coeff
        return Polynomial(terms)

    def is_zero(self) -> bool:
        return not self._terms

    def __add__(self, other: AnnotationLike) -> "Polynomial":
        other = _as_polynomial(other)
        if other is NotImplemented:
            return NotImplemented
        terms = {mono: coeff for mono, coeff in self._terms}
        for mono, coeff in other._terms:
            terms[mono] = terms.get(mono, 0) + coeff
        return Polynomial(terms)

    __radd__ = __add__

    def __mul__(self, other: AnnotationLike) -> "Polynomial":
        other = _as_polynomial(other)
        if other is NotImplemented:
            return NotImplemented
        terms: dict[Monomial, int] = {}
        for mono_a, coeff_a in self._terms:
            for mono_b, coeff_b in other._terms:
                prod = mono_a * mono_b
                terms[prod] = terms.get(prod, 0) + coeff_a * coeff_b
        return Polynomial(terms)

    __rmul__ = __mul__

    def __le__(self, other: "Polynomial") -> bool:
        """Natural order of ``N[X]``: coefficient-wise comparison."""
        if not isinstance(other, Polynomial):
            return NotImplemented
        return all(other.coefficient(mono) >= coeff for mono, coeff in self._terms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in self._terms:
            if not mono.items:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(repr(mono))
            else:
                parts.append(f"{coeff}*{mono!r}")
        return " + ".join(parts)


_ZERO = Polynomial()
_POLY_ONE = Polynomial({Monomial(): 1})


def _as_polynomial(value: AnnotationLike) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, Monomial):
        return Polynomial({value: 1})
    if isinstance(value, str):
        return Polynomial.variable(value)
    if isinstance(value, int):
        if value < 0:
            raise ValueError("N[X] has no negative elements")
        return Polynomial({Monomial(): value}) if value else Polynomial()
    return NotImplemented
