"""Aggregate provenance: semimodule expressions (Amsterdamer et al., PODS'11).

An aggregate query result is represented as a formal sum of tensors
``monomial (x) value`` combined with the aggregate's monoid operation, e.g.::

    (p1*h1*i1) (x) 27  +_MAX  (p2*h2*i2) (x) 31

Abstraction functions act on the *annotation* part of each tensor only
(Section 3.4 of the paper), which :meth:`AggregateExpression.rename`
implements.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.semirings.polynomial import Monomial


class AggregateOp(str, enum.Enum):
    """The aggregation monoid used to combine tensor terms."""

    MAX = "MAX"
    MIN = "MIN"
    SUM = "SUM"
    COUNT = "COUNT"

    def combine(self, values: Iterable[float]) -> float:
        """Fold concrete values with the monoid operation."""
        values = list(values)
        if self is AggregateOp.MAX:
            return max(values)
        if self is AggregateOp.MIN:
            return min(values)
        if self is AggregateOp.SUM:
            return sum(values)
        return float(len(values))


@dataclass(frozen=True)
class AggregateTerm:
    """A single tensor ``annotation (x) value``."""

    annotation: Monomial
    value: float

    def rename(self, mapping: Mapping[str, str]) -> "AggregateTerm":
        """Abstract the annotation part; the value part is untouched."""
        return AggregateTerm(self.annotation.rename(mapping), self.value)

    def __repr__(self) -> str:
        return f"({self.annotation!r}) (x) {self.value:g}"


class AggregateExpression:
    """A sum of tensors under an aggregation monoid.

    Immutable; terms are kept in a canonical sorted order so expressions
    compare and hash structurally.
    """

    __slots__ = ("_op", "_terms")

    def __init__(self, op: AggregateOp, terms: Iterable[AggregateTerm] = ()):
        self._op = AggregateOp(op)
        self._terms = tuple(
            sorted(terms, key=lambda t: (t.annotation.items, t.value))
        )

    @property
    def op(self) -> AggregateOp:
        return self._op

    @property
    def terms(self) -> tuple[AggregateTerm, ...]:
        return self._terms

    def variables(self) -> frozenset[str]:
        """All annotations appearing in any tensor term."""
        out: set[str] = set()
        for term in self._terms:
            out.update(term.annotation.variables())
        return frozenset(out)

    def rename(self, mapping: Mapping[str, str]) -> "AggregateExpression":
        """Apply an abstraction to the annotation side of every tensor."""
        return AggregateExpression(
            self._op, (term.rename(mapping) for term in self._terms)
        )

    def evaluate(self) -> float:
        """Collapse the expression to the concrete aggregate value."""
        if not self._terms:
            raise ValueError("cannot evaluate an empty aggregate expression")
        return self._op.combine(term.value for term in self._terms)

    def __add__(self, other: "AggregateExpression") -> "AggregateExpression":
        if self._op != other._op:
            raise ValueError(
                f"cannot combine {self._op.value} with {other._op.value}"
            )
        return AggregateExpression(self._op, self._terms + other._terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateExpression)
            and self._op == other._op
            and self._terms == other._terms
        )

    def __hash__(self) -> int:
        return hash((self._op, self._terms))

    def __repr__(self) -> str:
        if not self._terms:
            return f"0_{self._op.value}"
        joiner = f" +{self._op.value} "
        return joiner.join(repr(term) for term in self._terms)
