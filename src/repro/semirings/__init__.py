"""Provenance semirings (Green et al., PODS 2007) and coarser variants.

The fine-grained model is ``N[X]`` — polynomials with natural-number
coefficients over a set of tuple annotations.  Coarser semirings are obtained
by forgetting structure:

============  ==================================================
``N[X]``      full polynomials (coefficients and exponents)
``B[X]``      drop coefficients
``Trio(X)``   drop exponents
``Why(X)``    drop coefficients and exponents (sets of witness sets)
``PosBool``   additionally absorb subsumed witnesses (antichain)
``Lin(X)``    flatten to one set of contributing annotations
============  ==================================================

The hierarchy matters for the privacy analysis (Table 4 of the paper):
the coarser the provenance shown in a K-example, the more queries are
consistent with it.
"""

from repro.semirings.base import (
    Semiring,
    SemiringName,
    coarsen,
    get_semiring,
)
from repro.semirings.polynomial import Monomial, Polynomial
from repro.semirings.semimodule import AggregateExpression, AggregateOp, AggregateTerm
from repro.semirings.variants import (
    BPolynomial,
    Lineage,
    PosBool,
    Trio,
    Why,
)

__all__ = [
    "AggregateExpression",
    "AggregateOp",
    "AggregateTerm",
    "BPolynomial",
    "Lineage",
    "Monomial",
    "Polynomial",
    "PosBool",
    "Semiring",
    "SemiringName",
    "Trio",
    "Why",
    "coarsen",
    "get_semiring",
]
