"""The ``repro-trace-v1`` JSONL trace-file format.

One JSON object per line, one line per traced job::

    {"schema": "repro-trace-v1", "label": "running_example@0.5",
     "query": "running_example", "threshold": 0.5, "tag": null,
     "seconds": 0.0123, "spans": [ ... span records ... ]}

Span records are exactly :meth:`repro.obs.spans.Tracer.to_payload`
output: ``{"name", "start", "seconds", "parent", "count", "attrs"?}``
with ``start`` relative to the job's trace origin and ``parent`` an
index into the same list (``-1`` for roots).  Files are append-only, so
a long-lived service streams one line per completed job and the file
tails cleanly.

:func:`read_trace` validates the schema; :func:`summarize` folds any
number of records into per-phase aggregates for ``repro trace summary``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence

from repro.errors import ReproError

TRACE_SCHEMA = "repro-trace-v1"

_SPAN_REQUIRED = ("name", "start", "seconds", "parent", "count")


class TraceError(ReproError):
    """A trace file that is not valid ``repro-trace-v1``."""


def trace_record(
    spans: List[Dict[str, Any]],
    *,
    label: str,
    query: Optional[str] = None,
    threshold: Optional[float] = None,
    tag: Optional[str] = None,
    seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble one trace-file line for a completed job."""
    return {
        "schema": TRACE_SCHEMA,
        "label": label,
        "query": query,
        "threshold": threshold,
        "tag": tag,
        "seconds": seconds,
        "spans": spans,
    }


class TraceWriter:
    """Append-only JSONL writer; thread-safe (the service's worker
    threads all stream completed-job records through one writer)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        try:
            self._handle: Optional[IO[str]] = self.path.open(
                "a", encoding="utf-8"
            )
        except OSError as exc:
            raise TraceError(
                f"cannot open trace file {self.path}: {exc}"
            ) from exc

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None:
                raise TraceError(f"trace writer for {self.path} is closed")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _validate_record(record: Any, where: str) -> Dict[str, Any]:
    if not isinstance(record, dict):
        raise TraceError(f"{where}: expected a JSON object")
    schema = record.get("schema")
    if schema != TRACE_SCHEMA:
        raise TraceError(
            f"{where}: schema {schema!r} is not {TRACE_SCHEMA!r}"
        )
    spans = record.get("spans")
    if not isinstance(spans, list):
        raise TraceError(f"{where}: 'spans' must be a list")
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            raise TraceError(f"{where}: span {i} is not an object")
        missing = [key for key in _SPAN_REQUIRED if key not in span]
        if missing:
            raise TraceError(f"{where}: span {i} missing {missing}")
        parent = span["parent"]
        if not isinstance(parent, int) or not -1 <= parent < i:
            raise TraceError(
                f"{where}: span {i} parent {parent!r} must point at an "
                f"earlier span (or -1)"
            )
    return record


def read_trace(path: str | Path) -> List[Dict[str, Any]]:
    """Read and validate a ``repro-trace-v1`` JSONL file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{where}: invalid JSON ({exc.msg})") from exc
        records.append(_validate_record(record, where))
    if not records:
        raise TraceError(f"{path}: no trace records")
    return records


@dataclass
class PhaseSummary:
    """Aggregate view of one span name across trace records."""

    name: str
    jobs: int = 0            # records the phase appears in
    calls: int = 0           # total span entries (aggregated counts included)
    seconds: float = 0.0     # total time inside the phase

    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclass
class TraceSummary:
    """Per-phase totals over a whole trace file."""

    records: int = 0
    root_seconds: float = 0.0    # sum of top-level span time (share basis)
    phases: Dict[str, PhaseSummary] = field(default_factory=dict)

    def share(self, name: str) -> float:
        if self.root_seconds <= 0.0:
            return 0.0
        phase = self.phases.get(name)
        return phase.seconds / self.root_seconds if phase else 0.0


def summarize(records: Sequence[Dict[str, Any]]) -> TraceSummary:
    summary = TraceSummary()
    for record in records:
        summary.records += 1
        seen: set[str] = set()
        for span in record.get("spans", ()):
            name = str(span["name"])
            phase = summary.phases.get(name)
            if phase is None:
                phase = summary.phases[name] = PhaseSummary(name)
            if name not in seen:
                phase.jobs += 1
                seen.add(name)
            phase.calls += int(span["count"])
            phase.seconds += float(span["seconds"])
            if span["parent"] == -1:
                summary.root_seconds += float(span["seconds"])
    return summary


def format_summary(summary: TraceSummary) -> str:
    """The ``repro trace summary`` table."""
    header = (
        f"{'phase':<20} {'jobs':>5} {'calls':>8} {'total_s':>10} "
        f"{'mean_ms':>9} {'share':>6}"
    )
    lines = [
        f"trace records: {summary.records}"
        f"  (root span time {summary.root_seconds:.4f}s)",
        header,
        "-" * len(header),
    ]
    ordered = sorted(
        summary.phases.values(), key=lambda p: p.seconds, reverse=True
    )
    for phase in ordered:
        lines.append(
            f"{phase.name:<20} {phase.jobs:>5} {phase.calls:>8} "
            f"{phase.seconds:>10.4f} {phase.mean_seconds() * 1e3:>9.3f} "
            f"{summary.share(phase.name) * 100:>5.1f}%"
        )
    return "\n".join(lines)


def format_record(record: Dict[str, Any]) -> str:
    """One record as an indented span tree (``repro trace show``)."""
    spans = record.get("spans", [])
    depths: List[int] = []
    for span in spans:
        parent = span["parent"]
        depths.append(0 if parent == -1 else depths[parent] + 1)
    label = record.get("label") or "<unlabelled>"
    seconds = record.get("seconds")
    suffix = f"  ({seconds:.4f}s)" if isinstance(seconds, (int, float)) else ""
    lines = [f"{label}{suffix}"]
    for span, depth in zip(spans, depths):
        attrs = span.get("attrs")
        attr_text = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs else ""
        )
        count = span["count"]
        count_text = f" x{count}" if count != 1 else ""
        lines.append(
            f"  {'  ' * depth}{span['name']:<{24 - 2 * depth}} "
            f"{float(span['seconds']):>9.4f}s{count_text}{attr_text}"
        )
    return "\n".join(lines)


__all__ = [
    "PhaseSummary",
    "TRACE_SCHEMA",
    "TraceError",
    "TraceSummary",
    "TraceWriter",
    "format_record",
    "format_summary",
    "read_trace",
    "summarize",
    "trace_record",
]
