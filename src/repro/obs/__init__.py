"""Deterministic-safe observability: spans, metrics, trace files.

The package is the single sanctioned home for steady-clock reads
(:mod:`repro.obs.clock`), the per-job tracing layer
(:mod:`repro.obs.spans`), the Prometheus-style metrics registry
(:mod:`repro.obs.metrics`), and the ``repro-trace-v1`` JSONL trace-file
format (:mod:`repro.obs.trace`).

Design constraints, enforced by lint and tests:

* **Bit-neutral** — enabling tracing changes no result or content
  hashes; trace data rides in the VOLATILE tier of scenario snapshots
  and the ``trace`` config field is stripped before content hashing.
* **Near-zero when disabled** — ``span()``/``aggregate()`` return a
  shared no-op context manager when no tracer is active, guarded by
  ``benchmarks/bench_obs_overhead.py``.
* **REP001/REP007 clean** — all ``perf_counter``/``monotonic`` reads in
  instrumented packages resolve through :mod:`repro.obs.clock`.
"""

from repro.obs import clock, metrics, spans, trace

__all__ = ["clock", "metrics", "spans", "trace"]
