"""Nestable, deterministic-safe tracing spans.

A :class:`Tracer` records a per-job trace: a flat list of span records
in start order, each carrying its parent index, so nesting reconstructs
without a tree structure in the payload.  All timing comes from
:mod:`repro.obs.clock` and is *relative to the tracer's creation* — a
trace never contains a wall-clock timestamp, which keeps it safely in
the VOLATILE tier of scenario snapshots.

Two kinds of spans:

* ``span(name, **attrs)`` — one record per entry; for coarse phases
  (context build, session build, search).
* ``aggregate(name, **attrs)`` — one record per distinct
  ``(name, attrs)`` that accumulates ``count`` and ``seconds`` across
  entries; for hot loops (per-candidate scoring, engine evaluation,
  store I/O) where per-entry records would explode the trace.

The module-level :func:`span`/:func:`aggregate` helpers consult the
ambient tracer (a :mod:`contextvars` variable set by :func:`activate`).
When no tracer is active they return the shared :data:`NO_SPAN`
singleton — two trivial method calls and no allocation, the "near-zero
cost when disabled" fast path guarded by
``benchmarks/bench_obs_overhead.py``.  Hot loops should hoist the
handle once (``timer = spans.aggregate("x")``) and re-enter it, which
amortizes even the contextvar lookup.
"""

from __future__ import annotations

import contextvars
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import clock

_ROOT = -1


class _NullSpan:
    """Shared do-nothing span: the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The singleton no-op context manager returned whenever tracing is off.
NO_SPAN = _NullSpan()


class _Span:
    """A live single-entry span; records on exit even if the body raises."""

    __slots__ = ("_tracer", "_index", "_t0")

    def __init__(self, tracer: "Tracer", index: int) -> None:
        self._tracer = tracer
        self._index = index

    def __enter__(self) -> "_Span":
        self._t0 = clock.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = clock.perf_counter() - self._t0
        self._tracer._close(self._index, elapsed)


class _AggregateSpan:
    """A reusable accumulating span bound to one ``(name, attrs)`` record."""

    __slots__ = ("_tracer", "_name", "_attrs", "_index", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._index: Optional[int] = None

    def __enter__(self) -> "_AggregateSpan":
        self._t0 = clock.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = clock.perf_counter() - self._t0
        if self._index is None:
            self._index = self._tracer._open_aggregate(self._name, self._attrs)
        self._tracer._accumulate(self._index, elapsed)


class Tracer:
    """Per-job span recorder.

    Records are plain dicts — the serialized form *is* the in-memory
    form, so ``to_payload()`` round-trips losslessly through JSON, the
    process pool, and the result store.  A tracer is single-threaded by
    design: each job runs on one worker thread/process and activates
    its own tracer.
    """

    __slots__ = ("records", "_stack", "_aggregates", "_t0")

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._aggregates: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], int] = {}
        self._t0 = clock.perf_counter()

    # -- single-entry spans -------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        index = len(self.records)
        record: Dict[str, Any] = {
            "name": name,
            "start": self._now(),
            "seconds": 0.0,
            "parent": self._stack[-1] if self._stack else _ROOT,
            "count": 1,
        }
        if attrs:
            record["attrs"] = attrs
        self.records.append(record)
        self._stack.append(index)
        return _Span(self, index)

    def _close(self, index: int, elapsed: float) -> None:
        self.records[index]["seconds"] = elapsed
        # Tolerate out-of-order exits (a span leaked across a raise):
        # unwind to the closing span rather than corrupting parentage.
        while self._stack and self._stack[-1] != index:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # -- aggregated spans ---------------------------------------------

    def aggregate(self, name: str, **attrs: Any) -> _AggregateSpan:
        return _AggregateSpan(self, name, attrs)

    def add(self, name: str, seconds: float, **attrs: Any) -> None:
        """Accumulate one externally timed interval into an aggregate
        record (for call sites that already hold a duration)."""
        self._accumulate(self._open_aggregate(name, attrs), seconds)

    def _open_aggregate(self, name: str, attrs: Dict[str, Any]) -> int:
        key = (name, tuple(sorted(attrs.items())))
        index = self._aggregates.get(key)
        if index is None:
            index = len(self.records)
            record: Dict[str, Any] = {
                "name": name,
                "start": self._now(),
                "seconds": 0.0,
                "parent": self._stack[-1] if self._stack else _ROOT,
                "count": 0,
            }
            if attrs:
                record["attrs"] = dict(attrs)
            self.records.append(record)
            self._aggregates[key] = index
        return index

    def _accumulate(self, index: int, elapsed: float) -> None:
        record = self.records[index]
        record["seconds"] += elapsed
        record["count"] += 1

    # -- serialization -------------------------------------------------

    def _now(self) -> float:
        return clock.perf_counter() - self._t0

    def to_payload(self) -> List[Dict[str, Any]]:
        """The trace as JSON-ready records (start order, parent links)."""
        return [dict(record) for record in self.records]

    @classmethod
    def from_payload(cls, payload: List[Dict[str, Any]]) -> "Tracer":
        """Rebuild a tracer from serialized records (for inspection and
        merging; the rebuilt tracer starts with an empty span stack, so
        new spans land at the root)."""
        tracer = cls()
        tracer.records = [dict(record) for record in payload]
        return tracer


class _Activation:
    """Context manager installing ``tracer`` as the ambient tracer."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer

    def __enter__(self) -> Optional[Tracer]:
        self._token = _CURRENT.set(self._tracer)
        return self._tracer

    def __exit__(self, *exc: object) -> None:
        _CURRENT.reset(self._token)


_CURRENT: contextvars.ContextVar[Optional[Tracer]] = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)


def current() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _CURRENT.get()


def activate(tracer: Optional[Tracer]) -> _Activation:
    """Install ``tracer`` as the ambient tracer for the ``with`` body.

    ``activate(None)`` is valid and explicitly disables tracing for the
    body (used to shield nested work from an outer tracer).
    """
    return _Activation(tracer)


def span(name: str, **attrs: Any) -> Any:
    """A single-entry span on the ambient tracer; no-op when disabled."""
    tracer = _CURRENT.get()
    if tracer is None:
        return NO_SPAN
    return tracer.span(name, **attrs)


def aggregate(name: str, **attrs: Any) -> Any:
    """An accumulating span handle on the ambient tracer; no-op when
    disabled.  Hoist the handle outside hot loops and re-enter it."""
    tracer = _CURRENT.get()
    if tracer is None:
        return NO_SPAN
    return tracer.aggregate(name, **attrs)


__all__ = [
    "NO_SPAN",
    "Tracer",
    "activate",
    "aggregate",
    "current",
    "span",
]
