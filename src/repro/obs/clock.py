"""The sanctioned steady clock.

Every ``perf_counter``/``monotonic`` read in the instrumented packages
goes through this module (lint rule REP007 ``obs-discipline``).  The
names are direct aliases — zero wrapper overhead — but funnelling them
through one module keeps the determinism story auditable: the REP001
hash-feeding closure stays wall-clock-free, and interval timing is
visibly separate from the wall-clock timestamps the job store records.

``wall()`` is *not* exported on purpose: wall-clock reads stay at the
few audited ``time.time()`` sites (job-store timestamps, snapshot
``generated_at``) that carry explicit ``repro: allow[REP001]`` markers
or live outside the hash-feeding closure.
"""

import time

#: Monotonic high-resolution interval clock (seconds, float).
perf_counter = time.perf_counter

#: Monotonic high-resolution interval clock (nanoseconds, int).
perf_counter_ns = time.perf_counter_ns

#: Monotonic deadline clock (seconds, float) — suspend-safe on most
#: platforms; used for client polling deadlines and service uptime.
monotonic = time.monotonic

__all__ = ["perf_counter", "perf_counter_ns", "monotonic"]
