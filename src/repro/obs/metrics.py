"""A small Prometheus-style metrics registry.

Counters, gauges, and histograms with label support, rendered in the
Prometheus text exposition format (version 0.0.4) that ``GET /metrics``
on the job service serves.  No external client library — the stdlib is
the dependency budget — but the output is scrape-compatible.

Two registries exist by convention:

* :data:`REGISTRY` — the process-wide default where library-level
  instruments live (engine evaluation, store I/O, cache lookups).
* a private :class:`MetricsRegistry` per :class:`~repro.service.server.
  JobService` for service-level metrics, so concurrent services in one
  process (common in tests) don't bleed counters into each other.

``/metrics`` concatenates both.  Metric names are disjoint by prefix
(``repro_service_*`` vs ``repro_engine_*``/``repro_store_*``/
``repro_cache_*``), so the concatenation is itself valid exposition
text.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Content type for the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds); +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """Invalid metric/label name or conflicting re-registration."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _label_pairs(
    labelnames: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricsError(
            f"expected labels {labelnames!r}, got {tuple(sorted(labels))!r}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(
    labelnames: Tuple[str, ...],
    values: Tuple[str, ...],
    extra: Tuple[Tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _Metric:
    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock

    def _header(self) -> List[str]:
        help_text = self.help.replace("\\", "\\\\").replace("\n", "\\n")
        return [
            f"# HELP {self.name} {help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args: object) -> None:
        super().__init__(*args)  # type: ignore[arg-type]
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)}"
                f" {_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A value that can go up and down; sampled at scrape time."""

    kind = "gauge"

    def __init__(self, *args: object) -> None:
        super().__init__(*args)  # type: ignore[arg-type]
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)}"
                f" {_format_value(value)}"
            )
        return lines


class Histogram(_Metric):
    """Cumulative-bucket latency histogram (``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self, name: str, help_text: str, labelnames: Tuple[str, ...],
        lock: threading.Lock, buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise MetricsError(f"histogram {name} buckets must be sorted and unique")
        self.buckets = tuple(float(b) for b in buckets if b != math.inf)
        # per label-key: [per-bucket counts..., +Inf count], sum
        self._values: Dict[Tuple[str, ...], Tuple[List[int], float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_pairs(self.labelnames, labels)
        value = float(value)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                entry = ([0] * (len(self.buckets) + 1), 0.0)
            counts, total = entry
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._values[key] = (counts, total + value)

    def count(self, **labels: str) -> int:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            entry = self._values.get(key)
            return sum(entry[0]) if entry else 0

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, (list(counts), total))
                for key, (counts, total) in self._values.items()
            )
        for key, (counts, total) in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _render_labels(
                    self.labelnames, key, (("le", _format_value(bound)),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(self.labelnames, key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            lines.append(
                f"{self.name}_sum{_render_labels(self.labelnames, key)}"
                f" {_format_value(total)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(self.labelnames, key)}"
                f" {cumulative}"
            )
        return lines


class MetricsRegistry:
    """A named collection of metrics with one shared lock.

    Registration is idempotent for an identical (kind, labelnames)
    signature — module-level instruments survive re-imports — and a
    conflicting re-registration raises, catching copy-paste drift.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric_cls: type, name: str, help_text: str,
                  labelnames: Sequence[str], **kwargs: object) -> _Metric:
        if not _METRIC_NAME.match(name):
            raise MetricsError(f"invalid metric name: {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise MetricsError(f"invalid label name: {label!r}")
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not metric_cls or existing.labelnames != names:
                raise MetricsError(
                    f"metric {name!r} already registered with a different "
                    f"type or label set"
                )
            return existing
        metric = metric_cls(name, help_text, names, self._lock, **kwargs)
        with self._lock:
            # Lost race: keep the first registration.
            winner = self._metrics.setdefault(name, metric)
        return winner

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        metric = self._register(Counter, name, help_text, labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        metric = self._register(Gauge, name, help_text, labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._register(
            Histogram, name, help_text, labelnames, buckets=buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


def render_many(registries: Iterable[MetricsRegistry]) -> str:
    """Concatenate several registries into one exposition document."""
    return "".join(registry.render() for registry in registries)


#: Process-wide default registry for library-level instruments.
REGISTRY = MetricsRegistry()


__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "REGISTRY",
    "render_many",
]
