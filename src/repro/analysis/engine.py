"""The analysis driver: collect files, run rules, apply suppressions.

:func:`analyze_paths` is the whole pipeline — ``repro lint`` and the
in-process tier-1 self-test (``tests/test_lint_self.py``) both call it:

1. expand the given paths to ``.py`` files (directories recurse),
2. parse everything into a :class:`~repro.analysis.project.Project`
   (one shared import graph, so REP001's reachability sees the whole
   package even when a single file is being linted),
3. run the selected rules per module,
4. drop findings silenced by ``# repro: allow[rule-id]`` comments and
   add an ``REP000`` finding for every suppression that silenced
   nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.project import (
    DEFAULT_HASH_ROOTS,
    ModuleInfo,
    Project,
    parse_module,
)
from repro.analysis.registry import Rule, get_rules
from repro.analysis.suppress import scan_suppressions
from repro.errors import AnalysisError

#: Schema identifier for ``repro lint --format json`` output.
REPORT_SCHEMA = "repro-lint-v1"


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """The ``--format json`` document."""
        return {
            "schema": REPORT_SCHEMA,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts_by_rule(),
            "ok": self.ok,
        }

    def render_lines(self) -> list[str]:
        """The text report: one line per finding plus a summary line."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            counts = ", ".join(
                f"{rule} x{n}" for rule, n in self.counts_by_rule().items()
            )
            lines.append(
                f"{len(self.findings)} finding"
                f"{'s' if len(self.findings) != 1 else ''} "
                f"in {self.files_checked} files ({counts})"
            )
        else:
            lines.append(
                f"clean: {self.files_checked} files, "
                f"{len(self.rules_run)} rules, 0 findings"
            )
        return lines


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py"))
        elif path.is_file():
            seen.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(seen)


def build_project(
    files: Sequence[Path],
    hash_roots: tuple[str, ...] = DEFAULT_HASH_ROOTS,
) -> Project:
    return Project(
        (parse_module(path) for path in files), hash_roots=hash_roots
    )


def analyze_paths(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    hash_roots: tuple[str, ...] = DEFAULT_HASH_ROOTS,
) -> AnalysisReport:
    """Run the suite over ``paths`` (see module docstring)."""
    files = collect_files(paths)
    rules = get_rules(rule_ids)
    project = build_project(files, hash_roots=hash_roots)
    report = AnalysisReport(
        files_checked=len(project.modules),
        rules_run=[rule.id for rule in rules],
    )
    for module in project.modules:
        report.findings.extend(_check_module(module, project, rules))
    report.findings.sort(key=lambda f: f.sort_key)
    return report


def _check_module(
    module: ModuleInfo, project: Project, rules: Sequence[Rule]
) -> list[Finding]:
    suppressions = scan_suppressions(module.source)
    kept: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module, project):
            if not suppressions.matches(finding.rule, finding.line):
                kept.append(finding)
    kept.extend(suppressions.unused(module.display_path))
    return kept
