"""Per-line finding suppressions: ``# repro: allow[RULE-ID, ...]``.

A suppression comment on a line silences findings *on that same line*
for the listed rule ids.  Every suppression must earn its keep: one
that silences nothing is itself reported as an ``REP000`` finding
(unused suppression), so stale allows cannot rot in the tree after the
code they excused was fixed.  ``REP000`` findings are not suppressible.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

#: The rule id reserved for unused-suppression findings.
UNUSED_SUPPRESSION_RULE = "REP000"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass
class Suppression:
    """One ``allow[...]`` entry: a rule id pinned to a source line."""

    rule: str
    line: int
    col: int
    used: bool = False


@dataclass
class SuppressionIndex:
    """All suppressions of one file, with usage tracking."""

    by_line: dict[tuple[int, str], Suppression] = field(default_factory=dict)

    def matches(self, rule: str, line: int) -> bool:
        """True (and marks the suppression used) when ``rule@line`` is allowed."""
        entry = self.by_line.get((line, rule))
        if entry is None:
            return False
        entry.used = True
        return True

    def unused(self, path: str) -> list[Finding]:
        """A ``REP000`` finding for every suppression that silenced nothing."""
        return [
            Finding(
                rule=UNUSED_SUPPRESSION_RULE,
                path=path,
                line=entry.line,
                col=entry.col,
                message=(
                    f"unused suppression: no {entry.rule} finding on this "
                    f"line; remove the '# repro: allow[{entry.rule}]' comment"
                ),
            )
            for entry in sorted(
                self.by_line.values(), key=lambda e: (e.line, e.col, e.rule)
            )
            if not entry.used
        ]


def scan_suppressions(source: str) -> SuppressionIndex:
    """Collect every ``# repro: allow[...]`` comment in ``source``.

    Comments are found with :mod:`tokenize` (never by substring search),
    so an ``allow[...]`` inside a string literal is not a suppression.
    """
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            line, col = token.start
            for rule in match.group(1).split(","):
                rule = rule.strip()
                if rule:
                    index.by_line[(line, rule)] = Suppression(
                        rule=rule, line=line, col=col
                    )
    except tokenize.TokenError:
        # A tokenization failure will surface as a parse error upstream;
        # suppressions just come back empty.
        pass
    return index
