"""Finding: one rule violation, pinned to a source span.

Findings are plain data — the engine produces them, the formatters in
:mod:`repro.analysis.engine` and the ``repro lint`` CLI render them.
They sort by location (path, line, column, rule id) so reports are
stable across runs and dict orderings.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--format json`` item schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
