"""``repro.analysis`` — the invariant-enforcing static-analysis suite.

The system's headline guarantees are *invariants*, not features:
content hashes must be bit-identical across processes and executor
tiers, ``to_payload``/``from_payload`` must round-trip losslessly, and
no thread may block the service on I/O while holding its state lock.
Tests exercise those promises on specific inputs; this package checks
the *code shape* that upholds them, over the whole tree, on every run
of ``repro lint`` (and the tier-1 self-test).

Public surface:

* :func:`analyze_paths` — run the suite, get an
  :class:`~repro.analysis.engine.AnalysisReport`.
* :func:`all_rules` / :func:`get_rules` — the registry.
* :class:`~repro.analysis.findings.Finding` — one violation.
* ``# repro: allow[REP00N]`` — per-line suppression (unused
  suppressions are themselves findings, rule ``REP000``).

See ``docs/ANALYSIS.md`` for the rule catalog and how to add a rule.
"""

from repro.analysis.engine import (
    REPORT_SCHEMA,
    AnalysisReport,
    analyze_paths,
    collect_files,
)
from repro.analysis.findings import Finding
from repro.analysis.project import DEFAULT_HASH_ROOTS, Project, parse_module
from repro.analysis.registry import Rule, all_rules, get_rules
from repro.analysis.suppress import UNUSED_SUPPRESSION_RULE

__all__ = [
    "REPORT_SCHEMA",
    "AnalysisReport",
    "analyze_paths",
    "collect_files",
    "Finding",
    "DEFAULT_HASH_ROOTS",
    "Project",
    "parse_module",
    "Rule",
    "all_rules",
    "get_rules",
    "UNUSED_SUPPRESSION_RULE",
]
