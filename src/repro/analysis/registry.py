"""The rule registry: id -> (metadata, checker).

A rule is a function ``check(module, project) -> iterable of Finding``
registered under a stable id (``REP001``...).  Registration happens at
import time of :mod:`repro.analysis.rules`; the registry is what the
engine iterates and what ``repro lint --rules`` filters against.

Adding a rule (see ``docs/ANALYSIS.md`` for the worked example):

1. write ``check(module: ModuleInfo, project: Project)`` in a module
   under ``repro/analysis/rules/``,
2. decorate it with ``@rule("REP00N", name=..., summary=...)``,
3. import the module from ``repro/analysis/rules/__init__.py``,
4. add positive/negative fixtures under ``tests/fixtures/lint/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.errors import AnalysisError

Checker = Callable[[ModuleInfo, Project], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    id: str
    name: str
    summary: str
    check: Checker


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, name: str, summary: str) -> Callable[[Checker], Checker]:
    """Register ``check`` under ``rule_id`` (decorator)."""

    def decorator(check: Checker) -> Checker:
        if rule_id in _REGISTRY:
            raise AnalysisError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            id=rule_id, name=name, summary=summary, check=check
        )
        return check

    return decorator


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Optional[Sequence[str]] = None) -> list[Rule]:
    """The rules named by ``ids`` (or all); unknown ids raise."""
    _ensure_loaded()
    if ids is None:
        return all_rules()
    unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
    if unknown:
        raise AnalysisError(
            f"unknown rule id{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_REGISTRY))})"
        )
    return [_REGISTRY[rule_id] for rule_id in sorted(set(ids))]


def _ensure_loaded() -> None:
    """Import the built-in rule modules so they self-register."""
    from repro.analysis import rules  # noqa: F401  (import-for-effect)
