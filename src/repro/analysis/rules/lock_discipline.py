"""REP003 — no I/O under a held lock in the service and store layers.

The job service's ``self._lock`` guards in-memory record state and is
taken on every submit/status/stats/worker transition; a SQLite commit
(or any file/network wait) executed while holding it freezes *every*
endpoint for the duration of the I/O — the exact incident class PR 4
hardened against ("store I/O kept outside the service lock").

Flagged while a ``with <...lock...>:`` block is held, in modules under
a ``service`` or ``store`` package:

* ``open(...)`` and ``Path.read_*``/``write_*`` — file I/O;
* ``sqlite3.connect(...)`` — opening a database;
* ``urllib.*`` / ``http.client.*`` / ``socket.*`` / ``requests.*`` —
  network I/O;
* ``time.sleep`` — waiting while others spin on the lock;
* any call whose receiver names the store/cache layer
  (``self._store.update_job(...)``, ``cache.lookup(...)``) — the
  store serializes its own I/O behind its *own* lock, and calling into
  it with the service lock held stacks the waits.

Deliberately *not* flagged: ``self._conn.execute(...)`` inside
:class:`repro.store.jobstore.JobStore` — that lock exists precisely to
serialize the one shared connection, and the writes it guards are the
short, bounded kind.  The rule polices callers that hold an unrelated
state lock across the store boundary, not the store's own discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project, resolve_call_chain
from repro.analysis.registry import rule

#: Packages whose modules this rule applies to (any path segment).
_SCOPED_PACKAGES = ("service", "store")

_NETWORK_ROOTS = ("urllib", "socket", "requests")
_IO_CHAINS = {"sqlite3.connect", "time.sleep", "http.client"}
_FILE_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes", "unlink",
}
_STORE_RECEIVERS = ("store", "cache")


@rule(
    "REP003",
    name="lock-discipline",
    summary=(
        "no sqlite/file/network I/O (or store-layer calls) while "
        "holding a lock in service/ and store/ modules"
    ),
)
def check_lock_discipline(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    parts = {p.lower() for p in module.path.parts} | set(
        module.name.split(".")
    )
    if not parts.intersection(_SCOPED_PACKAGES):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_lock_expr(item.context_expr) for item in node.items):
            continue
        for call in _calls_in_block(node.body):
            message = _diagnose(module, call)
            if message is not None:
                yield Finding(
                    rule="REP003",
                    path=module.display_path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{message} inside a `with lock:` block "
                        f"(line {node.lineno}); do the I/O before or "
                        f"after holding the lock"
                    ),
                )


def _is_lock_expr(expr: ast.expr) -> bool:
    """`self._lock`, `some_lock`, `self.lock.acquire_ctx()`-ish names."""
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    if isinstance(expr, ast.Name):
        return "lock" in expr.id.lower()
    return False


def _calls_in_block(body: list[ast.stmt]) -> Iterator[ast.Call]:
    """Every call in ``body``, not descending into nested defs/lambdas.

    Code inside a nested function definition runs when *that* function
    is called, not while this lock is held.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _diagnose(module: ModuleInfo, call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return "open() performs file I/O"
    chain = resolve_call_chain(module, call.func)
    if chain is None:
        return None
    if chain in _IO_CHAINS or any(
        chain.startswith(prefix + ".") for prefix in _IO_CHAINS
    ):
        return f"{chain}() blocks on I/O or sleeps"
    root = chain.split(".", 1)[0]
    if root in _NETWORK_ROOTS:
        return f"{chain}() performs network I/O"
    if isinstance(call.func, ast.Attribute):
        receiver = _receiver_name(call.func)
        if receiver is not None:
            lowered = receiver.lower()
            if call.func.attr in _FILE_METHODS and "path" in lowered:
                return f"{receiver}.{call.func.attr}() performs file I/O"
            if any(marker in lowered for marker in _STORE_RECEIVERS):
                return (
                    f"{receiver}.{call.func.attr}() calls into the "
                    f"store/cache layer (SQLite I/O behind its own lock)"
                )
    return None


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """The last name segment of the call receiver (`self._store` -> _store)."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None
