"""REP007 — monotonic timing goes through ``repro.obs.clock``.

PR 9 added the tracing/metrics layer (:mod:`repro.obs`): every span,
histogram, and volatile ``seconds`` field reads the same sanctioned
clock surface, so "where does timing come from" has exactly one answer
and the no-op fast path stays benchmark-guarded in one place.  A direct
``time.perf_counter()`` in library code silently forks that surface —
it works, but it is invisible to the obs layer's guarantees (and to
anyone auditing them).

Flagged in any module outside an ``obs`` package: calls resolving to
``time.perf_counter`` / ``time.perf_counter_ns`` / ``time.monotonic``
/ ``time.monotonic_ns`` (plain, aliased, or ``from time import ...``).
The sanctioned replacement is ``from repro.obs import clock`` — its
names are direct aliases of the :mod:`time` functions, so the swap is
free.

Not flagged: modules named ``_common`` (the benchmark harness helper is
the out-of-package timing surface for standalone benchmark scripts,
which cannot always import ``repro``), and wall-clock ``time.time()``
(REP001's business — wall clock is an operational-timestamp question,
not a timing-surface one).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project, resolve_call_chain
from repro.analysis.registry import rule

#: Packages that own the raw monotonic-clock surface (any path segment).
_EXEMPT_PACKAGES = ("obs",)

#: Standalone modules exempted by name: the benchmark harness helper
#: re-exports the clock for scripts that run without ``repro`` on the
#: path.
_EXEMPT_MODULES = ("_common",)

_BANNED = frozenset({
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
})


@rule(
    "REP007",
    name="obs-discipline",
    summary=(
        "monotonic timing outside repro.obs goes through repro.obs.clock, "
        "never time.perf_counter()/time.monotonic() directly"
    ),
)
def check_obs_discipline(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    parts = {p.lower() for p in module.path.parts} | set(
        module.name.split(".")
    )
    if parts.intersection(_EXEMPT_PACKAGES):
        return
    if module.name.rpartition(".")[2] in _EXEMPT_MODULES:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = resolve_call_chain(module, node.func)
        if chain in _BANNED:
            yield Finding(
                rule="REP007",
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{chain}() bypasses the sanctioned timing surface; "
                    f"use repro.obs.clock.{chain.partition('.')[2]}()"
                ),
            )
