"""Built-in rules; importing this package registers them all.

Rule catalog (see ``docs/ANALYSIS.md`` for examples and rationale):

========  ==================  ===========================================
REP000    (reserved)          unused ``# repro: allow[...]`` suppression
REP001    determinism         no wall-clock/entropy on hash-feeding paths
REP002    payload-parity      ``to_payload``/``from_payload`` round trips
REP003    lock-discipline     no I/O while holding service/store locks
REP004    exception-hygiene   no bare/silent ``except``
REP005    seed-plumbing       ``seed=`` defaults to ``DEFAULT_SEED``
REP006    engine-discipline   relation reads go through ``KDatabase.scan``
REP007    obs-discipline      monotonic timing goes through ``repro.obs.clock``
========  ==================  ===========================================
"""

from repro.analysis.rules import (  # noqa: F401  (import-for-effect)
    determinism,
    engine_discipline,
    exception_hygiene,
    lock_discipline,
    obs_discipline,
    payload_parity,
    seed_plumbing,
)
