"""REP006 — relation reads outside the engine layer go through ``scan``.

PR 8 made query evaluation pluggable (:mod:`repro.engine`): the naive
interpreter and the SQL engines are interchangeable *because* every read
of relation contents funnels through a small, audited surface.  Code
that reaches around it — calling :meth:`KRelation.matching` directly or
looping over ``database.relation(...)`` — silently re-implements a scan
with whatever iteration order it gets, which is exactly how engine-
dependent (hash-breaking) behavior sneaks in.

Flagged in any module outside a ``engine`` or ``db`` package:

* ``<anything>.matching(...)`` — the index-backed point lookup is the
  engines' private primitive;
* consuming ``<anything>.relation(...)`` as an iterable: a ``for`` loop
  target, a comprehension source, or an argument to an iterating
  builtin (``list``, ``sorted``, ``sum``, ...).

Not flagged: ``len(db.relation(name))`` and other non-iterating uses
(cardinality is metadata, not a scan), and ``schema.relation(...)``
(that returns a :class:`RelationSchema`, not tuples).  The sanctioned
replacement is :meth:`repro.db.database.KDatabase.scan`, which performs
the identical insertion-order read in one place.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import rule

#: Packages whose modules own the raw relation surface (any path segment).
_EXEMPT_PACKAGES = ("engine", "db")

#: Builtins that consume their argument as an iterable.
_ITERATING_BUILTINS = frozenset({
    "list", "tuple", "set", "frozenset", "iter", "sorted", "enumerate",
    "sum", "max", "min", "any", "all", "map", "filter", "zip",
})


@rule(
    "REP006",
    name="engine-discipline",
    summary=(
        "relation contents outside engine/ and db/ modules are read via "
        "KDatabase.scan(), never .matching() or relation iteration"
    ),
)
def check_engine_discipline(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    parts = {p.lower() for p in module.path.parts} | set(
        module.name.split(".")
    )
    if parts.intersection(_EXEMPT_PACKAGES):
        return
    for node in ast.walk(module.tree):
        finding = _diagnose(module, node)
        if finding is not None:
            yield finding


def _diagnose(module: ModuleInfo, node: ast.AST) -> Optional[Finding]:
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "matching"
        ):
            return _finding(
                module, node,
                ".matching() is the engines' private lookup primitive; "
                "use KDatabase.scan(relation, bindings)",
            )
        consumed = _consumed_relation_call(node)
        if consumed is not None:
            return _finding(
                module, consumed,
                "iterating .relation(...) bypasses the engine layer; "
                "use KDatabase.scan(relation)",
            )
        return None
    if isinstance(node, (ast.For, ast.AsyncFor)):
        if _is_relation_call(node.iter):
            return _finding(
                module, node.iter,
                "iterating .relation(...) bypasses the engine layer; "
                "use KDatabase.scan(relation)",
            )
        return None
    if isinstance(
        node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
    ):
        for generator in node.generators:
            if _is_relation_call(generator.iter):
                return _finding(
                    module, generator.iter,
                    "iterating .relation(...) bypasses the engine layer; "
                    "use KDatabase.scan(relation)",
                )
    return None


def _consumed_relation_call(call: ast.Call) -> Optional[ast.Call]:
    """The ``.relation(...)`` argument of an iterating builtin, if any."""
    if not isinstance(call.func, ast.Name):
        return None
    if call.func.id not in _ITERATING_BUILTINS:
        return None
    for arg in call.args:
        if _is_relation_call(arg):
            return arg
    return None


def _is_relation_call(expr: ast.expr) -> bool:
    """``<receiver>.relation(...)`` where the receiver is not a schema."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if not isinstance(func, ast.Attribute) or func.attr != "relation":
        return False
    # schema.relation(name) returns arity metadata, not tuples.
    receiver = func.value
    if isinstance(receiver, ast.Attribute) and "schema" in receiver.attr:
        return False
    if isinstance(receiver, ast.Name) and "schema" in receiver.id:
        return False
    return True


def _finding(module: ModuleInfo, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule="REP006",
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )
