"""REP002 — ``to_payload`` / ``from_payload`` parity.

Results cross every boundary in this system — process pools, the HTTP
result endpoint, the content-addressed store — as ``to_payload()``
dictionaries, rebuilt with ``from_payload()``.  The round trip is only
lossless if the two methods agree, and history says they drift: the
``cache_hit`` and ``session_reused`` fields were each added to the
dataclass first and to the payload later, silently zeroing the flag for
every consumer on the far side of a boundary.

The rule checks, per class:

* a class defining ``to_payload`` must define ``from_payload``;
* every payload key whose value is read from the object's **own state**
  (a direct ``self.<attr>`` access) must be read back in
  ``from_payload`` (``payload["k"]`` / ``payload.get("k")`` /
  ``payload.pop("k")``).

Keys derived from *nested* attributes (``self.job.query_name``) are
exempt: they are spec-side display fields, reconstructed from the
companion object ``from_payload`` receives, not payload state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import rule


@rule(
    "REP002",
    name="payload-parity",
    summary=(
        "every to_payload needs a from_payload reading back each "
        "own-state field it writes"
    ),
)
def check_payload_parity(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    for class_node in ast.walk(module.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        to_payload = _method(class_node, "to_payload")
        if to_payload is None:
            continue
        from_payload = _method(class_node, "from_payload")
        if from_payload is None:
            yield Finding(
                rule="REP002",
                path=module.display_path,
                line=to_payload.lineno,
                col=to_payload.col_offset,
                message=(
                    f"class {class_node.name} defines to_payload but no "
                    f"from_payload: the payload cannot round-trip"
                ),
            )
            continue
        read_keys = _read_keys(from_payload)
        for key, key_node in _written_state_keys(to_payload):
            if key not in read_keys:
                yield Finding(
                    rule="REP002",
                    path=module.display_path,
                    line=key_node.lineno,
                    col=key_node.col_offset,
                    message=(
                        f"{class_node.name}.to_payload writes "
                        f"{key!r} from own state but "
                        f"{class_node.name}.from_payload never reads "
                        f"it: the field is silently dropped on the "
                        f"round trip"
                    ),
                )


def _method(
    class_node: ast.ClassDef, name: str
) -> Optional[ast.FunctionDef]:
    for node in class_node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node  # type: ignore[return-value]
    return None


def _written_state_keys(
    func: ast.FunctionDef,
) -> Iterator[tuple[str, ast.expr]]:
    """(key, key node) for every payload key valued from direct self state."""
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key_node, value in zip(node.keys, node.values):
                if (
                    isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)
                    and _reads_own_state(value)
                ):
                    yield key_node.value, key_node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                    and _reads_own_state(node.value)
                ):
                    yield target.slice.value, target.slice


def _reads_own_state(value: ast.expr) -> bool:
    """True when ``value`` contains a *direct* ``self.<attr>`` read.

    ``self.loi`` and ``asdict(self.stats)`` qualify; ``self.job.tag``
    does not — there the ``self.job`` node is merely the receiver of a
    deeper attribute access, i.e. companion-object data.
    """
    direct: set[ast.Attribute] = set()
    for node in ast.walk(value):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            direct.add(node)
    if not direct:
        return False
    # Drop the self.<attr> nodes that are receivers of an enclosing
    # attribute access (self.job in self.job.tag).
    for node in ast.walk(value):
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Attribute
        ):
            direct.discard(node.value)
    return bool(direct)


def _read_keys(func: ast.FunctionDef) -> set[str]:
    """String keys ``from_payload`` reads via ``[k]`` / ``.get`` / ``.pop``."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "pop")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    return keys
