"""REP005 — seed plumbing: one default seed, defined once.

PR 6 unified the historic seed-default mismatch (generators defaulted
``0`` while ``ExperimentSettings`` defaulted ``1`` — so a bare
``generate_tpch()`` silently produced different data than the
experiment harness) behind :data:`repro.seeding.DEFAULT_SEED`.  This
rule keeps it unified: any function parameter named ``seed`` with a
default must default to ``DEFAULT_SEED`` (by name, however imported)
or to ``None`` (the "caller decides / settings supply it" sentinel).
A literal default is exactly the drift the unification removed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import rule

_CANONICAL = "DEFAULT_SEED"


@rule(
    "REP005",
    name="seed-plumbing",
    summary=(
        "seed= parameters must default to repro.seeding.DEFAULT_SEED "
        "(or None), never a literal"
    ),
)
def check_seed_plumbing(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for param, default in _defaulted_params(node.args):
            if param.arg != "seed" or default is None:
                continue
            problem = _diagnose_default(default)
            if problem is not None:
                yield Finding(
                    rule="REP005",
                    path=module.display_path,
                    line=default.lineno,
                    col=default.col_offset,
                    message=(
                        f"{node.name}(seed={problem}) re-introduces a "
                        f"private seed default; use "
                        f"repro.seeding.DEFAULT_SEED (or None to make "
                        f"the caller choose)"
                    ),
                )


def _defaulted_params(
    args: ast.arguments,
) -> Iterator[tuple[ast.arg, Optional[ast.expr]]]:
    positional = [*args.posonlyargs, *args.args]
    defaults: list[Optional[ast.expr]] = [
        None
    ] * (len(positional) - len(args.defaults)) + list(args.defaults)
    yield from zip(positional, defaults)
    yield from zip(args.kwonlyargs, args.kw_defaults)


def _diagnose_default(default: ast.expr) -> Optional[str]:
    """A description of a bad default, or ``None`` when it is sanctioned."""
    if isinstance(default, ast.Constant):
        if default.value is None:
            return None
        return repr(default.value)
    if isinstance(default, ast.Name):
        return None if default.id == _CANONICAL else default.id
    if isinstance(default, ast.Attribute):
        return None if default.attr == _CANONICAL else default.attr
    # Computed defaults (f(x), settings.seed, ...) are deliberate enough
    # to leave alone; the rule targets the literal-constant drift.
    return None
