"""REP004 — exception hygiene: never swallow failures silently.

Two shapes are flagged, anywhere in the tree:

* **bare ``except:``** — catches ``KeyboardInterrupt`` and
  ``SystemExit`` along with everything else; at minimum it must be
  ``except Exception``.
* **silently swallowed repro errors** — an ``except`` clause naming
  :class:`~repro.errors.ReproError` (or any of its subclasses, or the
  catch-alls ``Exception``/``BaseException`` that include them) whose
  body does nothing but ``pass``.  A library error is a *result*: it
  must be re-raised, converted into an error result
  (``BatchJobResult.from_error``, an ``error:`` line, a degraded-mode
  return), or handled with actual logic.  Handlers that count, continue
  a loop with semantics, substitute a fallback value, or narrow the
  failure are all fine — the rule only rejects the empty body.

The service's deliberate best-effort pattern — ``except sqlite3.Error:
pass`` around durability writes — is *not* flagged: ``sqlite3.Error``
is not a repro error, and the store being best-effort is documented
policy there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.registry import rule

#: Exception names whose silent swallowing hides library failures: the
#: whole repro hierarchy plus the catch-alls that contain it.
_GUARDED_NAMES = frozenset({
    "ReproError", "SchemaError", "ParseError", "EvaluationError",
    "AbstractionError", "SemiringError", "OptimizationError",
    "JobSpecError", "ServiceError", "ScenarioError", "AnalysisError",
    "Exception", "BaseException",
})


@rule(
    "REP004",
    name="exception-hygiene",
    summary=(
        "no bare except:, no pass-only handlers swallowing ReproError "
        "(or Exception catch-alls)"
    ),
)
def check_exception_hygiene(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Finding(
                rule="REP004",
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "bare `except:` catches KeyboardInterrupt/SystemExit; "
                    "name the exceptions (at minimum `except Exception`)"
                ),
            )
            continue
        guarded = _guarded_names(node.type)
        if guarded and _is_silent(node.body):
            yield Finding(
                rule="REP004",
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"`except {', '.join(sorted(guarded))}: pass` swallows "
                    f"a library failure silently; re-raise it, convert it "
                    f"to an error result, or handle it with real logic"
                ),
            )


def _guarded_names(type_expr: ast.expr) -> set[str]:
    """The guarded exception names this handler catches."""
    names: set[str] = set()
    candidates = (
        type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    )
    for expr in candidates:
        if isinstance(expr, ast.Name) and expr.id in _GUARDED_NAMES:
            names.add(expr.id)
        elif isinstance(expr, ast.Attribute) and expr.attr in _GUARDED_NAMES:
            names.add(expr.attr)
    return names


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler body is only ``pass`` / docstring-like consts."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True
