"""REP001 — determinism on hash-feeding paths.

The store's content hashes and the scenario snapshots' result hashes
promise: same inputs, same bytes, on any machine, in any process, after
any restart.  Any module that (transitively) feeds those hash inputs —
reachable by import from :data:`repro.analysis.project.DEFAULT_HASH_ROOTS`
— must therefore never read wall-clock time, unseeded randomness, OS
entropy, or CPython object identity:

* ``time.time()`` / ``time.time_ns()`` — wall clock.  Durations belong
  to ``time.perf_counter()``/``time.monotonic()`` (allowed: they only
  feed *volatile* fields, never hashes).
* ``datetime.now()`` / ``utcnow()`` / ``today()`` — wall clock again.
* module-level ``random.*`` calls and argument-less ``random.Random()``
  — process-global or time-seeded randomness.  ``random.Random(seed)``
  with an explicit seed is the sanctioned pattern.
* ``os.urandom`` / ``uuid.uuid1`` / ``uuid.uuid4`` — entropy.
* ``id(...)`` — a CPython address, different every run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project, resolve_call_chain
from repro.analysis.registry import rule

_BANNED = {
    "time.time": "wall-clock time; use time.perf_counter() for durations",
    "time.time_ns": "wall-clock time; use time.perf_counter_ns() for durations",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "entropy-derived identifier",
}

#: ``random.<fn>`` module-level calls use the process-global,
#: time-seeded generator; everything except the ``Random`` constructor
#: (with an explicit seed) is banned on hash-feeding paths.
_RANDOM_MODULE = "random"
_RANDOM_CLASS = "random.Random"


@rule(
    "REP001",
    name="determinism",
    summary=(
        "no wall-clock, unseeded randomness, entropy, or id() in modules "
        "feeding store.hashing / scenarios.snapshot hash inputs"
    ),
)
def check_determinism(
    module: ModuleInfo, project: Project
) -> Iterator[Finding]:
    if module.name not in project.hash_feeding:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        message = _diagnose(module, node)
        if message is not None:
            yield Finding(
                rule="REP001",
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=f"{message} (this module is reachable from "
                        f"the content-hash inputs and must be "
                        f"bit-reproducible)",
            )


def _diagnose(module: ModuleInfo, node: ast.Call) -> "str | None":
    if isinstance(node.func, ast.Name):
        # `id` is only interesting as the builtin; a local rebinding of
        # the name would shadow it out of alias resolution anyway.
        if node.func.id == "id" and "id" not in module.aliases:
            return "id() leaks a CPython object address"
        return None
    chain = resolve_call_chain(module, node.func)
    if chain is None:
        return None
    if chain in _BANNED:
        return f"{chain}() is nondeterministic: {_BANNED[chain]}"
    if chain == _RANDOM_CLASS:
        if not node.args and not node.keywords:
            return (
                "random.Random() without a seed falls back to OS "
                "entropy; pass an explicit seed"
            )
        return None
    root, _, rest = chain.partition(".")
    if root == _RANDOM_MODULE and rest and "." not in rest:
        return (
            f"{chain}() uses the process-global random generator; "
            f"use an explicit random.Random(seed)"
        )
    return None
