"""The analyzed file set: parsed modules, names, and the import graph.

Rules that reason about *one* module get everything they need from
:class:`ModuleInfo`; rules that reason about module *relationships*
(REP001's "which modules feed the content hashes?") ask the
:class:`Project` for reachability over the import graph.

Import edges include function-level (lazy) imports — the hashing layer
imports :mod:`repro.batch.jobs` lazily to break a cycle, and a
determinism bug in a lazily-imported feeder is exactly as fatal as one
imported at module scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import AnalysisError

#: The modules whose (transitive) imports feed content-hash inputs: the
#: canonical job hash and the scenario snapshot result hashes.  Anything
#: these modules can reach — even via a lazy import — shapes bytes that
#: must be bit-identical across processes, machines, and restarts.
DEFAULT_HASH_ROOTS = (
    "repro.store.hashing",
    "repro.scenarios.snapshot",
    "repro.scenarios.matrix",
)


def module_name_for(path: Path) -> str:
    """The dotted module name of ``path``, by walking up ``__init__.py``.

    A file outside any package gets its bare stem (no dots); the
    engine's rules treat such standalone modules conservatively (see
    :class:`Project.hash_feeding`).
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    name: str
    source: str
    tree: ast.Module
    #: Local name -> dotted origin for every import in the file (any
    #: scope): ``import time as t`` maps ``t -> time``; ``from datetime
    #: import datetime`` maps ``datetime -> datetime.datetime``.
    aliases: dict[str, str] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        try:
            return str(self.path.relative_to(Path.cwd()))
        except ValueError:
            return str(self.path)


def parse_module(path: Path) -> ModuleInfo:
    """Read and parse one file; failures raise :class:`AnalysisError`."""
    try:
        source = path.read_text()
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(
            f"cannot parse {path}: line {exc.lineno}: {exc.msg}"
        ) from None
    info = ModuleInfo(
        path=path, name=module_name_for(path), source=source, tree=tree
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.aliases[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.aliases[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return info


def resolve_call_chain(module: ModuleInfo, func: ast.expr) -> Optional[str]:
    """The dotted origin of a call target, through the module's imports.

    ``t.time`` under ``import time as t`` resolves to ``time.time``;
    ``datetime.now`` under ``from datetime import datetime`` resolves to
    ``datetime.datetime.now``.  Chains whose root is not an import
    (``self._store.save_result``) resolve with the local root name kept,
    so callers can still pattern-match on the receiver.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = module.aliases.get(node.id, node.id)
    return ".".join([root, *parts])


class Project:
    """The full analyzed file set plus its intra-project import graph."""

    def __init__(
        self,
        modules: Iterable[ModuleInfo],
        hash_roots: tuple[str, ...] = DEFAULT_HASH_ROOTS,
    ):
        self.modules: list[ModuleInfo] = sorted(
            modules, key=lambda m: str(m.path)
        )
        self.by_name: dict[str, ModuleInfo] = {
            m.name: m for m in self.modules if m.name
        }
        self.hash_roots = tuple(hash_roots)
        self._edges: Optional[dict[str, set[str]]] = None
        self._hash_feeding: Optional[set[str]] = None

    # -- import graph ------------------------------------------------------

    def _resolve_relative(self, module: ModuleInfo, node: ast.ImportFrom) -> str:
        pkg_parts = module.name.split(".")
        if module.path.stem != "__init__":
            pkg_parts = pkg_parts[:-1]
        hops = node.level - 1
        if hops:
            pkg_parts = pkg_parts[:-hops] if hops < len(pkg_parts) else []
        base = ".".join(pkg_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def edges(self) -> dict[str, set[str]]:
        """module name -> imported *project* module names (lazy imports too)."""
        if self._edges is not None:
            return self._edges
        graph: dict[str, set[str]] = {}
        for module in self.modules:
            targets: set[str] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._add_known(targets, alias.name)
                elif isinstance(node, ast.ImportFrom):
                    if node.level == 0:
                        base = node.module or ""
                    else:
                        base = self._resolve_relative(module, node)
                    self._add_known(targets, base)
                    for alias in node.names:
                        if alias.name != "*" and base:
                            self._add_known(
                                targets, f"{base}.{alias.name}"
                            )
            graph[module.name] = targets
        self._edges = graph
        return graph

    def _add_known(self, targets: set[str], dotted: str) -> None:
        """Add the most specific project module ``dotted`` names.

        Only the longest matching prefix is recorded: ``from
        repro.store.hashing import x`` is an edge to the hashing module,
        *not* to the ``repro.store`` re-export hub it incidentally
        executes — a hub edge would drag every sibling (the SQLite
        job store, with its legitimate wall-clock timestamps) into
        REP001's hash-feeding closure.
        """
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            name = ".".join(parts[:end])
            if name in self.by_name:
                targets.add(name)
                return

    # -- hash-feeding reachability (REP001's scope) ------------------------

    @property
    def hash_feeding(self) -> set[str]:
        """Module names reachable from the configured hash roots.

        When *none* of the roots exist in the analyzed set (a standalone
        file, a fixture without the real package), every module is
        considered hash-feeding — the conservative reading keeps the
        determinism rule meaningful on partial inputs.
        """
        if self._hash_feeding is not None:
            return self._hash_feeding
        roots = [r for r in self.hash_roots if r in self.by_name]
        if not roots:
            self._hash_feeding = set(self.by_name)
            return self._hash_feeding
        seen: set[str] = set()
        frontier = list(roots)
        edges = self.edges()
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(edges.get(name, ()) - seen)
        self._hash_feeding = seen
        return seen
