"""The one default seed shared by every deterministic generator.

Historically :class:`~repro.experiments.settings.ExperimentSettings`
defaulted its ``seed`` to 1 while the dataset/tree generators defaulted
theirs to 0 — so calling :func:`repro.datasets.tpch.generate_tpch`
directly produced *different* data than the experiment harness at the
same scale, a silent trap for anyone comparing runs.  Every seeded
generator default and the settings default now point here; callers on a
settings-bearing path still pass ``settings.seed`` explicitly (see
``repro.experiments.runner`` and ``repro.scenarios``), so this constant
only matters for bare convenience calls.

Kept dependency-free so the lowest layers (``repro.abstraction``,
``repro.datasets``) can import it without cycles.
"""

from __future__ import annotations

from typing import Final

#: The default for every ``seed=`` parameter of the data/tree generators
#: and for ``ExperimentSettings.seed``.  Value 1 preserves the historical
#: experiment-harness contexts (and therefore every named-workload
#: content hash computed under default settings).
DEFAULT_SEED: Final[int] = 1
