"""CSV import/export: one file per relation, annotations in a column.

The on-disk layout is a directory with ``<relation>.csv`` files.  Each file
has a header row; the first column is the tuple annotation, the remaining
columns are the relation's attributes::

    _annotation,pid,hobby,source
    h1,1,Dance,Facebook

Values are parsed back as ints/floats when they look numeric (matching the
datalog parser's constant syntax), else kept as strings.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.errors import SchemaError

ANNOTATION_COLUMN = "_annotation"


def database_to_csv_dir(database: KDatabase, directory: "str | Path") -> None:
    """Write one ``<relation>.csv`` per relation under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for rel_schema in database.schema:
        path = directory / f"{rel_schema.name}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([ANNOTATION_COLUMN, *rel_schema.attributes])
            for tup in database.scan(rel_schema.name):
                writer.writerow([tup.annotation, *tup.values])


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def database_from_csv_dir(directory: "str | Path") -> KDatabase:
    """Load every ``*.csv`` in ``directory`` as a relation."""
    directory = Path(directory)
    paths = sorted(directory.glob("*.csv"))
    if not paths:
        raise SchemaError(f"no .csv files found in {directory}")

    spec: dict[str, list[str]] = {}
    headers: dict[str, list[str]] = {}
    for path in paths:
        with open(path, newline="") as handle:
            header = next(csv.reader(handle), None)
        if not header or header[0] != ANNOTATION_COLUMN:
            raise SchemaError(
                f"{path.name}: first column must be {ANNOTATION_COLUMN!r}"
            )
        spec[path.stem] = header[1:]
        headers[path.stem] = header

    db = KDatabase(Schema.from_dict(spec))
    for path in paths:
        relation = path.stem
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            next(reader)  # header
            for line_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != len(headers[relation]):
                    raise SchemaError(
                        f"{path.name}:{line_number}: expected "
                        f"{len(headers[relation])} columns, got {len(row)}"
                    )
                annotation, *values = row
                db.insert(relation, [_parse_value(v) for v in values], annotation)
    return db
