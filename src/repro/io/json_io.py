"""JSON serialization for databases, trees, K-examples, and results.

The formats are deliberately plain so other tools (and humans) can produce
them:

Database::

    {"schema": {"R": ["a", "b"]},
     "tuples": [{"relation": "R", "values": [1, 2], "annotation": "r1"}]}

Tree (children nested under labels)::

    {"label": "*", "children": [
        {"label": "Facebook", "children": [{"label": "h1"}]}]}

K-example::

    {"rows": [{"output": [1], "provenance": ["p1", "h1", "i1"]}]}

Abstraction (per-occurrence)::

    {"assignment": [{"row": 0, "occurrence": 0, "target": "Facebook"}]}
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree, TreeNode
from repro.core.optimizer import OptimalAbstractionResult
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.errors import AbstractionError, SchemaError
from repro.provenance.kexample import KExample, KExampleRow


# -- database -------------------------------------------------------------

def database_to_json(database: KDatabase) -> dict:
    """A JSON-ready dict describing schema and annotated tuples."""
    return {
        "schema": {
            rel.name: list(rel.attributes) for rel in database.schema
        },
        "tuples": [
            {
                "relation": tup.relation,
                "values": list(tup.values),
                "annotation": tup.annotation,
            }
            for tup in database.tuples()
        ],
    }


def database_from_json(data: dict) -> KDatabase:
    """Rebuild a K-database from :func:`database_to_json` output."""
    try:
        schema = Schema.from_dict(data["schema"])
        db = KDatabase(schema)
        for entry in data["tuples"]:
            db.insert(
                entry["relation"],
                tuple(entry["values"]),
                entry["annotation"],
            )
    except KeyError as exc:
        raise SchemaError(f"malformed database JSON: missing {exc}") from None
    return db


# -- tree --------------------------------------------------------------------

def tree_to_json(tree: AbstractionTree) -> dict:
    """Nested-dict rendering of an abstraction tree."""

    def node_to_json(node: TreeNode) -> dict:
        out: dict[str, Any] = {"label": node.label}
        if node.children:
            out["children"] = [node_to_json(c) for c in node.children]
        return out

    return node_to_json(tree.root)


def tree_from_json(data: dict) -> AbstractionTree:
    """Rebuild a (frozen) abstraction tree from nested dicts."""

    def build(tree: AbstractionTree, parent_label: str,
              children: list[dict]) -> None:
        for child in children:
            tree.add_node(str(child["label"]), parent_label)
            build(tree, str(child["label"]), child.get("children", []))

    try:
        tree = AbstractionTree(str(data["label"]))
        build(tree, str(data["label"]), data.get("children", []))
    except (KeyError, TypeError, AttributeError) as exc:
        raise AbstractionError(
            f"malformed tree JSON: {type(exc).__name__}: {exc}"
        ) from None
    return tree.freeze()


# -- K-example -----------------------------------------------------------------

def kexample_to_json(example: KExample) -> dict:
    """Rows only; the registry is carried by the database file."""
    return {
        "rows": [
            {"output": list(row.output), "provenance": list(row.occurrences)}
            for row in example.rows
        ]
    }


def kexample_from_json(data: dict, database: KDatabase) -> KExample:
    try:
        rows = [
            KExampleRow(tuple(entry["output"]), list(entry["provenance"]))
            for entry in data["rows"]
        ]
    except (KeyError, TypeError) as exc:
        raise SchemaError(
            f"malformed K-example JSON: {type(exc).__name__}: {exc}"
        ) from None
    return KExample(rows, database.registry)


# -- abstraction function -------------------------------------------------------

def abstraction_to_json(function: AbstractionFunction) -> dict:
    return {
        "assignment": [
            {"row": row, "occurrence": occurrence, "target": target}
            for (row, occurrence), target in sorted(function.assignment.items())
        ]
    }


def abstraction_from_json(
    data: dict, tree: AbstractionTree, example: KExample
) -> AbstractionFunction:
    assignment = {
        (entry["row"], entry["occurrence"]): entry["target"]
        for entry in data["assignment"]
    }
    return AbstractionFunction(tree, example, assignment)


# -- results --------------------------------------------------------------------

def result_to_json(
    result: OptimalAbstractionResult, example: Optional[KExample] = None
) -> dict:
    """A self-describing summary of an optimization outcome."""
    out: dict[str, Any] = {
        "found": result.found,
        "privacy": result.privacy,
        "loss_of_information": result.loi if result.found else None,
        "edges_used": result.edges_used,
        "stats": {
            "candidates_scanned": result.stats.candidates_scanned,
            "privacy_computations": result.stats.privacy_computations,
            "elapsed_seconds": result.stats.elapsed_seconds,
        },
    }
    if result.function is not None:
        out["abstraction"] = abstraction_to_json(result.function)
    if result.abstracted is not None:
        out["abstracted_rows"] = [
            {"output": list(row.output), "provenance": list(row.occurrences)}
            for row in result.abstracted.rows
        ]
    return out


def dumps(data: dict) -> str:
    """Stable JSON text (sorted keys, readable indentation)."""
    return json.dumps(data, indent=2, sort_keys=True)
