"""Serialization: JSON/CSV import and export for every core object."""

from repro.io.json_io import (
    abstraction_from_json,
    abstraction_to_json,
    database_from_json,
    database_to_json,
    kexample_from_json,
    kexample_to_json,
    result_to_json,
    tree_from_json,
    tree_to_json,
)
from repro.io.csv_io import database_from_csv_dir, database_to_csv_dir

__all__ = [
    "abstraction_from_json",
    "abstraction_to_json",
    "database_from_csv_dir",
    "database_from_json",
    "database_to_csv_dir",
    "database_to_json",
    "kexample_from_json",
    "kexample_to_json",
    "result_to_json",
    "tree_from_json",
    "tree_to_json",
]
