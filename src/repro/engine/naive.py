"""The naive engine: in-memory index-nested-loop joins.

This is the historical ``repro.query.evaluator`` strategy, unchanged: a
DFS over body atoms in the greedy :func:`repro.engine.base.atom_order`,
probing :class:`repro.db.database.KRelation` indexes.  Its enumeration
order — lexicographic in the tuples' insertion positions along the atom
order — is the canonical derivation order every other engine must
reproduce bit for bit.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, Optional

from repro.db.database import KDatabase
from repro.db.tuples import Tuple
from repro.engine.base import (
    Derivation,
    EvaluationEngine,
    atom_order,
    validate_query,
)
from repro.query.ast import CQ, Constant, Variable


def derivations(query: CQ, database: KDatabase) -> Iterator[Derivation]:
    """Enumerate every derivation of ``query`` over ``database``."""
    validate_query(query, database)
    order = atom_order(query, database)
    assignment: list[Optional[Tuple]] = [None] * len(query.body)
    yield from _search(query, database, order, 0, {}, assignment)


def _search(
    query: CQ,
    database: KDatabase,
    order: list[int],
    depth: int,
    bindings: dict[Variable, Any],
    assignment: list[Optional[Tuple]],
) -> Iterator[Derivation]:
    if depth == len(order):
        yield Derivation(query, tuple(assignment), dict(bindings))  # type: ignore[arg-type]
        return
    atom_index = order[depth]
    atom = query.body[atom_index]
    relation = database.relation(atom.relation)
    fixed: dict[int, Any] = {}
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            fixed[pos] = term.value
        elif term in bindings:
            fixed[pos] = bindings[term]
    for tup in relation.matching(fixed):
        new_vars: list[Variable] = []
        ok = True
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term not in bindings:
                bindings[term] = tup.values[pos]
                new_vars.append(term)
            elif isinstance(term, Variable) and bindings[term] != tup.values[pos]:
                ok = False
                break
        if ok:
            assignment[atom_index] = tup
            yield from _search(query, database, order, depth + 1, bindings, assignment)
            assignment[atom_index] = None
        for var in new_vars:
            del bindings[var]


class NaiveEngine(EvaluationEngine):
    """Thin adapter over the module-level DFS — the default engine."""

    name = "naive"

    def derivations(self, query: CQ, database: KDatabase) -> Iterator[Derivation]:
        return derivations(query, database)
