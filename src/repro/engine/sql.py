"""The SQL engine: compile CQ bodies to SELECT/JOIN/WHERE and run them
on an embedded relational engine (stdlib ``sqlite3`` always, DuckDB when
importable).

Provenance is captured, not approximated: each body atom contributes an
annotation column to the SELECT list, so every result row *is* one
derivation — the monomial is reassembled from the returned annotations
and is identical to what the naive DFS produces.  Bit-identity with the
naive engine rests on two invariants:

* **Order** — the naive DFS enumerates derivations in lexicographic
  order of the matched tuples' insertion positions along
  :func:`repro.engine.base.atom_order`; an ``ORDER BY`` over per-atom
  ``rid`` (insertion position) columns in that same atom order
  reproduces it exactly.
* **Equality** — SQL comparisons run over a canonical text encoding
  (:func:`encode_value`) under which two encodings are equal iff the
  original Python values are ``==`` (notably ``1 == 1.0 == True``), so
  the SQL join semantics coincide with the DFS's dict-based matching.
  Result values are *not* decoded: the original Python objects are
  recovered through the annotation registry, so outputs carry the very
  same objects the naive engine yields.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterator
from typing import Any, Optional

from repro.db.database import KDatabase
from repro.engine.base import (
    Derivation,
    EvaluationEngine,
    atom_order,
    validate_query,
)
from repro.errors import EvaluationError
from repro.query.ast import CQ, Constant, Variable

#: Loaded databases kept per engine (LRU); each holds one table set.
_MAX_LOADED = 4


def encode_value(value: Any) -> str:
    """Canonical text encoding, preserving Python ``==`` classes.

    ``bool`` folds into ``int`` (``True == 1``) and integral floats fold
    into ``int`` (``1.0 == 1``), so every member of a Python equality
    class encodes to the same string and SQL ``=`` agrees with ``==``.
    (NaN breaks this for ``==`` too; the generated datasets contain
    none.)
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        if value.is_integer():
            return f"i:{int(value)}"
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{value}"
    return f"r:{value!r}"


class _LoadedDatabase:
    """One K-database materialized as tables on the shared connection."""

    __slots__ = ("database", "prefix", "tables", "n_tuples")

    def __init__(
        self,
        database: KDatabase,
        prefix: str,
        tables: dict[str, str],
        n_tuples: int,
    ):
        self.database = database
        self.prefix = prefix
        self.tables = tables
        self.n_tuples = n_tuples


class SqlEngine(EvaluationEngine):
    """Evaluate CQs by compiling them to SQL over an embedded engine.

    One engine instance owns one in-memory connection shared across
    threads (the service's worker pool), serialized by an internal lock;
    loaded databases are cached so repeated evaluations over the same
    K-database (the scenario matrix, K-example construction) skip the
    table load.
    """

    def __init__(self, dialect: str = "sqlite"):
        if dialect not in ("sqlite", "duckdb"):
            raise EvaluationError(
                f"unknown SQL dialect {dialect!r} (use 'sqlite' or 'duckdb')"
            )
        self.name = dialect
        self._lock = threading.Lock()
        self._loaded: list[_LoadedDatabase] = []
        self._load_seq = 0
        if dialect == "duckdb":
            try:
                import duckdb
            except ImportError:
                raise EvaluationError(
                    "engine 'duckdb' requires the duckdb package, which is "
                    "not importable in this environment"
                ) from None
            self._conn = duckdb.connect(":memory:")
        else:
            # The service runs jobs on worker threads; the shared
            # connection is guarded by self._lock, not by sqlite's
            # same-thread check.
            self._conn = sqlite3.connect(
                ":memory:", check_same_thread=False
            )

    # -- loading -----------------------------------------------------------

    def _lookup(self, database: KDatabase) -> Optional[_LoadedDatabase]:
        """The cache entry for ``database`` (identity match), if current."""
        for pos, entry in enumerate(self._loaded):
            if entry.database is database:
                if entry.n_tuples != database.total_tuples():
                    # The database mutated since it was loaded; the
                    # tables are stale.  Drop and reload.
                    self._drop(entry)
                    del self._loaded[pos]
                    return None
                # Move to the front (most recently used).
                del self._loaded[pos]
                self._loaded.insert(0, entry)
                return entry
        return None

    def _drop(self, entry: _LoadedDatabase) -> None:
        for table in entry.tables.values():
            self._conn.execute(f"DROP TABLE IF EXISTS {table}")

    def _load(self, database: KDatabase) -> _LoadedDatabase:
        """Materialize ``database`` as ``{prefix}_r{i}`` tables."""
        self._load_seq += 1
        prefix = f"d{self._load_seq}"
        tables: dict[str, str] = {}
        for index, rel_schema in enumerate(database.schema):
            table = f"{prefix}_r{index}"
            tables[rel_schema.name] = table
            columns = ", ".join(
                f"c{pos} TEXT" for pos in range(rel_schema.arity)
            )
            self._conn.execute(
                f"CREATE TABLE {table} ({columns}, ann TEXT, rid INTEGER)"
            )
            rows = [
                (*[encode_value(v) for v in tup.values], tup.annotation, rid)
                for rid, tup in enumerate(database.relation(rel_schema.name))
            ]
            if rows:
                marks = ", ".join("?" for _ in range(rel_schema.arity + 2))
                self._conn.executemany(
                    f"INSERT INTO {table} VALUES ({marks})", rows
                )
            for pos in range(rel_schema.arity):
                self._conn.execute(
                    f"CREATE INDEX {table}_c{pos} ON {table} (c{pos})"
                )
        entry = _LoadedDatabase(
            database, prefix, tables, database.total_tuples()
        )
        self._loaded.insert(0, entry)
        while len(self._loaded) > _MAX_LOADED:
            self._drop(self._loaded.pop())
        return entry

    # -- compilation -------------------------------------------------------

    def _compile(
        self, query: CQ, database: KDatabase, tables: dict[str, str]
    ) -> tuple[str, list[str]]:
        """The (sql, params) pair enumerating derivations in DFS order."""
        order = atom_order(query, database)
        select = ", ".join(f"a{i}.ann" for i in range(len(query.body)))
        from_clause = ", ".join(
            f"{tables[query.body[i].relation]} AS a{i}" for i in order
        )
        conditions: list[str] = []
        params: list[str] = []
        first_seen: dict[Variable, str] = {}
        # Walk atoms in join order so variable-equality chains anchor at
        # the column the DFS binds first (pure hygiene: any consistent
        # chaining is equivalent under transitivity of =).
        for i in order:
            for pos, term in enumerate(query.body[i].terms):
                column = f"a{i}.c{pos}"
                if isinstance(term, Constant):
                    conditions.append(f"{column} = ?")
                    params.append(encode_value(term.value))
                elif term in first_seen:
                    conditions.append(f"{column} = {first_seen[term]}")
                else:
                    first_seen[term] = column
        sql = f"SELECT {select} FROM {from_clause}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += " ORDER BY " + ", ".join(f"a{i}.rid" for i in order)
        return sql, params

    # -- evaluation --------------------------------------------------------

    def derivations(self, query: CQ, database: KDatabase) -> Iterator[Derivation]:
        validate_query(query, database)
        with self._lock:
            entry = self._lookup(database) or self._load(database)
            sql, params = self._compile(query, database, entry.tables)
            rows = self._conn.execute(sql, params).fetchall()
        order = atom_order(query, database)
        for row in rows:
            images = tuple(database.resolve(ann) for ann in row)
            # Rebind variables exactly as the DFS does — first occurrence
            # along the join order wins — so bindings (and therefore
            # head outputs) carry the identical Python objects.
            bindings: dict[Variable, Any] = {}
            for i in order:
                tup = images[i]
                for pos, term in enumerate(query.body[i].terms):
                    if isinstance(term, Variable) and term not in bindings:
                        bindings[term] = tup.values[pos]
            yield Derivation(query, images, bindings)
