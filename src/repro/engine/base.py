"""The evaluation-engine contract and the shared provenance machinery.

An :class:`EvaluationEngine` turns a CQ/UCQ plus a K-database into the
same provenance-annotated rows the paper's Definition 2.2 prescribes:
each output tuple annotated with the sum, over all derivations producing
it, of the product of the annotations in the derivation's image.  The
engine only decides *how* derivations are enumerated — every engine must
yield them in the same canonical order (the naive engine's DFS order) so
downstream artifacts (K-examples, job payloads, snapshot hashes) are
bit-identical regardless of the execution backend.

The pieces every engine shares — :class:`Derivation`, query validation,
the greedy join order, head substitution, and the CQ/UCQ accumulation —
live here; engines only implement :meth:`EvaluationEngine.derivations`.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from typing import Any

from repro.db.database import KDatabase
from repro.db.tuples import Tuple
from repro.errors import EvaluationError
from repro.obs import clock, metrics, spans
from repro.query.ast import CQ, UCQ, Atom, Constant, Variable
from repro.semirings.polynomial import Monomial, Polynomial

OutputRow = tuple  # the values of the head after substitution

#: Process-local per-engine evaluation latency (see docs/OBSERVABILITY.md).
_EVALUATE_SECONDS = metrics.REGISTRY.histogram(
    "repro_engine_evaluate_seconds",
    "Wall time of EvaluationEngine.evaluate calls, by engine.",
    labelnames=("engine",),
)


class Derivation:
    """A single derivation: the atom-to-tuple assignment of one match."""

    __slots__ = ("_query", "_images", "_bindings")

    def __init__(
        self,
        query: CQ,
        images: tuple[Tuple, ...],
        bindings: dict[Variable, Any],
    ):
        self._query = query
        self._images = images
        self._bindings = bindings

    @property
    def query(self) -> CQ:
        return self._query

    @property
    def images(self) -> tuple[Tuple, ...]:
        """The tuple assigned to each body atom, in body order."""
        return self._images

    @property
    def bindings(self) -> dict[Variable, Any]:
        return dict(self._bindings)

    def output(self) -> OutputRow:
        """The head tuple produced by this derivation."""
        return head_values(self._query.head, self._bindings)

    def monomial(self) -> Monomial:
        """The provenance monomial: product of the image annotations."""
        return Monomial(tup.annotation for tup in self._images)

    def __repr__(self) -> str:
        return f"Derivation({self.output()!r} via {self.monomial()!r})"


def validate_query(query: CQ, database: KDatabase) -> None:
    """Check every body atom against the database schema (or raise)."""
    for name in {atom.relation for atom in query.body}:
        if name not in database.schema:
            raise EvaluationError(f"query uses unknown relation {name!r}")
        for atom in query.body:
            if (
                atom.relation == name
                and atom.arity != database.schema.relation(name).arity
            ):
                raise EvaluationError(
                    f"atom {atom!r} does not match arity of relation {name!r}"
                )


def atom_order(query: CQ, database: KDatabase) -> list[int]:
    """Greedy join order: start from the most selective atom, then grow
    the connected frontier, preferring atoms that share bound variables."""
    remaining = set(range(len(query.body)))
    bound_vars: set[Variable] = set()
    order: list[int] = []

    def selectivity(index: int) -> tuple:
        atom = query.body[index]
        n_bound = sum(
            1
            for t in atom.terms
            if isinstance(t, Constant) or t in bound_vars
        )
        size = len(database.relation(atom.relation))
        return (-n_bound, size)

    while remaining:
        best = min(remaining, key=selectivity)
        remaining.discard(best)
        order.append(best)
        bound_vars.update(query.body[best].variables())
    return order


def head_values(head: Atom, bindings: dict[Variable, Any]) -> OutputRow:
    """Substitute ``bindings`` into the head atom."""
    values = []
    for term in head.terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            if term not in bindings:
                raise EvaluationError(f"unbound head variable {term!r}")
            values.append(bindings[term])
    return tuple(values)


class EvaluationEngine(abc.ABC):
    """One way of enumerating the derivations of a CQ over a K-database.

    Subclasses implement :meth:`derivations`; the polynomial accumulation
    is shared so that — given the canonical derivation order — every
    engine produces the *same* result dict, in the same insertion order,
    with the same polynomials.  That identity is what lets the store
    treat the engine as an execution detail (cross-engine cache hits).
    """

    #: The registry name of the engine (``naive``, ``sqlite``, ...).
    name: str = "abstract"

    @abc.abstractmethod
    def derivations(self, query: CQ, database: KDatabase) -> Iterator[Derivation]:
        """Enumerate every derivation of ``query`` over ``database``.

        Must yield derivations in the canonical order: the DFS order of
        the naive engine along :func:`atom_order`.
        """

    def evaluate_cq(
        self, query: CQ, database: KDatabase
    ) -> dict[OutputRow, Polynomial]:
        """Evaluate a CQ, returning each output row's provenance polynomial."""
        result: dict[OutputRow, Polynomial] = {}
        for derivation in self.derivations(query, database):
            row = derivation.output()
            mono = derivation.monomial()
            current = result.get(row, Polynomial.zero())
            result[row] = current + mono
        return result

    def evaluate_ucq(
        self, query: UCQ, database: KDatabase
    ) -> dict[OutputRow, Polynomial]:
        """Evaluate a UCQ: provenance polynomials add across disjuncts."""
        result: dict[OutputRow, Polynomial] = {}
        for cq in query.disjuncts:
            for row, poly in self.evaluate_cq(cq, database).items():
                current = result.get(row, Polynomial.zero())
                result[row] = current + poly
        return result

    def evaluate(
        self, query: "CQ | UCQ", database: KDatabase
    ) -> dict[OutputRow, Polynomial]:
        """Evaluate a CQ or UCQ with provenance tracking.

        Per-engine timing: every call lands in the process-local
        ``repro_engine_evaluate_seconds{engine=...}`` histogram, and —
        when a job tracer is active — accumulates into the job's
        ``engine_evaluate`` span.  Observability only; the result dict
        is bit-identical with or without it.
        """
        start = clock.perf_counter()
        with spans.aggregate("engine_evaluate", engine=self.name):
            if isinstance(query, UCQ):
                result = self.evaluate_ucq(query, database)
            else:
                result = self.evaluate_cq(query, database)
        _EVALUATE_SECONDS.observe(clock.perf_counter() - start, engine=self.name)
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
