"""Engine lookup: names, availability, and shared instances.

The registry hands out *shared* engine instances so the SQL engines'
loaded-database caches stay warm across call sites (the scenario
materializer evaluates many queries over the same databases).  Engine
choice is an execution detail — the store strips it from content hashes
— so sharing instances is safe: every engine produces bit-identical
results by contract.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.base import EvaluationEngine
from repro.engine.naive import NaiveEngine
from repro.errors import EvaluationError

#: Every engine name the CLI and configs accept, in display order.
ENGINE_NAMES = ("naive", "sqlite", "duckdb")

#: The engine used when nothing is configured.
DEFAULT_ENGINE = "naive"

_instances: dict[str, EvaluationEngine] = {}


def duckdb_available() -> bool:
    """Whether the optional DuckDB backend is importable."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


def available_engines() -> dict[str, bool]:
    """Engine name -> availability, in :data:`ENGINE_NAMES` order."""
    return {
        "naive": True,
        "sqlite": True,
        "duckdb": duckdb_available(),
    }


def get_engine(name: str = DEFAULT_ENGINE) -> EvaluationEngine:
    """The shared engine instance for ``name`` (or raise cleanly).

    Unknown names and unavailable optional backends both raise
    :class:`~repro.errors.EvaluationError` (a :class:`ReproError`), so
    the CLI reports them as ``error:`` + exit 2 instead of a traceback.
    """
    if name not in ENGINE_NAMES:
        raise EvaluationError(
            f"unknown engine {name!r} "
            f"(known engines: {', '.join(ENGINE_NAMES)})"
        )
    if name == "duckdb" and not duckdb_available():
        raise EvaluationError(
            "engine 'duckdb' requested but the duckdb module is not "
            "importable; install it (pip install duckdb) or use "
            "--engine sqlite"
        )
    engine = _instances.get(name)
    if engine is None:
        if name == "naive":
            engine = NaiveEngine()
        else:
            from repro.engine.sql import SqlEngine

            engine = SqlEngine(dialect=name)
        _instances[name] = engine
    return engine


def resolve_engine(
    engine: Optional[Union[str, EvaluationEngine]] = None,
) -> EvaluationEngine:
    """Normalize an engine handle: ``None`` -> default, names -> lookup."""
    if engine is None:
        return get_engine(DEFAULT_ENGINE)
    if isinstance(engine, EvaluationEngine):
        return engine
    return get_engine(engine)
