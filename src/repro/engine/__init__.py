"""Pluggable relational-engine layer (the execution tier of evaluation).

Evaluation strategy — the naive in-memory DFS, or compilation to SQL on
an embedded engine — is an *execution detail*: every engine yields the
same derivations in the same canonical order, so K-examples, job
payloads, and snapshot hashes are bit-identical across engines (and the
content-addressed result cache gives cross-engine hits).
"""

from repro.engine.base import (
    Derivation,
    EvaluationEngine,
    OutputRow,
    atom_order,
    head_values,
    validate_query,
)
from repro.engine.naive import NaiveEngine, derivations
from repro.engine.sql import SqlEngine, encode_value
from repro.engine.registry import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    available_engines,
    duckdb_available,
    get_engine,
    resolve_engine,
)

__all__ = [
    "DEFAULT_ENGINE",
    "Derivation",
    "ENGINE_NAMES",
    "EvaluationEngine",
    "NaiveEngine",
    "OutputRow",
    "SqlEngine",
    "encode_value",
    "atom_order",
    "available_engines",
    "derivations",
    "duckdb_available",
    "get_engine",
    "head_values",
    "resolve_engine",
    "validate_query",
]
