"""repro — provenance abstraction for query privacy.

A from-scratch reproduction of "On Optimizing the Trade-off between Privacy
and Utility in Data Provenance" (Deutch, Frankenthal, Gilad, Moskovitch,
SIGMOD 2021): provenance semirings, K-examples, abstraction trees, the
privacy/LOI trade-off model, and the optimal-abstraction algorithms,
together with TPC-H / IMDB-style workloads and the paper's experiment
suite.

Quickstart::

    from repro import (
        KDatabase, Schema, parse_cq, build_kexample,
        tree_from_categories, find_optimal_abstraction,
    )
"""

from repro.abstraction import (
    AbstractionFunction,
    AbstractionTree,
    ConcretizationEngine,
    balanced_tree,
    tree_by_attributes,
    tree_from_categories,
    tree_over_annotations,
)
from repro.batch import (
    BatchJob,
    BatchJobResult,
    BatchOptimizer,
    BatchResult,
    BatchStats,
    run_batch,
)
from repro.core import (
    ConsistencyConfig,
    ExplicitDistribution,
    IncrementalEvaluator,
    LeafWeightDistribution,
    OptimalAbstractionResult,
    OptimizerConfig,
    OptimizerStats,
    PrivacyComputer,
    PrivacyConfig,
    UniformDistribution,
    brute_force_optimal_abstraction,
    compression_baseline,
    consistent_queries,
    find_dual_optimal_abstraction,
    find_optimal_abstraction,
    loss_of_information,
)
from repro.core.lineage import complete_lineage, kexamples_from_lineage
from repro.core.refine import RefinementResult, refine_per_occurrence
from repro.db import AnnotationRegistry, KDatabase, KRelation, RelationSchema, Schema, Tuple
from repro.errors import (
    AbstractionError,
    EvaluationError,
    OptimizationError,
    ParseError,
    ReproError,
    SchemaError,
    SemiringError,
)
from repro.provenance import (
    AbstractedKExample,
    KExample,
    KExampleRow,
    build_aggregate_example,
    build_kexample,
)
from repro.query import (
    CQ,
    UCQ,
    Atom,
    Constant,
    Variable,
    evaluate,
    is_connected,
    is_contained_in,
    is_equivalent,
    minimize_cq,
    parse_cq,
    parse_ucq,
)
from repro.render import render_kexample, render_query, render_result, render_tree
from repro.semirings import (
    AggregateExpression,
    AggregateOp,
    AggregateTerm,
    Monomial,
    Polynomial,
    SemiringName,
    coarsen,
    get_semiring,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractedKExample",
    "AbstractionError",
    "AbstractionFunction",
    "AbstractionTree",
    "AggregateExpression",
    "AggregateOp",
    "AggregateTerm",
    "AnnotationRegistry",
    "Atom",
    "BatchJob",
    "BatchJobResult",
    "BatchOptimizer",
    "BatchResult",
    "BatchStats",
    "CQ",
    "ConcretizationEngine",
    "Constant",
    "ConsistencyConfig",
    "EvaluationError",
    "ExplicitDistribution",
    "IncrementalEvaluator",
    "KDatabase",
    "KExample",
    "KExampleRow",
    "KRelation",
    "LeafWeightDistribution",
    "Monomial",
    "OptimalAbstractionResult",
    "OptimizationError",
    "OptimizerConfig",
    "OptimizerStats",
    "ParseError",
    "Polynomial",
    "PrivacyComputer",
    "PrivacyConfig",
    "RelationSchema",
    "ReproError",
    "Schema",
    "SchemaError",
    "SemiringError",
    "SemiringName",
    "Tuple",
    "UCQ",
    "UniformDistribution",
    "Variable",
    "RefinementResult",
    "balanced_tree",
    "brute_force_optimal_abstraction",
    "build_aggregate_example",
    "build_kexample",
    "coarsen",
    "complete_lineage",
    "compression_baseline",
    "consistent_queries",
    "evaluate",
    "find_dual_optimal_abstraction",
    "find_optimal_abstraction",
    "get_semiring",
    "is_connected",
    "is_contained_in",
    "is_equivalent",
    "kexamples_from_lineage",
    "loss_of_information",
    "minimize_cq",
    "parse_cq",
    "parse_ucq",
    "refine_per_occurrence",
    "run_batch",
    "render_kexample",
    "render_query",
    "render_result",
    "render_tree",
    "tree_by_attributes",
    "tree_from_categories",
    "tree_over_annotations",
]
