"""Privacy of an abstracted K-example: Algorithm 1 of the paper.

The privacy of ``Ex~`` is the number of distinct CIM queries — consistent,
connected, inclusion-minimal — across all concretizations (Definition
3.12).  :class:`PrivacyComputer` implements Algorithm 1 with its four
optimizations, each independently switchable for the Figure 19 ablation:

* row-by-row computation with ``GoodConc`` propagation,
* filtering disconnected concretizations,
* caching consistent queries per concretization prefix,
* caching concretization connectivity.

All of Algorithm 1's caches are *threshold-independent*: a row's
concretization options, a prefix's consistent queries, and a row's
connectivity verdict depend only on the (tree, registry) pair and the
consistency knobs — never on the privacy threshold ``k`` or on which
candidate abstraction is being evaluated.  :class:`PrivacySession` holds
them in one shareable object so every ``compute()`` call over the same
context reuses them: across the candidates of one search (candidates
popped from the frontier differ in one variable level, so untouched rows'
option sets are reusable verbatim), and across the searches of a
threshold sweep or batch job group.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.tree import AbstractionTree
from repro.core.consistency import ConsistencyConfig, consistent_queries
from repro.db.database import AnnotationRegistry
from repro.provenance.kexample import AbstractedKExample, KExample, KExampleRow
from repro.query.ast import CQ
from repro.query.containment import is_strictly_contained_in
from repro.errors import OptimizationError
from repro.query.join_graph import is_connected


@dataclass(frozen=True)
class PrivacyConfig:
    """Optimization switches for Algorithm 1 (Section 4.1).

    ``max_concretizations`` is a *per-site* budget, not a global total:
    it bounds (a) the number of concretization options of any single row
    and (b) the number of live concrete prefixes after fanning out any
    single row of the row-by-row scan (equivalently, the size of the full
    product in the monolithic path).  Both sites use the same boundary —
    enumeration aborts as soon as the count *exceeds* the budget, so
    exactly ``max_concretizations`` items are allowed at each site.  The
    paper's settings stay far below the default.
    """

    row_by_row: bool = True
    connectivity_filter: bool = True
    cache_queries: bool = True
    cache_connectivity: bool = True
    consistency: ConsistencyConfig = field(default_factory=ConsistencyConfig)
    max_concretizations: int = 200_000

    def session_key(self) -> tuple:
        """The config fields a :class:`PrivacySession`'s caches depend on.

        Computers may share a session iff these match: the consistency
        knobs shape the prefix-query cache's contents, the connectivity
        filter shapes the row-option sets, the connectivity-cache switch
        shapes the shared engine, and the concretization budget decides
        where row enumeration aborts.  ``row_by_row`` and ``cache_queries``
        are deliberately absent — they change which caches are *consulted*,
        never what a cached entry means.
        """
        return (
            self.consistency,
            self.connectivity_filter,
            self.cache_connectivity,
            self.max_concretizations,
        )


@dataclass
class PrivacyStats:
    """Counters for the ablation study."""

    concretizations_seen: int = 0
    concretizations_pruned_disconnected: int = 0
    query_cache_hits: int = 0
    query_cache_misses: int = 0
    consistency_calls: int = 0
    # Session-level reuse: row-option sets served from / added to the
    # shared per-(output, occurrences) cache.  Work counters above are
    # only charged on misses — a hit does no enumeration or filtering.
    row_option_cache_hits: int = 0
    row_option_cache_misses: int = 0
    # Pairwise strict-containment verdicts (the homomorphism searches
    # behind GetMinimalQueries — the dominant privacy cost) served from
    # the session vs computed fresh, and whole minimal-set memo hits.
    containment_cache_hits: int = 0
    containment_cache_misses: int = 0
    minimal_set_cache_hits: int = 0
    minimal_set_cache_misses: int = 0


class PrivacySession:
    """Shareable caches for Algorithm 1 over one (tree, registry) context.

    One session may back any number of :class:`PrivacyComputer` instances
    — sequentially or interleaved — as long as they agree on the
    cache-relevant config fields (:meth:`PrivacyConfig.session_key`).  It
    holds:

    * ``row_option_cache`` — each row signature's concretization options
      (post connectivity filter), keyed by ``(output, occurrences)``,
    * ``query_cache`` — consistent queries per concretization prefix,
    * ``engine`` — the :class:`ConcretizationEngine` with its memoized
      per-row connectivity verdicts,
    * ``containment_cache`` — pairwise strict-containment verdicts (each
      one a homomorphism search, the dominant cost of GetMinimalQueries),
      keyed by the two queries' canonical forms,
    * ``connected_query_cache`` — per-query join-graph connectivity,
    * ``minimal_set_cache`` — the inclusion-minimal subset of a whole
      connected-query set, keyed by the set of canonical forms.

    Every entry is threshold-independent (query-level facts don't depend
    on any config at all), so a session warmed by one search is valid for
    any other threshold over the same context; results are bit-identical
    with or without sharing (caches return exactly what recomputation
    would produce).
    """

    def __init__(
        self,
        tree: AbstractionTree,
        registry: AnnotationRegistry,
        config: PrivacyConfig | None = None,
    ):
        config = config or PrivacyConfig()
        self._tree = tree
        self._registry = registry
        self._key = config.session_key()
        self.engine = ConcretizationEngine(
            tree, registry, use_connectivity_cache=config.cache_connectivity
        )
        self.query_cache: dict[tuple, frozenset[CQ]] = {}
        self.row_option_cache: dict[tuple, list[KExampleRow]] = {}
        self.containment_cache: dict[tuple, bool] = {}
        self.connected_query_cache: dict[tuple, bool] = {}
        self.minimal_set_cache: dict[frozenset, frozenset] = {}
        #: How many computers have attached; > 1 means the session was reused.
        self.computers_attached = 0

    @property
    def tree(self) -> AbstractionTree:
        return self._tree

    @property
    def registry(self) -> AnnotationRegistry:
        return self._registry

    def compatible_with(
        self,
        tree: AbstractionTree,
        registry: AnnotationRegistry,
        config: PrivacyConfig,
    ) -> bool:
        """Whether a computer over (tree, registry, config) may attach."""
        return (
            tree is self._tree
            and registry is self._registry
            and config.session_key() == self._key
        )

    def cache_sizes(self) -> dict[str, int]:
        """Current entry counts, for diagnostics and tests."""
        return {
            "row_options": len(self.row_option_cache),
            "prefix_queries": len(self.query_cache),
            "connectivity": self.engine.connectivity_cache_size,
            "containments": len(self.containment_cache),
            "connected_queries": len(self.connected_query_cache),
            "minimal_sets": len(self.minimal_set_cache),
        }


class PrivacyComputer:
    """Computes the privacy of abstracted K-examples over one tree.

    ``session`` shares Algorithm 1's caches with other computers over the
    same (tree, registry); omitted, the computer gets a private session,
    which still pools work across every ``compute()`` call it serves.
    """

    def __init__(
        self,
        tree: AbstractionTree,
        registry: AnnotationRegistry,
        config: PrivacyConfig | None = None,
        session: PrivacySession | None = None,
    ):
        self._tree = tree
        self._registry = registry
        self._config = config or PrivacyConfig()
        if session is None:
            session = PrivacySession(tree, registry, self._config)
        elif not session.compatible_with(tree, registry, self._config):
            raise OptimizationError(
                "privacy session is incompatible with this computer "
                "(different tree, registry, or cache-relevant config)"
            )
        self._session = session
        session.computers_attached += 1
        self._engine = session.engine
        self._query_cache = session.query_cache
        self._row_option_cache = session.row_option_cache
        self._containment_cache = session.containment_cache
        self._connected_cache = session.connected_query_cache
        self._minimal_set_cache = session.minimal_set_cache
        self.stats = PrivacyStats()

    @property
    def config(self) -> PrivacyConfig:
        return self._config

    @property
    def engine(self) -> ConcretizationEngine:
        return self._engine

    @property
    def session(self) -> PrivacySession:
        return self._session

    def compute(self, abstracted: AbstractedKExample, threshold: int) -> int:
        """Algorithm 1: the privacy of ``abstracted`` or -1 if below ``threshold``."""
        if self._config.row_by_row:
            return self._compute_row_by_row(abstracted, threshold)
        return self._compute_monolithic(abstracted, threshold)

    def privacy(self, abstracted: AbstractedKExample) -> int:
        """The exact privacy (no threshold early-exit)."""
        result = self.compute(abstracted, threshold=0)
        return max(result, 0)

    def cim_queries(self, abstracted: AbstractedKExample) -> frozenset[CQ]:
        """The CIM queries w.r.t. ``abstracted`` (Definition 3.10)."""
        connected = self._connected_queries_full(abstracted)
        keys = self._minimal_keys(connected)
        return frozenset(connected[k] for k in keys)

    # -- Algorithm 1 proper -------------------------------------------------

    def _compute_row_by_row(
        self, abstracted: AbstractedKExample, threshold: int
    ) -> int:
        rows = abstracted.rows
        first_row_options = self._row_options(rows[0])
        if not first_row_options:
            return -1 if threshold > 0 else 0

        # GoodConc: concrete prefixes that admit a consistent connected query.
        good_prefixes: list[tuple[KExampleRow, ...]] = [
            (row,) for row in first_row_options
        ]

        if len(rows) == 1:
            queries = self._queries_for_prefixes(good_prefixes)[0]
            return self._finish(queries, threshold)

        for index in range(1, len(rows)):
            next_options = self._row_options(rows[index])
            if not next_options:
                return -1 if threshold > 0 else 0
            prefixes = []
            for prefix in good_prefixes:
                for option in next_options:
                    prefixes.append(prefix + (option,))
                    if len(prefixes) > self._config.max_concretizations:
                        raise OptimizationError(
                            "concretization budget exhausted; tighten the "
                            "abstraction or raise max_concretizations"
                        )
            queries, prefix_of_query = self._queries_for_prefixes(prefixes)

            # The connected-query count only shrinks as rows are added
            # (each new row constrains the consistent set), so falling
            # below the threshold here decides the full example too.
            connected = {
                key: q for key, q in queries.items()
                if self._query_connected(q)
            }
            if len(connected) < threshold:
                return -1

            if index == len(rows) - 1:
                # Inclusion-minimal counts are NOT monotone in the rows
                # (a later row can kill a small query, promoting the
                # larger ones it dominated), so the CIM gate may only
                # fire on the complete example.
                return self._gated_cim_count(connected, threshold)

            good_set: set[tuple[KExampleRow, ...]] = set()
            for key in connected:
                good_set.update(prefix_of_query[key])
            good_prefixes = sorted(
                good_set, key=lambda p: tuple(r.occurrences for r in p)
            )

        raise AssertionError("unreachable")

    def _compute_monolithic(
        self, abstracted: AbstractedKExample, threshold: int
    ) -> int:
        connected = self._connected_queries_full(abstracted)
        return self._gated_cim_count(connected, threshold)

    def _connected_queries_full(
        self, abstracted: AbstractedKExample
    ) -> dict[tuple, CQ]:
        """The connected consistent queries, keyed by canonical form."""
        per_row_options = [self._row_options(row) for row in abstracted.rows]
        if any(not options for options in per_row_options):
            return {}
        out: dict[tuple, CQ] = {}
        count = 0
        for combo in itertools.product(*per_row_options):
            count += 1
            if count > self._config.max_concretizations:
                raise OptimizationError(
                    "concretization budget exhausted; tighten the "
                    "abstraction or raise max_concretizations"
                )
            for query in self._queries_of_prefix(combo):
                if self._query_connected(query):
                    out.setdefault(query.canonical(), query)
        return out

    # -- helpers --------------------------------------------------------------

    def _row_options(self, row: KExampleRow) -> list[KExampleRow]:
        key = (row.output, row.occurrences)
        cached = self._row_option_cache.get(key)
        if cached is not None:
            self.stats.row_option_cache_hits += 1
            return cached
        self.stats.row_option_cache_misses += 1
        options: list[KExampleRow] = []
        for option in self._engine.concretize_row(row):
            options.append(option)
            if len(options) > self._config.max_concretizations:
                raise OptimizationError(
                    "per-row concretization budget exhausted; tighten the "
                    "abstraction or raise max_concretizations"
                )
        self.stats.concretizations_seen += len(options)
        if self._config.connectivity_filter:
            kept = [r for r in options if self._engine.row_connected(r)]
            self.stats.concretizations_pruned_disconnected += (
                len(options) - len(kept)
            )
            options = kept
        self._row_option_cache[key] = options
        return options

    def _queries_for_prefixes(
        self, prefixes: list[tuple[KExampleRow, ...]]
    ) -> tuple[dict[tuple, CQ], dict[tuple, list[tuple[KExampleRow, ...]]]]:
        """Consistent queries of each prefix, plus the inverse map."""
        queries: dict[tuple, CQ] = {}
        prefix_of_query: dict[tuple, list[tuple[KExampleRow, ...]]] = {}
        for prefix in prefixes:
            for query in self._queries_of_prefix(prefix):
                key = query.canonical()
                queries.setdefault(key, query)
                prefix_of_query.setdefault(key, []).append(prefix)
        return queries, prefix_of_query

    def _queries_of_prefix(
        self, prefix: tuple[KExampleRow, ...]
    ) -> frozenset[CQ]:
        key = tuple((row.output, row.occurrences) for row in prefix)
        if self._config.cache_queries:
            cached = self._query_cache.get(key)
            if cached is not None:
                self.stats.query_cache_hits += 1
                return cached
        self.stats.consistency_calls += 1
        example = KExample(prefix, self._registry)
        result = consistent_queries(example, self._config.consistency)
        if self._config.cache_queries:
            self.stats.query_cache_misses += 1
            self._query_cache[key] = result
        return result

    def _finish(self, queries: dict[tuple, CQ], threshold: int) -> int:
        connected = {
            key: q for key, q in queries.items() if self._query_connected(q)
        }
        return self._gated_cim_count(connected, threshold)

    def _gated_cim_count(self, connected: dict[tuple, CQ], threshold: int) -> int:
        """Both gates of Algorithm 1's tail, shared by every compute path:
        connected count first (cheap), CIM count second (homomorphisms)."""
        if len(connected) < threshold:
            return -1
        cim = len(self._minimal_keys(connected))
        return cim if cim >= threshold else -1

    # -- session-cached query-level facts -----------------------------------
    #
    # Connectivity, pairwise containment, and inclusion-minimality are
    # renaming-invariant properties of the queries alone (no config, no
    # threshold), so their verdicts are cached in the session keyed by
    # canonical forms and shared across candidates, thresholds, and jobs.

    def _query_connected(self, query: CQ) -> bool:
        key = query.canonical()
        cached = self._connected_cache.get(key)
        if cached is None:
            cached = is_connected(query)
            self._connected_cache[key] = cached
        return cached

    def _strictly_contained(self, a: CQ, b: CQ) -> bool:
        key = (a.canonical(), b.canonical())
        cached = self._containment_cache.get(key)
        if cached is None:
            self.stats.containment_cache_misses += 1
            cached = is_strictly_contained_in(a, b)
            self._containment_cache[key] = cached
        else:
            self.stats.containment_cache_hits += 1
        return cached

    def _minimal_keys(self, queries: dict[tuple, CQ]) -> frozenset:
        """Canonical keys of the inclusion-minimal queries of the set.

        Count-equivalent to :func:`_minimal_queries` — the dict is keyed
        by canonical form, so its values are pairwise non-equal and the
        minimality scan visits the same queries in the same order.
        """
        set_key = frozenset(queries)
        cached = self._minimal_set_cache.get(set_key)
        if cached is not None:
            self.stats.minimal_set_cache_hits += 1
            return cached
        self.stats.minimal_set_cache_misses += 1
        ordered = sorted(queries.values(), key=lambda q: (len(q.body), repr(q)))
        minimal = [
            query for query in ordered
            if not any(self._strictly_contained(other, query)
                       for other in ordered if other is not query)
        ]
        result = frozenset(query.canonical() for query in minimal)
        self._minimal_set_cache[set_key] = result
        return result


def _minimal_queries(queries: frozenset[CQ]) -> frozenset[CQ]:
    """The inclusion-minimal queries of a set (GetMinimalQueries).

    ``q`` survives iff no other query in the set is strictly contained in
    it.  Reference implementation: the computer's cached
    :meth:`PrivacyComputer._minimal_keys` must always agree with it
    (pinned by ``tests/test_privacy.py``).
    """
    ordered = sorted(queries, key=lambda q: (len(q.body), repr(q)))
    minimal: list[CQ] = []
    for query in ordered:
        if not any(is_strictly_contained_in(other, query) for other in ordered
                   if other is not query):
            minimal.append(query)
    return frozenset(minimal)
