"""Privacy of an abstracted K-example: Algorithm 1 of the paper.

The privacy of ``Ex~`` is the number of distinct CIM queries — consistent,
connected, inclusion-minimal — across all concretizations (Definition
3.12).  :class:`PrivacyComputer` implements Algorithm 1 with its four
optimizations, each independently switchable for the Figure 19 ablation:

* row-by-row computation with ``GoodConc`` propagation,
* filtering disconnected concretizations,
* caching consistent queries per concretization prefix,
* caching concretization connectivity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.tree import AbstractionTree
from repro.core.consistency import ConsistencyConfig, consistent_queries
from repro.db.database import AnnotationRegistry
from repro.provenance.kexample import AbstractedKExample, KExample, KExampleRow
from repro.query.ast import CQ
from repro.query.containment import is_strictly_contained_in
from repro.errors import OptimizationError
from repro.query.join_graph import is_connected


@dataclass(frozen=True)
class PrivacyConfig:
    """Optimization switches for Algorithm 1 (Section 4.1)."""

    row_by_row: bool = True
    connectivity_filter: bool = True
    cache_queries: bool = True
    cache_connectivity: bool = True
    consistency: ConsistencyConfig = field(default_factory=ConsistencyConfig)
    # Safety valve: stop if a single abstraction spawns this many
    # concretization prefixes (the paper's settings stay far below).
    max_concretizations: int = 200_000


@dataclass
class PrivacyStats:
    """Counters for the ablation study."""

    concretizations_seen: int = 0
    concretizations_pruned_disconnected: int = 0
    query_cache_hits: int = 0
    query_cache_misses: int = 0
    consistency_calls: int = 0


class PrivacyComputer:
    """Computes the privacy of abstracted K-examples over one tree."""

    def __init__(
        self,
        tree: AbstractionTree,
        registry: AnnotationRegistry,
        config: PrivacyConfig | None = None,
    ):
        self._tree = tree
        self._registry = registry
        self._config = config or PrivacyConfig()
        self._engine = ConcretizationEngine(
            tree, registry, use_connectivity_cache=self._config.cache_connectivity
        )
        self._query_cache: dict[tuple, frozenset[CQ]] = {}
        self.stats = PrivacyStats()

    @property
    def config(self) -> PrivacyConfig:
        return self._config

    @property
    def engine(self) -> ConcretizationEngine:
        return self._engine

    def compute(self, abstracted: AbstractedKExample, threshold: int) -> int:
        """Algorithm 1: the privacy of ``abstracted`` or -1 if below ``threshold``."""
        if self._config.row_by_row:
            return self._compute_row_by_row(abstracted, threshold)
        return self._compute_monolithic(abstracted, threshold)

    def privacy(self, abstracted: AbstractedKExample) -> int:
        """The exact privacy (no threshold early-exit)."""
        result = self.compute(abstracted, threshold=0)
        return max(result, 0)

    def cim_queries(self, abstracted: AbstractedKExample) -> frozenset[CQ]:
        """The CIM queries w.r.t. ``abstracted`` (Definition 3.10)."""
        connected = self._connected_queries_full(abstracted)
        return _minimal_queries(connected)

    # -- Algorithm 1 proper -------------------------------------------------

    def _compute_row_by_row(
        self, abstracted: AbstractedKExample, threshold: int
    ) -> int:
        rows = abstracted.rows
        first_row_options = self._row_options(rows[0])
        if not first_row_options:
            return -1 if threshold > 0 else 0

        # GoodConc: concrete prefixes that admit a consistent connected query.
        good_prefixes: list[tuple[KExampleRow, ...]] = [
            (row,) for row in first_row_options
        ]
        queries: dict[tuple, CQ] = {}

        if len(rows) == 1:
            queries = self._queries_for_prefixes(good_prefixes)[0]
            return self._finish(queries, threshold)

        for index in range(1, len(rows)):
            next_options = self._row_options(rows[index])
            if not next_options:
                return -1 if threshold > 0 else 0
            prefixes = []
            for prefix in good_prefixes:
                for option in next_options:
                    prefixes.append(prefix + (option,))
                    if len(prefixes) > self._config.max_concretizations:
                        raise OptimizationError(
                            "concretization budget exhausted; tighten the "
                            "abstraction or raise max_concretizations"
                        )
            queries, prefix_of_query = self._queries_for_prefixes(prefixes)

            connected = {
                key: q for key, q in queries.items() if is_connected(q)
            }
            if len(connected) < threshold:
                return -1

            good_set: set[tuple[KExampleRow, ...]] = set()
            for key in connected:
                good_set.update(prefix_of_query[key])
            good_prefixes = sorted(
                good_set, key=lambda p: tuple(r.occurrences for r in p)
            )

            cim = _minimal_queries(frozenset(connected.values()))
            if len(cim) < threshold:
                return -1
            if index == len(rows) - 1:
                return len(cim)

        raise AssertionError("unreachable")

    def _compute_monolithic(
        self, abstracted: AbstractedKExample, threshold: int
    ) -> int:
        connected = self._connected_queries_full(abstracted)
        if len(connected) < threshold:
            return -1
        cim = _minimal_queries(connected)
        return len(cim) if len(cim) >= threshold else -1

    def _connected_queries_full(
        self, abstracted: AbstractedKExample
    ) -> frozenset[CQ]:
        per_row_options = [self._row_options(row) for row in abstracted.rows]
        if any(not options for options in per_row_options):
            return frozenset()
        out: dict[tuple, CQ] = {}
        count = 0
        for combo in itertools.product(*per_row_options):
            count += 1
            if count > self._config.max_concretizations:
                raise OptimizationError(
                    "concretization budget exhausted; tighten the "
                    "abstraction or raise max_concretizations"
                )
            for query in self._queries_of_prefix(combo):
                if is_connected(query):
                    out.setdefault(query.canonical(), query)
        return frozenset(out.values())

    # -- helpers --------------------------------------------------------------

    def _row_options(self, row: KExampleRow) -> list[KExampleRow]:
        options = []
        for count, option in enumerate(self._engine.concretize_row(row)):
            if count >= self._config.max_concretizations:
                raise OptimizationError(
                    "per-row concretization budget exhausted; tighten the "
                    "abstraction or raise max_concretizations"
                )
            options.append(option)
        self.stats.concretizations_seen += len(options)
        if self._config.connectivity_filter:
            kept = [r for r in options if self._engine.row_connected(r)]
            self.stats.concretizations_pruned_disconnected += (
                len(options) - len(kept)
            )
            return kept
        return options

    def _queries_for_prefixes(
        self, prefixes: list[tuple[KExampleRow, ...]]
    ) -> tuple[dict[tuple, CQ], dict[tuple, list[tuple[KExampleRow, ...]]]]:
        """Consistent queries of each prefix, plus the inverse map."""
        queries: dict[tuple, CQ] = {}
        prefix_of_query: dict[tuple, list[tuple[KExampleRow, ...]]] = {}
        for prefix in prefixes:
            for query in self._queries_of_prefix(prefix):
                key = query.canonical()
                queries.setdefault(key, query)
                prefix_of_query.setdefault(key, []).append(prefix)
        return queries, prefix_of_query

    def _queries_of_prefix(
        self, prefix: tuple[KExampleRow, ...]
    ) -> frozenset[CQ]:
        key = tuple((row.output, row.occurrences) for row in prefix)
        if self._config.cache_queries:
            cached = self._query_cache.get(key)
            if cached is not None:
                self.stats.query_cache_hits += 1
                return cached
        self.stats.consistency_calls += 1
        example = KExample(prefix, self._registry)
        result = consistent_queries(example, self._config.consistency)
        if self._config.cache_queries:
            self.stats.query_cache_misses += 1
            self._query_cache[key] = result
        return result

    def _finish(self, queries: dict[tuple, CQ], threshold: int) -> int:
        connected = frozenset(q for q in queries.values() if is_connected(q))
        if len(connected) < threshold:
            return -1
        cim = _minimal_queries(connected)
        return len(cim) if len(cim) >= threshold else -1


def _minimal_queries(queries: frozenset[CQ]) -> frozenset[CQ]:
    """The inclusion-minimal queries of a set (GetMinimalQueries).

    ``q`` survives iff no other query in the set is strictly contained in it.
    """
    ordered = sorted(queries, key=lambda q: (len(q.body), repr(q)))
    minimal: list[CQ] = []
    for query in ordered:
        if not any(is_strictly_contained_in(other, query) for other in ordered
                   if other is not query):
            minimal.append(query)
    return frozenset(minimal)
