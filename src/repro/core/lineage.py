"""Privacy analysis under the ``Lin(X)`` semiring (Section 4, "The Lin(X)
semiring").

``Lin(X)`` flattens an output's provenance to the *set* of contributing
annotations, and its natural order is set containment — so a published
lineage may be any subset of the true one.  The paper proposes handling
this by *completing* partial lineage "in the most reasonable way" (citing
Gilad & Moskovitch, CIKM'20) before running the standard pipeline; it
defers the implementation to future work.  This module provides that
completion:

:func:`complete_lineage` searches the database for minimal connected tuple
multisets that (a) contain the published lineage, (b) can derive the
output row, and (c) stay within a size budget.  Each completion is a
candidate provenance monomial; packaging them as K-example rows lets
Algorithm 1 measure privacy exactly as in the N[X] case.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.db.database import KDatabase
from repro.db.tuples import Tuple
from repro.provenance.kexample import KExample, KExampleRow
from repro.semirings.polynomial import Monomial


def complete_lineage(
    output: tuple,
    lineage: Iterable[str],
    database: KDatabase,
    max_extra_tuples: int = 2,
    max_completions: int = 50,
) -> list[Monomial]:
    """Candidate full provenance monomials for a partial ``Lin(X)`` row.

    Starting from the published annotations, grows the tuple set with up to
    ``max_extra_tuples`` database tuples so that the result is *connected*
    (tuples chain through shared constants) and *covers the output* (every
    output value appears in some tuple).  Returns the inclusion-minimal
    completions, smallest first.
    """
    base = [database.resolve(ann) for ann in dict.fromkeys(lineage)]
    completions: list[Monomial] = []
    seen: set[frozenset[str]] = set()

    def covers_output(tuples: list[Tuple]) -> bool:
        values = set()
        for tup in tuples:
            values.update(tup.values)
        return all(v in values for v in output)

    def connected(tuples: list[Tuple]) -> bool:
        if len(tuples) <= 1:
            return True
        remaining = list(range(1, len(tuples)))
        frontier_values = set(tuples[0].values)
        changed = True
        while changed and remaining:
            changed = False
            for index in list(remaining):
                if frontier_values & set(tuples[index].values):
                    frontier_values.update(tuples[index].values)
                    remaining.remove(index)
                    changed = True
        return not remaining

    def candidates_for(tuples: list[Tuple]) -> Iterator[Tuple]:
        """Tuples sharing a value with the current set (join-reachable)."""
        values = set()
        for tup in tuples:
            values.update(tup.values)
        present = {t.annotation for t in tuples}
        for tup in database.tuples():
            if tup.annotation in present:
                continue
            if set(tup.values) & values:
                yield tup

    def search(tuples: list[Tuple], budget: int) -> None:
        if len(completions) >= max_completions:
            return
        key = frozenset(t.annotation for t in tuples)
        if key in seen:
            return
        seen.add(key)
        if connected(tuples) and covers_output(tuples):
            monomial = Monomial(t.annotation for t in tuples)
            if not any(existing.divides(monomial) for existing in completions):
                completions.append(monomial)
            return  # minimal: no need to grow further on this branch
        if budget == 0:
            return
        for candidate in candidates_for(tuples):
            search(tuples + [candidate], budget - 1)
            if len(completions) >= max_completions:
                return

    search(base, max_extra_tuples)
    completions.sort(key=lambda m: (m.degree(), m.items))
    return completions


def kexamples_from_lineage(
    rows: list[tuple[tuple, Iterable[str]]],
    database: KDatabase,
    max_extra_tuples: int = 2,
    max_examples: int = 20,
) -> list[KExample]:
    """All K-examples obtainable by completing each row's lineage.

    ``rows`` is ``[(output, lineage annotations), ...]``.  The cross
    product of per-row completions is truncated at ``max_examples``.
    """
    per_row: list[list[KExampleRow]] = []
    for output, lineage in rows:
        monomials = complete_lineage(
            output, lineage, database, max_extra_tuples=max_extra_tuples
        )
        if not monomials:
            return []
        per_row.append([KExampleRow(output, m) for m in monomials])

    examples: list[KExample] = []

    def build(index: int, chosen: list[KExampleRow]) -> None:
        if len(examples) >= max_examples:
            return
        if index == len(per_row):
            examples.append(KExample(chosen, database.registry))
            return
        for row in per_row[index]:
            build(index + 1, chosen + [row])

    build(0, [])
    return examples
