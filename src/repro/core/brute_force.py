"""The brute-force baseline used by the Figure 19 ablation.

Scans every abstraction in arbitrary order, computes privacy for each
(monolithically, without any of the Section 4.1 optimizations), and keeps
the minimum-LOI one meeting the threshold.  Exists so the effect of each
optimization component can be measured against a common reference.
"""

from __future__ import annotations

from repro.abstraction.tree import AbstractionTree
from repro.core.consistency import ConsistencyConfig
from repro.core.optimizer import (
    OptimalAbstractionResult,
    OptimizerConfig,
    find_optimal_abstraction,
)
from repro.core.privacy import PrivacyConfig
from repro.provenance.kexample import KExample


def brute_force_config(
    max_candidates: "int | None" = None,
    consistency: "ConsistencyConfig | None" = None,
) -> OptimizerConfig:
    """An optimizer configuration with every optimization disabled."""
    return OptimizerConfig(
        sort_abstractions=False,
        loi_first=False,
        prune_dominated=False,
        incremental=False,
        max_candidates=max_candidates,
        privacy=PrivacyConfig(
            row_by_row=False,
            connectivity_filter=False,
            cache_queries=False,
            cache_connectivity=False,
            consistency=consistency or ConsistencyConfig(),
        ),
    )


def brute_force_optimal_abstraction(
    example: KExample,
    tree: AbstractionTree,
    threshold: int,
    max_candidates: "int | None" = None,
) -> OptimalAbstractionResult:
    """Find the optimal abstraction the slow way."""
    return find_optimal_abstraction(
        example, tree, threshold, config=brute_force_config(max_candidates)
    )
