"""Loss of information: entropy over the concretization set (Definition 3.6).

Three distribution models are provided:

* :class:`UniformDistribution` — the paper's default; LOI reduces to
  ``ln |C(Ex~)|`` which, by Proposition 3.5, is a sum of per-occurrence
  ``ln |L_T(target)|`` terms and never requires enumerating concretizations.
* :class:`LeafWeightDistribution` — each leaf has a weight; occurrences
  choose leaves independently with probability proportional to weight.
  Independence makes the entropy additive across occurrences, again
  avoiding enumeration.
* :class:`ExplicitDistribution` — arbitrary probabilities per concretization
  (Example 3.7); requires enumeration and is intended for small sets.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.tree import AbstractionTree
from repro.errors import AbstractionError
from repro.provenance.kexample import AbstractedKExample


class UniformDistribution:
    """Discrete uniform distribution over the concretization set."""

    #: LOI is a sum of independent per-occurrence terms (Proposition 3.5),
    #: so the optimizer may evaluate candidates from cached per-label
    #: contributions instead of recomputing over the whole example.
    supports_incremental = True

    def label_contribution(self, label: str, tree: AbstractionTree) -> float:
        """The LOI contribution of one occurrence abstracted to ``label``."""
        return math.log(tree.leaf_count(label))

    def loi(
        self,
        abstracted: AbstractedKExample,
        tree: AbstractionTree,
        engine: "ConcretizationEngine | None" = None,
    ) -> float:
        # ``engine`` is accepted for signature uniformity with
        # ExplicitDistribution; the closed form needs no enumeration.
        total = 0.0
        for row in abstracted.rows:
            for label in row.occurrences:
                if label in tree and not tree.is_leaf(label):
                    total += math.log(tree.leaf_count(label))
        return total

    def __repr__(self) -> str:
        return "UniformDistribution()"


class LeafWeightDistribution:
    """Independent per-occurrence leaf choices with given leaf weights.

    Each abstracted occurrence picks a leaf of its target's subtree with
    probability proportional to the leaf's weight; weights default to 1
    (reducing to uniform).  Entropy is the sum of the per-occurrence
    entropies because the choices are independent.
    """

    #: Independence makes the entropy additive per occurrence, so the
    #: incremental evaluator applies (contributions depend only on the
    #: target label).
    supports_incremental = True

    def __init__(self, weights: Mapping[str, float]):
        self._weights = dict(weights)
        for leaf, weight in self._weights.items():
            if weight <= 0:
                raise AbstractionError(
                    f"leaf weight must be positive: {leaf!r} -> {weight}"
                )

    def label_contribution(self, label: str, tree: AbstractionTree) -> float:
        """The entropy contribution of one occurrence abstracted to ``label``."""
        weights = [
            self._weights.get(leaf, 1.0) for leaf in tree.leaves_under(label)
        ]
        return _entropy_of_weights(weights)

    def loi(
        self,
        abstracted: AbstractedKExample,
        tree: AbstractionTree,
        engine: "ConcretizationEngine | None" = None,
    ) -> float:
        total = 0.0
        for row in abstracted.rows:
            for label in row.occurrences:
                if label in tree and not tree.is_leaf(label):
                    total += self.label_contribution(label, tree)
        return total

    def __repr__(self) -> str:
        return f"LeafWeightDistribution({len(self._weights)} weights)"


class ExplicitDistribution:
    """Explicit probabilities over an enumerated concretization set.

    ``probabilities`` must sum to 1 and match the concretization count;
    they are assigned to concretizations in the engine's enumeration order.
    """

    def __init__(self, probabilities: Sequence[float]):
        self._probabilities = tuple(float(p) for p in probabilities)
        if any(p < 0 for p in self._probabilities):
            raise AbstractionError("probabilities must be non-negative")
        if abs(sum(self._probabilities) - 1.0) > 1e-9:
            raise AbstractionError(
                f"probabilities must sum to 1, got {sum(self._probabilities)}"
            )

    def loi(
        self,
        abstracted: AbstractedKExample,
        tree: AbstractionTree,
        engine: "ConcretizationEngine | None" = None,
    ) -> float:
        if engine is not None:
            count = engine.count(abstracted)
            if count != len(self._probabilities):
                raise AbstractionError(
                    f"distribution has {len(self._probabilities)} outcomes "
                    f"but the concretization set has {count}"
                )
        return _entropy_of_probabilities(self._probabilities)

    def __repr__(self) -> str:
        return f"ExplicitDistribution({len(self._probabilities)} outcomes)"


def loss_of_information(
    abstracted: AbstractedKExample,
    tree: AbstractionTree,
    distribution: "UniformDistribution | LeafWeightDistribution | None" = None,
    engine: "ConcretizationEngine | None" = None,
) -> float:
    """``LOI(A_T(Ex))`` under the given distribution (uniform by default).

    ``engine`` enables the outcome-count validation of distributions that
    enumerate the concretization set (:class:`ExplicitDistribution`): with
    an engine the distribution's outcome count is checked against
    ``|C(Ex~)|`` and a mismatch raises; without one the check is skipped —
    the caller vouches that the probabilities line up with the engine's
    enumeration order.  The closed-form distributions ignore it.
    """
    if distribution is None:
        distribution = UniformDistribution()
    if engine is None:
        # Two-argument call keeps custom distributions without an
        # ``engine`` parameter working.
        return distribution.loi(abstracted, tree)
    return distribution.loi(abstracted, tree, engine)


def _entropy_of_weights(weights: Sequence[float]) -> float:
    total = sum(weights)
    return _entropy_of_probabilities([w / total for w in weights])


def _entropy_of_probabilities(probabilities: Sequence[float]) -> float:
    return -sum(p * math.log(p) for p in probabilities if p > 0)
