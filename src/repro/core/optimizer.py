"""Finding optimal abstractions: Algorithm 2 of the paper.

Given a K-example, an abstraction tree, and a privacy threshold ``k``,
find the abstraction function with privacy >= k minimizing the loss of
information.  The search realizes the paper's two search-side optimizations
(Section 4.1), each switchable for the Figure 19 ablation:

* *Sorting abstractions* — candidates are visited in non-decreasing order
  of the number of tree edges they use (ties broken by LOI).  Implemented
  lazily with a uniform-cost frontier over per-variable ancestor levels so
  the ``(h+1)^n`` space is never materialized.
* *LOI before privacy* — the cheap LOI computation gates the expensive
  privacy computation: privacy is only computed when the candidate's LOI
  beats the incumbent.

Additionally, for monotone distributions (uniform), successors of a
candidate whose LOI already reached the incumbent are pruned: abstracting
any variable higher can only raise LOI further, so the entire upward cone
is dominated.

Candidate evaluation is *incremental* by default (:class:`IncrementalEvaluator`):
for the additive distributions (Proposition 3.5) a candidate's LOI is a sum
of per-occurrence contributions depending only on the target label, so the
search scores candidates from cached per-(variable, level) contributions
and only materializes the abstracted K-example for candidates whose LOI
beats the incumbent — the only ones whose privacy is computed.  Disable
with ``OptimizerConfig(incremental=False)`` to recover the from-scratch
evaluation; both paths produce bit-identical results.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.privacy import PrivacyComputer, PrivacyConfig, PrivacySession
from repro.errors import OptimizationError
from repro.obs import clock, spans
from repro.provenance.kexample import AbstractedKExample, KExample, KExampleRow


@dataclass(frozen=True)
class OptimizerConfig:
    """Switches and budgets for Algorithm 2."""

    sort_abstractions: bool = True
    loi_first: bool = True
    prune_dominated: bool = True
    # Evaluate candidates from cached per-(variable, level) LOI
    # contributions instead of re-applying the abstraction to every row;
    # only takes effect for distributions with additive LOI (uniform and
    # leaf-weight), and produces bit-identical results either way.
    incremental: bool = True
    max_candidates: Optional[int] = None
    # Wall-clock budget for one search; the best abstraction found so far
    # is returned when it runs out (None = unbounded, as in the paper).
    max_seconds: Optional[float] = None
    # The evaluation engine used when a K-example must be (re)built for
    # this job: "naive" | "sqlite" | "duckdb".  An execution detail, like
    # the service's executor tier — every engine produces bit-identical
    # results, and store/hashing.py strips this field from job content
    # hashes so results cache across engines.
    engine: str = "naive"
    # Record a per-job span trace (repro.obs.spans) into the result.
    # Pure observability: an execution detail like ``engine``, stripped
    # from content hashes, and bit-neutral by construction — enabling it
    # changes no result fields, only attaches the VOLATILE trace.
    trace: bool = False
    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)


@dataclass
class OptimizerStats:
    """Search effort counters."""

    candidates_scanned: int = 0
    privacy_computations: int = 0
    privacy_budget_exhausted: int = 0
    elapsed_seconds: float = 0.0
    # Incremental-evaluation counters (zero when incremental=False or the
    # distribution is not additive).
    delta_evaluations: int = 0            # candidates scored from cached deltas
    full_evaluations: int = 0             # candidates scored from scratch
    functions_materialized: int = 0       # lazily built abstracted examples
    contribution_cache_hits: int = 0      # per-(variable, level) cache reuses
    contribution_cache_misses: int = 0    # per-(variable, level) cache fills
    # Privacy-session reuse during this search (copied from PrivacyStats):
    # row-option sets served from the shared cache vs enumerated fresh.
    row_option_cache_hits: int = 0
    row_option_cache_misses: int = 0
    # True iff the scan stopped because ``max_seconds`` ran out — the one
    # outcome that depends on machine speed rather than the inputs (the
    # persistent result cache refuses to store such results).
    stopped_by_wall_clock: bool = False


@dataclass
class OptimalAbstractionResult:
    """The outcome of an optimal-abstraction search.

    ``function`` is ``None`` when no abstraction meets the threshold within
    the candidate budget.
    """

    function: Optional[AbstractionFunction]
    abstracted: Optional[AbstractedKExample]
    privacy: int
    loi: float
    edges_used: int
    stats: OptimizerStats

    @property
    def found(self) -> bool:
        return self.function is not None


def search_space(
    example: KExample, tree: AbstractionTree
) -> tuple[list[str], dict[str, tuple[str, ...]]]:
    """Algorithm 2's search axes: abstractable variables + ancestor chains.

    A variable is abstractable iff it is a leaf of the tree; its chain
    lists the abstraction targets (itself first, root last).  Shared by
    the primal and dual searches, the equivalence tests, and the
    benchmarks so the candidate space has one definition.
    """
    variables = sorted(
        v for v in example.variables()
        if v in tree.labels() and tree.is_leaf(v)
    )
    chains = {v: tree.ancestors(v) for v in variables}
    return variables, chains


class IncrementalEvaluator:
    """Delta-based candidate evaluation over a shared base example.

    The frontier moves one variable one ancestor level at a time, yet a
    from-scratch evaluation rebuilds an :class:`AbstractionFunction`,
    re-applies it to every row, and recomputes LOI over the whole
    abstracted example for every pop.  For distributions whose LOI is
    additive per occurrence (Proposition 3.5: uniform and leaf-weight),
    a candidate's LOI depends only on which (variable, level) pairs it
    selects, so this evaluator

    * caches each (variable, level) contribution the first time the level
      is seen and reuses it for every later candidate touching it,
    * scores candidates without materializing the abstracted example, and
    * materializes the function/abstracted pair lazily — as a positional
      delta over the shared base example — only when the caller actually
      needs it (i.e. when the candidate's privacy must be computed).

    Float addition is order-sensitive, so :meth:`loi` replays the cached
    contributions in exactly the order the full recomputation would visit
    them (row by row; within a row, in the sorted occurrence order of the
    abstracted row).  Results are therefore bit-identical to
    :func:`repro.core.loi.loss_of_information` on the materialized example.
    """

    def __init__(self, example, tree, variables, chains, distribution):
        self._example = example
        self._tree = tree
        self._variables = tuple(variables)
        self._chains = chains
        self._distribution = distribution
        var_index = {v: i for i, v in enumerate(self._variables)}
        # Per row: each occurrence's variable index (-1 = not abstractable),
        # and the abstractable occurrences' indexes with multiplicity.
        self._row_occ_vars: list[tuple[int, ...]] = []
        self._row_var_entries: list[tuple[int, ...]] = []
        for row in example.rows:
            occ_vars = tuple(var_index.get(ann, -1) for ann in row.occurrences)
            self._row_occ_vars.append(occ_vars)
            self._row_var_entries.append(tuple(i for i in occ_vars if i >= 0))
        self._contributions: dict[tuple[int, int], float] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def contribution(self, var_index: int, level: int) -> float:
        """The per-occurrence LOI contribution of one (variable, level)."""
        key = (var_index, level)
        value = self._contributions.get(key)
        if value is None:
            var = self._variables[var_index]
            target = self._chains[var][level]
            value = self._distribution.label_contribution(target, self._tree)
            self._contributions[key] = value
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        return value

    def loi(self, levels: tuple[int, ...]) -> float:
        """The candidate's LOI, bit-identical to a full recomputation."""
        total = 0.0
        chains = self._chains
        variables = self._variables
        for entries in self._row_var_entries:
            touched = []
            for i in entries:
                level = levels[i]
                if level:
                    touched.append((chains[variables[i]][level], i, level))
            if not touched:
                continue
            # The abstracted row sorts its occurrences; equal labels have
            # equal cached contributions, so sorting by label reproduces
            # the full path's addition order exactly.
            touched.sort()
            for _, i, level in touched:
                total += self.contribution(i, level)
        return total

    def materialize(
        self, levels: tuple[int, ...]
    ) -> tuple[AbstractionFunction, AbstractedKExample]:
        """Build (function, abstracted) by patching the shared base rows."""
        variables = self._variables
        chains = self._chains
        targets = [
            chains[variables[i]][level] if level else None
            for i, level in enumerate(levels)
        ]
        assignment: dict[tuple[int, int], str] = {}
        rows = []
        for row_idx, row in enumerate(self._example.rows):
            occ_vars = self._row_occ_vars[row_idx]
            values = list(row.occurrences)
            for occ_idx, var_i in enumerate(occ_vars):
                if var_i >= 0:
                    target = targets[var_i]
                    if target is not None:
                        values[occ_idx] = target
                        assignment[(row_idx, occ_idx)] = target
            rows.append(KExampleRow(row.output, values))
        function = AbstractionFunction._from_validated(self._tree, assignment)
        abstracted = AbstractedKExample(rows, self._example, assignment)
        return function, abstracted


class _SortedFrontier:
    """Lazy best-first enumeration of per-variable ancestor-level vectors.

    States are vectors assigning each abstractable variable a level in its
    ancestor chain (0 = itself).  Order: total edge count, then a uniform
    LOI estimate.  ``expand`` pushes a state's successors; the caller skips
    expanding dominated states to prune their upward cones.
    """

    def __init__(self, variables, chains, tree, occurrence_count):
        self._variables = variables
        self._chains = chains
        self._tree = tree
        self._occurrences = occurrence_count
        self._counter = itertools.count()
        start = tuple(0 for _ in variables)
        self._heap = [(0, 0.0, next(self._counter), start)]
        self._seen = {start}

    def _loi_estimate(self, levels: tuple[int, ...]) -> float:
        total = 0.0
        for var, level in zip(self._variables, levels):
            if level:
                target = self._chains[var][level]
                total += self._occurrences[var] * math.log(
                    self._tree.leaf_count(target)
                )
        return total

    def pop(self) -> Optional[tuple[int, ...]]:
        if not self._heap:
            return None
        _, _, _, levels = heapq.heappop(self._heap)
        return levels

    def expand(self, levels: tuple[int, ...]) -> None:
        cost = sum(levels)
        for index, var in enumerate(self._variables):
            if levels[index] + 1 < len(self._chains[var]):
                succ = levels[:index] + (levels[index] + 1,) + levels[index + 1:]
                if succ not in self._seen:
                    self._seen.add(succ)
                    heapq.heappush(
                        self._heap,
                        (cost + 1, self._loi_estimate(succ),
                         next(self._counter), succ),
                    )


def _unsorted_candidates(variables, chains) -> Iterator[tuple[int, ...]]:
    ranges = [range(len(chains[v])) for v in variables]
    yield from itertools.product(*ranges)


def find_optimal_abstraction(
    example: KExample,
    tree: AbstractionTree,
    threshold: int,
    config: OptimizerConfig | None = None,
    distribution=None,
    session: PrivacySession | None = None,
) -> OptimalAbstractionResult:
    """Algorithm 2: the minimum-LOI abstraction with privacy >= ``threshold``.

    ``session`` shares Algorithm 1's caches with other searches over the
    same (tree, registry) — e.g. across a threshold sweep; omitted, the
    search still pools privacy work across its own candidates through a
    private session.  Results are bit-identical either way.
    """
    config = config or OptimizerConfig()
    if not tree.is_compatible_with_annotations(example.registry.annotations()):
        raise OptimizationError(
            "abstraction tree is incompatible with the K-example "
            "(an inner label collides with a tuple annotation)"
        )

    computer = PrivacyComputer(
        tree, example.registry, config.privacy, session=session
    )
    dist = distribution or UniformDistribution()
    prune = (
        config.prune_dominated
        and config.sort_abstractions
        and isinstance(dist, UniformDistribution)
    )

    variables, chains = search_space(example, tree)
    occurrence_count = _occurrence_counts(example, variables)

    stats = OptimizerStats()
    start_time = clock.perf_counter()
    # Aggregated spans for the per-candidate loop: hoisted once so the
    # disabled-mode cost is two no-op method calls per use, and a traced
    # run records one accumulated record per phase instead of one span
    # per candidate.
    scoring_timer = spans.aggregate("candidate_scoring")
    privacy_timer = spans.aggregate("privacy_check")
    materialize_timer = spans.aggregate("materialize")

    best: Optional[AbstractionFunction] = None
    best_abstracted: Optional[AbstractedKExample] = None
    best_privacy = -1
    best_loi = math.inf

    frontier: Optional[_SortedFrontier] = None
    plain: Optional[Iterator[tuple[int, ...]]] = None
    if config.sort_abstractions and variables:
        frontier = _SortedFrontier(variables, chains, tree, occurrence_count)
    else:
        plain = _unsorted_candidates(variables, chains)

    evaluator: Optional[IncrementalEvaluator] = None
    if config.incremental and getattr(dist, "supports_incremental", False):
        evaluator = IncrementalEvaluator(example, tree, variables, chains, dist)

    while True:
        if frontier is not None:
            levels = frontier.pop()
            if levels is None:
                break
        else:
            assert plain is not None
            levels = next(plain, None)
            if levels is None:
                break

        # Budgets are checked before the candidate is counted, so
        # ``candidates_scanned`` is exactly the number evaluated (the
        # popped-but-unevaluated candidate is not reported as effort).
        if (
            config.max_candidates is not None
            and stats.candidates_scanned >= config.max_candidates
        ):
            break
        if (
            config.max_seconds is not None
            and clock.perf_counter() - start_time > config.max_seconds
        ):
            stats.stopped_by_wall_clock = True
            break
        stats.candidates_scanned += 1

        function: Optional[AbstractionFunction]
        abstracted: Optional[AbstractedKExample]
        with scoring_timer:
            if evaluator is not None:
                # Incremental path: score from cached contributions; the
                # function/abstracted pair is materialized only if needed.
                loi = evaluator.loi(levels)
                function = abstracted = None
                stats.delta_evaluations += 1
            else:
                function = _function_for_levels(
                    tree, example, variables, chains, levels
                )
                abstracted = function.apply(example)
                loi = loss_of_information(abstracted, tree, dist)
                stats.full_evaluations += 1

        dominated = loi >= best_loi
        if config.loi_first and dominated:
            if frontier is not None and not prune:
                frontier.expand(levels)
            continue

        if config.loi_first or not dominated:
            stats.privacy_computations += 1
            if function is None:
                assert evaluator is not None
                with materialize_timer:
                    function, abstracted = evaluator.materialize(levels)
                stats.functions_materialized += 1
            try:
                with privacy_timer:
                    privacy = computer.compute(abstracted, threshold)
            except OptimizationError:
                # Concretization budget exhausted: the abstraction is too
                # coarse to evaluate; skip it (its refinements are coarser
                # still, but siblings may be fine, so keep expanding).
                stats.privacy_budget_exhausted += 1
                privacy = -1
            if privacy >= threshold and loi < best_loi:
                best, best_abstracted = function, abstracted
                best_privacy, best_loi = privacy, loi
        else:
            # loi_first disabled: pay for privacy even on dominated states.
            stats.privacy_computations += 1
            if abstracted is None:
                assert evaluator is not None
                with materialize_timer:
                    _, abstracted = evaluator.materialize(levels)
                stats.functions_materialized += 1
            try:
                with privacy_timer:
                    computer.compute(abstracted, threshold)
            except OptimizationError:
                stats.privacy_budget_exhausted += 1

        if frontier is not None:
            frontier.expand(levels)

    stats.elapsed_seconds = clock.perf_counter() - start_time
    if evaluator is not None:
        stats.contribution_cache_hits = evaluator.cache_hits
        stats.contribution_cache_misses = evaluator.cache_misses
    stats.row_option_cache_hits = computer.stats.row_option_cache_hits
    stats.row_option_cache_misses = computer.stats.row_option_cache_misses
    edges = best.edges_used(example) if best is not None else 0
    return OptimalAbstractionResult(
        function=best,
        abstracted=best_abstracted,
        privacy=best_privacy,
        loi=best_loi if best is not None else math.inf,
        edges_used=edges,
        stats=stats,
    )


def _function_for_levels(tree, example, variables, chains, levels):
    targets = {}
    for var, level in zip(variables, levels):
        if level:
            targets[var] = chains[var][level]
    return AbstractionFunction.uniform(tree, example, targets)


def _occurrence_counts(example: KExample, variables) -> dict[str, int]:
    counts = {v: 0 for v in variables}
    for row in example.rows:
        for ann in row.occurrences:
            if ann in counts:
                counts[ann] += 1
    return counts
