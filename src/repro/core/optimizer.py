"""Finding optimal abstractions: Algorithm 2 of the paper.

Given a K-example, an abstraction tree, and a privacy threshold ``k``,
find the abstraction function with privacy >= k minimizing the loss of
information.  The search realizes the paper's two search-side optimizations
(Section 4.1), each switchable for the Figure 19 ablation:

* *Sorting abstractions* — candidates are visited in non-decreasing order
  of the number of tree edges they use (ties broken by LOI).  Implemented
  lazily with a uniform-cost frontier over per-variable ancestor levels so
  the ``(h+1)^n`` space is never materialized.
* *LOI before privacy* — the cheap LOI computation gates the expensive
  privacy computation: privacy is only computed when the candidate's LOI
  beats the incumbent.

Additionally, for monotone distributions (uniform), successors of a
candidate whose LOI already reached the incumbent are pruned: abstracting
any variable higher can only raise LOI further, so the entire upward cone
is dominated.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.errors import OptimizationError
from repro.provenance.kexample import AbstractedKExample, KExample


@dataclass(frozen=True)
class OptimizerConfig:
    """Switches and budgets for Algorithm 2."""

    sort_abstractions: bool = True
    loi_first: bool = True
    prune_dominated: bool = True
    max_candidates: Optional[int] = None
    # Wall-clock budget for one search; the best abstraction found so far
    # is returned when it runs out (None = unbounded, as in the paper).
    max_seconds: Optional[float] = None
    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)


@dataclass
class OptimizerStats:
    """Search effort counters."""

    candidates_scanned: int = 0
    privacy_computations: int = 0
    privacy_budget_exhausted: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class OptimalAbstractionResult:
    """The outcome of an optimal-abstraction search.

    ``function`` is ``None`` when no abstraction meets the threshold within
    the candidate budget.
    """

    function: Optional[AbstractionFunction]
    abstracted: Optional[AbstractedKExample]
    privacy: int
    loi: float
    edges_used: int
    stats: OptimizerStats

    @property
    def found(self) -> bool:
        return self.function is not None


class _SortedFrontier:
    """Lazy best-first enumeration of per-variable ancestor-level vectors.

    States are vectors assigning each abstractable variable a level in its
    ancestor chain (0 = itself).  Order: total edge count, then a uniform
    LOI estimate.  ``expand`` pushes a state's successors; the caller skips
    expanding dominated states to prune their upward cones.
    """

    def __init__(self, variables, chains, tree, occurrence_count):
        self._variables = variables
        self._chains = chains
        self._tree = tree
        self._occurrences = occurrence_count
        self._counter = itertools.count()
        start = tuple(0 for _ in variables)
        self._heap = [(0, 0.0, next(self._counter), start)]
        self._seen = {start}

    def _loi_estimate(self, levels: tuple[int, ...]) -> float:
        total = 0.0
        for var, level in zip(self._variables, levels):
            if level:
                target = self._chains[var][level]
                total += self._occurrences[var] * math.log(
                    self._tree.leaf_count(target)
                )
        return total

    def pop(self) -> Optional[tuple[int, ...]]:
        if not self._heap:
            return None
        _, _, _, levels = heapq.heappop(self._heap)
        return levels

    def expand(self, levels: tuple[int, ...]) -> None:
        cost = sum(levels)
        for index, var in enumerate(self._variables):
            if levels[index] + 1 < len(self._chains[var]):
                succ = levels[:index] + (levels[index] + 1,) + levels[index + 1:]
                if succ not in self._seen:
                    self._seen.add(succ)
                    heapq.heappush(
                        self._heap,
                        (cost + 1, self._loi_estimate(succ),
                         next(self._counter), succ),
                    )


def _unsorted_candidates(variables, chains) -> Iterator[tuple[int, ...]]:
    ranges = [range(len(chains[v])) for v in variables]
    yield from itertools.product(*ranges)


def find_optimal_abstraction(
    example: KExample,
    tree: AbstractionTree,
    threshold: int,
    config: OptimizerConfig | None = None,
    distribution=None,
) -> OptimalAbstractionResult:
    """Algorithm 2: the minimum-LOI abstraction with privacy >= ``threshold``."""
    config = config or OptimizerConfig()
    if not tree.is_compatible_with_annotations(example.registry.annotations()):
        raise OptimizationError(
            "abstraction tree is incompatible with the K-example "
            "(an inner label collides with a tuple annotation)"
        )

    computer = PrivacyComputer(tree, example.registry, config.privacy)
    dist = distribution or UniformDistribution()
    prune = (
        config.prune_dominated
        and config.sort_abstractions
        and isinstance(dist, UniformDistribution)
    )

    variables = sorted(
        v for v in example.variables()
        if v in tree.labels() and tree.is_leaf(v)
    )
    chains = {v: tree.ancestors(v) for v in variables}
    occurrence_count = _occurrence_counts(example, variables)

    stats = OptimizerStats()
    start_time = time.perf_counter()

    best: Optional[AbstractionFunction] = None
    best_abstracted: Optional[AbstractedKExample] = None
    best_privacy = -1
    best_loi = math.inf

    frontier: Optional[_SortedFrontier] = None
    plain: Optional[Iterator[tuple[int, ...]]] = None
    if config.sort_abstractions and variables:
        frontier = _SortedFrontier(variables, chains, tree, occurrence_count)
    else:
        plain = _unsorted_candidates(variables, chains)

    while True:
        if frontier is not None:
            levels = frontier.pop()
            if levels is None:
                break
        else:
            assert plain is not None
            levels = next(plain, None)
            if levels is None:
                break

        stats.candidates_scanned += 1
        if (
            config.max_candidates is not None
            and stats.candidates_scanned > config.max_candidates
        ):
            break
        if (
            config.max_seconds is not None
            and time.perf_counter() - start_time > config.max_seconds
        ):
            break

        function = _function_for_levels(tree, example, variables, chains, levels)
        abstracted = function.apply(example)
        loi = loss_of_information(abstracted, tree, dist)

        dominated = loi >= best_loi
        if config.loi_first and dominated:
            if frontier is not None and not prune:
                frontier.expand(levels)
            continue

        if config.loi_first or not dominated:
            stats.privacy_computations += 1
            try:
                privacy = computer.compute(abstracted, threshold)
            except OptimizationError:
                # Concretization budget exhausted: the abstraction is too
                # coarse to evaluate; skip it (its refinements are coarser
                # still, but siblings may be fine, so keep expanding).
                stats.privacy_budget_exhausted += 1
                privacy = -1
            if privacy >= threshold and loi < best_loi:
                best, best_abstracted = function, abstracted
                best_privacy, best_loi = privacy, loi
        else:
            # loi_first disabled: pay for privacy even on dominated states.
            stats.privacy_computations += 1
            try:
                computer.compute(abstracted, threshold)
            except OptimizationError:
                stats.privacy_budget_exhausted += 1

        if frontier is not None:
            frontier.expand(levels)

    stats.elapsed_seconds = time.perf_counter() - start_time
    edges = best.edges_used(example) if best is not None else 0
    return OptimalAbstractionResult(
        function=best,
        abstracted=best_abstracted,
        privacy=best_privacy,
        loi=best_loi if best is not None else math.inf,
        edges_used=edges,
        stats=stats,
    )


def _function_for_levels(tree, example, variables, chains, levels):
    targets = {}
    for var, level in zip(variables, levels):
        if level:
            targets[var] = chains[var][level]
    return AbstractionFunction.uniform(tree, example, targets)


def _occurrence_counts(example: KExample, variables) -> dict[str, int]:
    counts = {v: 0 for v in variables}
    for row in example.rows:
        for ann in row.occurrences:
            if ann in counts:
                counts[ann] += 1
    return counts
