"""Per-occurrence refinement of an optimal uniform abstraction.

Algorithm 2 searches abstractions that map every occurrence of a variable
uniformly — the space the paper's experiments scan.  Definition 3.1,
however, allows each *occurrence* its own target, and a per-occurrence
assignment can dominate the best uniform one: if privacy is already
carried by the first row's abstraction, the second row's occurrence of the
same variable may stay concrete, saving entropy.

:func:`refine_per_occurrence` post-processes a uniform optimum greedily:
repeatedly try lowering a single occurrence's target one tree step toward
the leaf (largest LOI saving first); keep the move if privacy still meets
the threshold.  The result never has higher LOI than the input and always
satisfies the threshold — an ablation for DESIGN.md's design-choice list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.errors import OptimizationError
from repro.provenance.kexample import KExample


@dataclass
class RefinementResult:
    """Outcome of the per-occurrence refinement pass."""

    function: AbstractionFunction
    loi: float
    privacy: int
    moves_applied: int
    moves_tried: int


def refine_per_occurrence(
    example: KExample,
    tree: AbstractionTree,
    function: AbstractionFunction,
    threshold: int,
    privacy_config: "PrivacyConfig | None" = None,
    distribution=None,
    max_rounds: int = 10,
) -> RefinementResult:
    """Greedily lower individual occurrences while privacy holds.

    ``function`` must already satisfy ``threshold`` (e.g. the output of
    :func:`repro.core.optimizer.find_optimal_abstraction`).
    """
    dist = distribution or UniformDistribution()
    computer = PrivacyComputer(tree, example.registry, privacy_config)

    assignment = dict(function.assignment)
    current = AbstractionFunction(tree, example, assignment)
    abstracted = current.apply(example)
    privacy = computer.compute(abstracted, threshold)
    if privacy < threshold:
        raise OptimizationError(
            "refinement requires a function that already meets the threshold"
        )
    loi = loss_of_information(abstracted, tree, dist)

    moves_tried = 0
    moves_applied = 0
    for _round in range(max_rounds):
        # Candidate moves: one occurrence, one step down its ancestor chain.
        moves: list[tuple[float, tuple[int, int], "str | None"]] = []
        for position, target in assignment.items():
            row_idx, occ_idx = position
            source = example.rows[row_idx].occurrences[occ_idx]
            chain = tree.ancestors(source)  # (source, ..., target, ..., root)
            level = chain.index(target)
            lower = chain[level - 1] if level > 1 else None
            candidate = dict(assignment)
            if lower is None:
                del candidate[position]  # back to the concrete annotation
            else:
                candidate[position] = lower
            cand_function = AbstractionFunction(tree, example, candidate)
            cand_loi = loss_of_information(cand_function.apply(example), tree, dist)
            if cand_loi < loi - 1e-12:
                moves.append((cand_loi, position, lower))
        if not moves:
            break

        moves.sort(key=lambda m: m[0])  # biggest LOI saving first
        improved = False
        for cand_loi, position, lower in moves:
            moves_tried += 1
            candidate = dict(assignment)
            if lower is None:
                del candidate[position]
            else:
                candidate[position] = lower
            cand_function = AbstractionFunction(tree, example, candidate)
            try:
                cand_privacy = computer.compute(
                    cand_function.apply(example), threshold
                )
            except OptimizationError:
                continue
            if cand_privacy >= threshold:
                assignment = candidate
                current = cand_function
                privacy = cand_privacy
                loi = cand_loi
                moves_applied += 1
                improved = True
                break  # re-derive the move list from the new state
        if not improved:
            break

    if math.isinf(loi):
        raise AssertionError("refinement lost track of the LOI")
    return RefinementResult(
        function=current,
        loi=loi,
        privacy=privacy,
        moves_applied=moves_applied,
        moves_tried=moves_tried,
    )
