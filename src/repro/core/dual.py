"""The dual problem (Section 4.2): maximize privacy subject to an LOI cap.

Algorithm 2 is adjusted exactly as the paper prescribes: track the best
privacy instead of the best LOI, only scan abstractions whose LOI does not
exceed ``max_loi``, and — because LOI is monotone under abstracting any
variable higher (for the uniform distribution) — terminate branches whose
LOI exceeds the cap.  The cap makes the dual "more efficiently solvable"
than the primal, which the E-DUAL benchmark verifies.

Candidate evaluation mirrors the primal search: with
``OptimizerConfig(incremental=True)`` (the default) candidates are scored
by the :class:`IncrementalEvaluator` from cached per-(variable, level)
contributions, and the (function, abstracted) pair is materialized only
for candidates under the cap — the only ones whose privacy is computed.
Privacy work is pooled through a :class:`PrivacySession` (pass one in to
share it across calls, e.g. over an LOI-cap sweep).  Both switches are
bit-identical to the from-scratch path.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.optimizer import (
    IncrementalEvaluator,
    OptimalAbstractionResult,
    OptimizerConfig,
    OptimizerStats,
    _function_for_levels,
    _occurrence_counts,
    _SortedFrontier,
    search_space,
)
from repro.core.privacy import PrivacyComputer, PrivacySession
from repro.errors import OptimizationError
from repro.obs import clock
from repro.provenance.kexample import AbstractedKExample, KExample


def find_dual_optimal_abstraction(
    example: KExample,
    tree: AbstractionTree,
    max_loi: float,
    config: OptimizerConfig | None = None,
    distribution=None,
    session: PrivacySession | None = None,
) -> OptimalAbstractionResult:
    """The maximum-privacy abstraction with ``LOI <= max_loi``."""
    config = config or OptimizerConfig()
    if not tree.is_compatible_with_annotations(example.registry.annotations()):
        raise OptimizationError(
            "abstraction tree is incompatible with the K-example"
        )

    computer = PrivacyComputer(
        tree, example.registry, config.privacy, session=session
    )
    dist = distribution or UniformDistribution()
    prune = config.prune_dominated and isinstance(dist, UniformDistribution)

    variables, chains = search_space(example, tree)
    occurrence_count = _occurrence_counts(example, variables)

    stats = OptimizerStats()
    start_time = clock.perf_counter()

    best: Optional[AbstractionFunction] = None
    best_abstracted: Optional[AbstractedKExample] = None
    best_privacy = 0
    best_loi = math.inf

    evaluator: Optional[IncrementalEvaluator] = None
    if config.incremental and getattr(dist, "supports_incremental", False):
        evaluator = IncrementalEvaluator(example, tree, variables, chains, dist)

    frontier = _SortedFrontier(variables, chains, tree, occurrence_count)
    while True:
        levels = frontier.pop()
        if levels is None:
            break
        # Budgets are checked before the candidate is counted, so
        # ``candidates_scanned`` is exactly the number evaluated (the
        # popped-but-unevaluated candidate is not reported as effort).
        if (
            config.max_candidates is not None
            and stats.candidates_scanned >= config.max_candidates
        ):
            break
        if (
            config.max_seconds is not None
            and clock.perf_counter() - start_time > config.max_seconds
        ):
            stats.stopped_by_wall_clock = True
            break
        stats.candidates_scanned += 1

        function: Optional[AbstractionFunction]
        abstracted: Optional[AbstractedKExample]
        if evaluator is not None:
            # Incremental path: score from cached contributions; the
            # function/abstracted pair is materialized only if needed.
            loi = evaluator.loi(levels)
            function = abstracted = None
            stats.delta_evaluations += 1
        else:
            function = _function_for_levels(tree, example, variables, chains, levels)
            abstracted = function.apply(example)
            loi = loss_of_information(abstracted, tree, dist)
            stats.full_evaluations += 1

        if loi > max_loi:
            if not prune:
                frontier.expand(levels)
            continue  # over the cap; with monotone LOI the cone is too

        stats.privacy_computations += 1
        if function is None:
            assert evaluator is not None
            function, abstracted = evaluator.materialize(levels)
            stats.functions_materialized += 1
        try:
            privacy = computer.privacy(abstracted)
        except OptimizationError:
            stats.privacy_budget_exhausted += 1
            frontier.expand(levels)
            continue
        if privacy > best_privacy or (
            privacy == best_privacy and loi < best_loi and best is not None
        ) or best is None:
            best, best_abstracted = function, abstracted
            best_privacy, best_loi = privacy, loi
        frontier.expand(levels)

    stats.elapsed_seconds = clock.perf_counter() - start_time
    if evaluator is not None:
        stats.contribution_cache_hits = evaluator.cache_hits
        stats.contribution_cache_misses = evaluator.cache_misses
    stats.row_option_cache_hits = computer.stats.row_option_cache_hits
    stats.row_option_cache_misses = computer.stats.row_option_cache_misses
    edges = best.edges_used(example) if best is not None else 0
    return OptimalAbstractionResult(
        function=best,
        abstracted=best_abstracted,
        privacy=best_privacy,
        loi=best_loi if best is not None else math.inf,
        edges_used=edges,
        stats=stats,
    )
