"""The dual problem (Section 4.2): maximize privacy subject to an LOI cap.

Algorithm 2 is adjusted exactly as the paper prescribes: track the best
privacy instead of the best LOI, only scan abstractions whose LOI does not
exceed ``max_loi``, and — because LOI is monotone under abstracting any
variable higher (for the uniform distribution) — terminate branches whose
LOI exceeds the cap.  The cap makes the dual "more efficiently solvable"
than the primal, which the E-DUAL benchmark verifies.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.optimizer import (
    OptimalAbstractionResult,
    OptimizerConfig,
    OptimizerStats,
    _function_for_levels,
    _occurrence_counts,
    _SortedFrontier,
    search_space,
)
from repro.core.privacy import PrivacyComputer
from repro.errors import OptimizationError
from repro.provenance.kexample import AbstractedKExample, KExample


def find_dual_optimal_abstraction(
    example: KExample,
    tree: AbstractionTree,
    max_loi: float,
    config: OptimizerConfig | None = None,
    distribution=None,
) -> OptimalAbstractionResult:
    """The maximum-privacy abstraction with ``LOI <= max_loi``."""
    config = config or OptimizerConfig()
    if not tree.is_compatible_with_annotations(example.registry.annotations()):
        raise OptimizationError(
            "abstraction tree is incompatible with the K-example"
        )

    computer = PrivacyComputer(tree, example.registry, config.privacy)
    dist = distribution or UniformDistribution()
    prune = config.prune_dominated and isinstance(dist, UniformDistribution)

    variables, chains = search_space(example, tree)
    occurrence_count = _occurrence_counts(example, variables)

    stats = OptimizerStats()
    start_time = time.perf_counter()

    best: Optional[AbstractionFunction] = None
    best_abstracted: Optional[AbstractedKExample] = None
    best_privacy = 0
    best_loi = math.inf

    frontier = _SortedFrontier(variables, chains, tree, occurrence_count)
    while True:
        levels = frontier.pop()
        if levels is None:
            break
        stats.candidates_scanned += 1
        if (
            config.max_candidates is not None
            and stats.candidates_scanned > config.max_candidates
        ):
            break
        if (
            config.max_seconds is not None
            and time.perf_counter() - start_time > config.max_seconds
        ):
            break

        function = _function_for_levels(tree, example, variables, chains, levels)
        abstracted = function.apply(example)
        loi = loss_of_information(abstracted, tree, dist)

        if loi > max_loi:
            if not prune:
                frontier.expand(levels)
            continue  # over the cap; with monotone LOI the cone is too

        stats.privacy_computations += 1
        try:
            privacy = computer.privacy(abstracted)
        except OptimizationError:
            stats.privacy_budget_exhausted += 1
            frontier.expand(levels)
            continue
        if privacy > best_privacy or (
            privacy == best_privacy and loi < best_loi and best is not None
        ) or best is None:
            best, best_abstracted = function, abstracted
            best_privacy, best_loi = privacy, loi
        frontier.expand(levels)

    stats.elapsed_seconds = time.perf_counter() - start_time
    edges = best.edges_used(example) if best is not None else 0
    return OptimalAbstractionResult(
        function=best,
        abstracted=best_abstracted,
        privacy=best_privacy,
        loi=best_loi if best is not None else math.inf,
        edges_used=edges,
        stats=stats,
    )
