"""Generating consistent queries from a concrete K-example.

This adapts ``FindConsistentQuery`` of Deutch & Gilad (EDBT 2019) as the
paper prescribes (Section 4.2, bullet 1): instead of returning the first
consistent query found, enumerate the consistent queries arising from *all*
alignments ("matchings") between the provenance monomials of the rows.

Construction
------------
Fix the first row's monomial as the query *skeleton*: one body atom per
tuple occurrence ("slot").  For every later row, an *alignment* is a
relation-name-respecting bijection between the skeleton slots and that
row's tuple occurrences (for semirings that drop exponents, surjections are
also allowed — a query atom may reuse a tuple).  A choice of alignment for
every row yields a value matrix: rows x (slot, column) positions.

Positions with identical value vectors are merged into one term — the
*most specific* consistent query for that alignment.  A merged class whose
vector is constant may be a constant or (generalizing) a shared variable;
we emit the base query plus its constant-to-variable "flip" variants, since
a flip can connect an otherwise disconnected join graph and thereby become
a CIM query.  Any consistent query is subsumed by (contains) one of these
candidates, so privacy counts computed from this set agree with the
definition while avoiding the full generalization lattice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterator

from repro.db.tuples import Tuple
from repro.provenance.kexample import KExample
from repro.query.ast import CQ, Atom, Constant, Term, Variable
from repro.semirings.base import Semiring, SemiringName, get_semiring


@dataclass(frozen=True)
class ConsistencyConfig:
    """Knobs for consistent-query generation.

    ``max_alignment_combos`` bounds the product of per-row alignments;
    ``max_flip_classes`` bounds the constant-to-variable flip enumeration
    (beyond it only the base query, single flips, and the all-flip variant
    are generated); ``require_variable`` drops fully-ground queries, the
    paper's trivial-query elimination for the UCQ setting;
    ``max_tuple_reuse`` allows a skeleton slot multiset to repeat a tuple
    when the semiring hides exponents (Table 4, red cells).
    """

    head_name: str = "Q"
    semiring: SemiringName = SemiringName.NX
    max_alignment_combos: int = 20_000
    max_flip_classes: int = 12
    require_variable: bool = False
    max_tuple_reuse: int = 1

    def semiring_ops(self) -> Semiring:
        return get_semiring(self.semiring)


def consistent_queries(
    example: KExample,
    config: ConsistencyConfig | None = None,
) -> frozenset[CQ]:
    """The candidate consistent queries w.r.t. a concrete K-example.

    Returns the most-specific consistent query of every alignment together
    with its constant-flip variants, deduplicated up to isomorphism.  Every
    CIM query of the example is contained in this set (see module docs).
    """
    config = config or ConsistencyConfig()
    out: dict[tuple, CQ] = {}
    for query in _generate(example, config):
        if config.require_variable and not query.variables():
            continue
        out.setdefault(query.canonical(), query)
    return frozenset(out.values())


def _generate(example: KExample, config: ConsistencyConfig) -> Iterator[CQ]:
    rows = example.rows
    drops_exponents = config.semiring_ops().drops_exponents()

    for skeleton in _skeletons(example, config, drops_exponents):
        per_row_alignments: list[list[tuple[Tuple, ...]]] = []
        feasible = True
        for row_index in range(1, len(rows)):
            row_tuples = [
                example.tuple_of(ann) for ann in rows[row_index].occurrences
            ]
            alignments = list(
                _alignments(skeleton, row_tuples, drops_exponents)
            )
            if not alignments:
                feasible = False
                break
            per_row_alignments.append(alignments)
        if not feasible:
            continue

        combos = itertools.product(*per_row_alignments)
        for combo_index, combo in enumerate(combos):
            if combo_index >= config.max_alignment_combos:
                break
            matrix = [skeleton, *combo]
            yield from _queries_from_matrix(example, matrix, config)


def _skeletons(
    example: KExample,
    config: ConsistencyConfig,
    drops_exponents: bool,
) -> Iterator[tuple[Tuple, ...]]:
    """Candidate skeleton slot lists derived from the first row.

    Without exponent information the query may use a tuple more times than
    the (set-valued) provenance shows, so slots may be duplicated up to
    ``max_tuple_reuse`` times each.
    """
    base = tuple(example.tuple_of(ann) for ann in example.rows[0].occurrences)
    yield base
    if not drops_exponents or config.max_tuple_reuse <= 1:
        return
    distinct = list(dict.fromkeys(base))
    reuse_options = range(1, config.max_tuple_reuse + 1)
    for counts in itertools.product(reuse_options, repeat=len(distinct)):
        if all(c == 1 for c in counts):
            continue  # already yielded as ``base``
        expanded: list[Tuple] = []
        for tup, count in zip(distinct, counts):
            expanded.extend([tup] * count)
        yield tuple(expanded)


def _alignments(
    skeleton: tuple[Tuple, ...],
    row_tuples: list[Tuple],
    drops_exponents: bool,
) -> Iterator[tuple[Tuple, ...]]:
    """Assignments of one tuple of the row to every skeleton slot.

    With visible exponents this must be a multiset bijection per relation
    name; without, any relation-respecting surjection onto the row's
    distinct tuples is allowed.
    """
    slots_by_relation: dict[str, list[int]] = {}
    for index, tup in enumerate(skeleton):
        slots_by_relation.setdefault(tup.relation, []).append(index)
    tuples_by_relation: dict[str, list[Tuple]] = {}
    for tup in row_tuples:
        tuples_by_relation.setdefault(tup.relation, []).append(tup)

    if set(slots_by_relation) != set(tuples_by_relation):
        return

    per_relation_choices: list[list[dict[int, Tuple]]] = []
    for relation, slot_indexes in slots_by_relation.items():
        candidates = tuples_by_relation[relation]
        if drops_exponents:
            distinct = list(dict.fromkeys(candidates))
            choices = _surjective_assignments(slot_indexes, distinct)
        else:
            if len(candidates) != len(slot_indexes):
                return
            choices = [
                dict(zip(slot_indexes, perm))
                for perm in _distinct_permutations(candidates)
            ]
        if not choices:
            return
        per_relation_choices.append(choices)

    for combo in itertools.product(*per_relation_choices):
        assignment: dict[int, Tuple] = {}
        for mapping in combo:
            assignment.update(mapping)
        yield tuple(assignment[i] for i in range(len(skeleton)))


def _distinct_permutations(items: list[Tuple]) -> Iterator[tuple[Tuple, ...]]:
    """Permutations of a multiset without duplicates."""
    seen: set[tuple[Tuple, ...]] = set()
    for perm in itertools.permutations(items):
        if perm not in seen:
            seen.add(perm)
            yield perm


def _surjective_assignments(
    slot_indexes: list[int], targets: list[Tuple]
) -> list[dict[int, Tuple]]:
    """All slot->tuple maps using every target at least once."""
    if len(targets) > len(slot_indexes):
        return []
    out = []
    for combo in itertools.product(targets, repeat=len(slot_indexes)):
        if set(combo) == set(targets):
            out.append(dict(zip(slot_indexes, combo)))
    return out


def _queries_from_matrix(
    example: KExample,
    matrix: list[tuple[Tuple, ...]],
    config: ConsistencyConfig,
) -> Iterator[CQ]:
    """Most-specific query and flip variants for one alignment matrix."""
    n_slots = len(matrix[0])

    # Group positions (slot, column) by their cross-row value vectors.
    classes: dict[tuple, list[tuple[int, int]]] = {}
    for slot in range(n_slots):
        arity = matrix[0][slot].arity
        for col in range(arity):
            vector = tuple(matrix[row][slot].values[col] for row in range(len(matrix)))
            classes.setdefault(vector, []).append((slot, col))

    vectors = list(classes)
    constant_classes = [
        idx for idx, vec in enumerate(vectors) if len(set(vec)) == 1
    ]

    # Resolve head terms: each output column needs a class with the exact
    # output vector, or a constant column.
    head_specs: list[tuple[str, object]] = []
    n_out = len(example.rows[0].output)
    for col in range(n_out):
        out_vector = tuple(example.rows[row].output[col] for row in range(len(matrix)))
        if out_vector in classes:
            head_specs.append(("class", vectors.index(out_vector)))
        elif len(set(out_vector)) == 1:
            head_specs.append(("const", out_vector[0]))
        else:
            return  # this alignment cannot produce the outputs

    for flips in _flip_subsets(constant_classes, config.max_flip_classes):
        terms: list[Term] = []
        for idx, vec in enumerate(vectors):
            if idx in constant_classes and idx not in flips:
                terms.append(Constant(vec[0]))
            else:
                terms.append(Variable(f"x{idx}"))

        body = []
        position_term: dict[tuple[int, int], Term] = {}
        for idx, positions in enumerate(classes.values()):
            for pos in positions:
                position_term[pos] = terms[idx]
        for slot in range(n_slots):
            arity = matrix[0][slot].arity
            body.append(
                Atom(
                    matrix[0][slot].relation,
                    [position_term[(slot, col)] for col in range(arity)],
                )
            )

        head_terms: list[Term] = []
        for kind, value in head_specs:
            if kind == "class":
                head_terms.append(terms[value])  # type: ignore[index]
            else:
                head_terms.append(Constant(value))
        yield CQ(Atom(config.head_name, head_terms), body)


def _flip_subsets(
    constant_classes: list[int], max_flip_classes: int
) -> Iterator[frozenset[int]]:
    """Subsets of constant classes to generalize into shared variables.

    Exhaustive up to ``max_flip_classes`` constant classes; beyond that,
    falls back to the empty set, singletons, and the full set (a heuristic
    that still reaches both extremes of the flip lattice).
    """
    if len(constant_classes) <= max_flip_classes:
        for size in range(len(constant_classes) + 1):
            for combo in itertools.combinations(constant_classes, size):
                yield frozenset(combo)
        return
    yield frozenset()
    for idx in constant_classes:
        yield frozenset((idx,))
    yield frozenset(constant_classes)


def trivial_union_query(
    example: KExample, head_name: str = "Q"
) -> "object":
    """The trivial UCQ the paper rules out (Section 3.3).

    One fully-ground CQ per row: the union of the rows' own tuples.  It is
    consistent and (vacuously) connected under the UCQ definition, but it
    "does not generalize the K-example"; Algorithm 1's UCQ variant
    disqualifies such queries — our generator's ``require_variable`` flag
    implements the same rule (every CIM query must have a variable).
    """
    from repro.query.ast import UCQ

    disjuncts = []
    for row in example.rows:
        atoms = []
        for ann in row.occurrences:
            tup = example.tuple_of(ann)
            atoms.append(Atom(tup.relation, [Constant(v) for v in tup.values]))
        head = Atom(head_name, [Constant(v) for v in row.output])
        disjuncts.append(CQ(head, atoms))
    return UCQ(disjuncts)
