"""The paper's contribution: LOI, privacy, and optimal abstraction search."""

from repro.core.loi import (
    ExplicitDistribution,
    LeafWeightDistribution,
    UniformDistribution,
    loss_of_information,
)
from repro.core.consistency import ConsistencyConfig, consistent_queries
from repro.core.privacy import PrivacyComputer, PrivacyConfig, PrivacySession
from repro.core.optimizer import (
    IncrementalEvaluator,
    OptimalAbstractionResult,
    OptimizerConfig,
    OptimizerStats,
    find_optimal_abstraction,
)
from repro.core.brute_force import brute_force_optimal_abstraction
from repro.core.dual import find_dual_optimal_abstraction
from repro.core.compression import compression_baseline

__all__ = [
    "ConsistencyConfig",
    "ExplicitDistribution",
    "IncrementalEvaluator",
    "LeafWeightDistribution",
    "OptimalAbstractionResult",
    "OptimizerConfig",
    "OptimizerStats",
    "PrivacyComputer",
    "PrivacyConfig",
    "PrivacySession",
    "UniformDistribution",
    "brute_force_optimal_abstraction",
    "compression_baseline",
    "consistent_queries",
    "find_dual_optimal_abstraction",
    "find_optimal_abstraction",
    "loss_of_information",
]
