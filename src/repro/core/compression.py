"""The compression-based baseline (Figure 18), after Deutch et al. [24].

[24] uses abstraction trees to *reduce provenance size*, not to gain
privacy.  The paper compares against it by running the compressor as a
black box with a decreasing target size until the abstraction happens to
meet the privacy threshold.  This module reimplements that protocol:

* :func:`compress_to_size` — the [24]-style greedy compressor: repeatedly
  pick the merge step (abstract every present leaf under some parent node
  to that parent) with the smallest LOI increase until the provenance uses
  at most ``target_size`` distinct labels.  The compressor is
  privacy-oblivious, exactly like the original system.
* :func:`compression_baseline` — the paper's outer loop: call the
  compressor with targets ``|Var(Ex)| - 1, ..., 1`` and return the first
  result whose privacy reaches the threshold.

Because whole sibling groups are merged at once, the compressor overshoots
the information loss actually needed for privacy, which is what Figure 18
measures (roughly 2-3x the LOI of the optimal abstraction).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.abstraction.function import AbstractionFunction
from repro.abstraction.tree import AbstractionTree
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.optimizer import OptimizerStats, OptimalAbstractionResult
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.errors import OptimizationError
from repro.obs import clock
from repro.provenance.kexample import KExample


def provenance_size(targets: dict[str, str], example: KExample) -> int:
    """Distinct labels in the abstracted provenance (the [24] size metric)."""
    labels = set()
    for row in example.rows:
        for ann in row.occurrences:
            labels.add(targets.get(ann, ann))
    return len(labels)


def compress_to_size(
    example: KExample,
    tree: AbstractionTree,
    target_size: int,
    distribution=None,
) -> Optional[AbstractionFunction]:
    """Greedy size-targeted compression of the K-example's provenance.

    Returns ``None`` when even abstracting everything to the root cannot
    reach ``target_size`` (only possible for ``target_size < 1``).
    """
    if target_size < 1:
        return None
    dist = distribution or UniformDistribution()

    # Current abstraction level per variable (a tree label).
    targets: dict[str, str] = {
        v: v for v in example.variables()
        if v in tree.labels() and tree.is_leaf(v)
    }

    def current_loi(candidate: dict[str, str]) -> float:
        function = AbstractionFunction.uniform(
            tree, example,
            {v: t for v, t in candidate.items() if t != v},
        )
        return loss_of_information(function.apply(example), tree, dist)

    while provenance_size(targets, example) > target_size:
        best_candidate: Optional[dict[str, str]] = None
        best_cost = math.inf
        # Candidate moves: raise every variable currently at some label L
        # to L's parent (merging the sibling group), one parent at a time.
        current_labels = {label for label in targets.values()}
        for label in current_labels:
            node = tree.node(label)
            if node.parent is None:
                continue
            parent = node.parent.label
            candidate = {
                v: (parent if t == label else t) for v, t in targets.items()
            }
            cost = current_loi(candidate)
            if cost < best_cost:
                best_cost = cost
                best_candidate = candidate
        if best_candidate is None:
            return None  # everything is already at the root
        targets = best_candidate

    return AbstractionFunction.uniform(
        tree, example, {v: t for v, t in targets.items() if t != v}
    )


def compression_baseline(
    example: KExample,
    tree: AbstractionTree,
    threshold: int,
    privacy_config: PrivacyConfig | None = None,
    distribution=None,
) -> OptimalAbstractionResult:
    """Run [24] black-box with decreasing size targets until privacy >= k."""
    dist = distribution or UniformDistribution()
    computer = PrivacyComputer(tree, example.registry, privacy_config)
    stats = OptimizerStats()
    start_time = clock.perf_counter()

    n_vars = len(example.variables())
    for target_size in range(n_vars, 0, -1):
        function = compress_to_size(example, tree, target_size, dist)
        if function is None:
            continue
        stats.candidates_scanned += 1
        abstracted = function.apply(example)
        stats.privacy_computations += 1
        try:
            privacy = computer.compute(abstracted, threshold)
        except OptimizationError:
            stats.privacy_budget_exhausted += 1
            continue
        if privacy >= threshold:
            stats.elapsed_seconds = clock.perf_counter() - start_time
            return OptimalAbstractionResult(
                function=function,
                abstracted=abstracted,
                privacy=privacy,
                loi=loss_of_information(abstracted, tree, dist),
                edges_used=function.edges_used(example),
                stats=stats,
            )

    stats.elapsed_seconds = clock.perf_counter() - start_time
    return OptimalAbstractionResult(
        function=None,
        abstracted=None,
        privacy=-1,
        loi=math.inf,
        edges_used=0,
        stats=stats,
    )
