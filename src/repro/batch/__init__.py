"""Batch-parallel optimal-abstraction search.

Runs :func:`repro.core.optimizer.find_optimal_abstraction` over many
(K-example, threshold) jobs at once — serially or on a process pool —
with per-worker context caches and aggregate effort statistics.  See
``docs/PERFORMANCE.md`` for the knobs and ``repro batch-optimize`` for
the CLI front-end.
"""

from repro.batch.jobs import (
    INLINE_SPEC_KEYS,
    NAMED_SPEC_KEYS,
    BatchJob,
    BatchJobResult,
    InlineContext,
    InlineJob,
    job_from_spec,
    job_to_spec,
)
from repro.batch.optimizer import (
    BatchOptimizer,
    BatchResult,
    BatchStats,
    clear_worker_caches,
    run_batch,
    run_job,
)

__all__ = [
    "INLINE_SPEC_KEYS",
    "NAMED_SPEC_KEYS",
    "BatchJob",
    "BatchJobResult",
    "BatchOptimizer",
    "BatchResult",
    "BatchStats",
    "InlineContext",
    "InlineJob",
    "clear_worker_caches",
    "job_from_spec",
    "job_to_spec",
    "run_batch",
    "run_job",
]
