"""Batch-parallel optimal-abstraction search.

Runs :func:`repro.core.optimizer.find_optimal_abstraction` over many
(K-example, threshold) jobs at once — serially or on a process pool —
with per-worker context caches and aggregate effort statistics.  See
``docs/PERFORMANCE.md`` for the knobs and ``repro batch-optimize`` for
the CLI front-end.
"""

from repro.batch.jobs import BatchJob, BatchJobResult
from repro.batch.optimizer import (
    BatchOptimizer,
    BatchResult,
    BatchStats,
    clear_worker_caches,
    run_batch,
    run_job,
)

__all__ = [
    "BatchJob",
    "BatchJobResult",
    "BatchOptimizer",
    "BatchResult",
    "BatchStats",
    "clear_worker_caches",
    "run_batch",
    "run_job",
]
