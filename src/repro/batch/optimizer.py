"""Running many optimal-abstraction searches in parallel.

:class:`BatchOptimizer` executes a list of :class:`BatchJob` specs with a
``concurrent.futures`` process pool (or serially, in-process, for
``max_workers=1``), aggregates the per-job effort counters into
:class:`BatchStats`, and returns results in job order.

Each worker process keeps a context cache keyed by the job's
``(query_name, n_rows, n_leaves, height)``: the generated database, the
K-example, and the frozen abstraction tree — whose memoized ancestor
chains and leaf counts are exactly the tree-level caches the incremental
evaluator hits — are built once per worker and shared by every job the
worker executes.  Jobs for the same workload therefore pay the data
generation cost once, as the sequential sweep harness always did.

Stacked on the context cache is a :class:`~repro.core.privacy.PrivacySession`
cache with the same key (plus the cache-relevant privacy switches): every
cached entry of Algorithm 1 — row-option sets, prefix queries, and
connectivity verdicts — is threshold-independent, so the jobs of a
threshold sweep over one context share a single warmed session instead of
recomputing the same concretization work per threshold.  Results are
bit-identical with or without the sharing.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Sequence

from repro.batch.jobs import (
    INLINE_CONTEXT_TAG,
    BatchJob,
    BatchJobResult,
    InlineContext,
    InlineJob,
)
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyConfig, PrivacySession
from repro.errors import ReproError
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.obs import clock, spans


@dataclass
class BatchStats:
    """Aggregate effort across one batch run."""

    jobs_total: int = 0
    jobs_found: int = 0
    jobs_failed: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    job_seconds: float = 0.0  # sum of per-job search times
    candidates_scanned: int = 0
    privacy_computations: int = 0
    privacy_budget_exhausted: int = 0
    delta_evaluations: int = 0
    full_evaluations: int = 0
    functions_materialized: int = 0
    # Cross-job privacy-session reuse: jobs that attached to a session
    # warmed by an earlier job of the same context, and the row-option
    # cache traffic across all jobs.
    sessions_reused: int = 0
    row_option_cache_hits: int = 0
    row_option_cache_misses: int = 0
    # Jobs served straight from the persistent result cache (repro.store)
    # without running the optimizer at all; their effort counters stay
    # out of the aggregates above — no search happened this run.
    cache_hits: int = 0

    @property
    def parallel_speedup(self) -> float:
        """Aggregate search seconds per wall second (1.0 = serial pace)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.job_seconds / self.wall_seconds

    def summary(self) -> str:
        return (
            f"{self.jobs_total} jobs ({self.jobs_found} found, "
            f"{self.jobs_failed} failed) on {self.workers} worker"
            f"{'s' if self.workers != 1 else ''}: "
            f"{self.wall_seconds:.2f}s wall, {self.job_seconds:.2f}s of search "
            f"({self.parallel_speedup:.1f}x), "
            f"{self.candidates_scanned} candidates, "
            f"{self.privacy_computations} privacy computations, "
            f"{self.sessions_reused} warm-session jobs, "
            f"{self.cache_hits} result-cache hits"
        )


@dataclass
class BatchResult:
    """Results in job order, plus the aggregate stats."""

    results: list[BatchJobResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    def by_tag(self) -> dict[str, BatchJobResult]:
        return {r.job.tag: r for r in self.results if r.job.tag}


# Serializes cold-path context/session resolution: ``lru_cache`` runs
# its builder unlocked on concurrent misses, so without this two service
# worker threads racing on a new context could each hold a *different*
# context object than the one the cached session was built on — and trip
# the session compatibility check.  Cache hits stay cheap.
_cache_lock = threading.Lock()

# Inline-context payloads by content hash.  ``context_key`` must stay a
# small hashable tuple for the lru caches, so inline jobs register their
# payload here (in whatever process runs them — the job object carries
# it across pool boundaries) before the cache lookup resolves the hash.
# Bounded: ``run_job`` re-registers the payload from the job object on
# every call, so evicted entries reappear exactly when needed and a
# long-lived service does not retain every database ever submitted.
_inline_contexts: "OrderedDict[str, InlineContext]" = OrderedDict()
_INLINE_REGISTRY_LIMIT = 64  # >= the lru maxsize below


def _register_inline(context: InlineContext) -> None:
    key = context.content_hash()
    _inline_contexts[key] = _inline_contexts.pop(key, context)
    while len(_inline_contexts) > _INLINE_REGISTRY_LIMIT:
        _inline_contexts.popitem(last=False)


@lru_cache(maxsize=32)
def _cached_context(
    context_key: tuple, settings: ExperimentSettings, engine: str = "naive"
):
    """Process-local (db, example, tree) cache shared across a worker's jobs.

    Keyed by :meth:`BatchJob.context_key` so the job spec stays the single
    definition of what identifies a context.  Inline jobs key by content
    hash; their payload is resolved through the registry above.  The
    engine joins the key for simplicity — per-engine contexts are
    bit-identical by contract, the cache entries are merely separate.
    """
    if context_key[0] == INLINE_CONTEXT_TAG:
        return _inline_contexts[context_key[1]].build(settings, engine=engine)

    from repro.experiments.runner import prepare_context

    query_name, n_rows, n_leaves, height = context_key
    return prepare_context(
        query_name, settings, n_rows=n_rows, n_leaves=n_leaves, height=height,
        engine=engine,
    )


@lru_cache(maxsize=32)
def _cached_session(
    context_key: tuple,
    privacy: PrivacyConfig,
    settings: ExperimentSettings,
    engine: str = "naive",
) -> PrivacySession:
    """Process-local privacy-session cache stacked on ``_cached_context``.

    Algorithm 1's caches are threshold-independent, so one session serves
    every job over the same context — the whole point of the cross-job
    reuse.  The privacy config is canonicalized by the caller so jobs
    differing only in cache-*consultation* switches still share.
    """
    context = _cached_context(context_key, settings, engine)
    return PrivacySession(context.tree, context.example.registry, privacy)


def _session_for(
    context_key: tuple,
    privacy: PrivacyConfig,
    settings: ExperimentSettings,
    engine: str = "naive",
) -> PrivacySession:
    # Only the session_key() fields affect cache contents; pin the rest so
    # jobs differing in row_by_row / cache_queries land on one session.
    canonical = dataclasses.replace(privacy, row_by_row=True, cache_queries=True)
    return _cached_session(context_key, canonical, settings, engine)


def clear_worker_caches() -> None:
    """Release this process's cached contexts and privacy sessions.

    Sessions hold unbounded query-level caches for up to 32 contexts; a
    long-lived process interleaving many large serial sweeps can call
    this between batches to cap memory (worker processes die with their
    pool, so they never need it).
    """
    with _cache_lock:
        _cached_session.cache_clear()
        _cached_context.cache_clear()
        _inline_contexts.clear()
        _result_cache_for.cache_clear()


@lru_cache(maxsize=8)
def _result_cache_for(pid: int, store_path: str):
    """One :class:`ResultCache` connection per (process, store path).

    Worker processes receive the store *path* (a picklable string) and
    open their own SQLite connection on first use; WAL journaling in
    :class:`~repro.store.jobstore.JobStore` lets them all append results
    concurrently.  The pid in the key matters under the ``fork`` start
    method: a child inherits the parent's populated cache, and reusing a
    connection across fork is corruption-prone per SQLite — a fresh pid
    forces a fresh connection instead.
    """
    from repro.store import JobStore, ResultCache

    return ResultCache(JobStore(store_path))


def _cached_result_cache(store_path: str):
    return _result_cache_for(os.getpid(), store_path)


def run_job(
    job: "BatchJob | InlineJob",
    settings: ExperimentSettings,
    store_path: "str | None" = None,
) -> BatchJobResult:
    """Execute one job; never raises (failures land in ``result.error``).

    With ``store_path``, the persistent result cache is consulted first:
    a hit skips the search entirely (``result.cache_hit``), a miss runs
    it and persists the payload for every later identical job.  An
    unopenable store degrades to running uncached — callers that want a
    loud failure on a bad path validate it up front, as
    :class:`BatchOptimizer` does.
    """
    cache = None
    if store_path:
        try:
            cache = _cached_result_cache(store_path)
        except ReproError:
            cache = None
    config = job.config or OptimizerConfig(
        max_candidates=settings.max_candidates,
        max_seconds=settings.max_seconds,
    )
    # The tracer activates before the cache consult, so even a cache hit
    # records its lookup span; ``config.trace`` is an execution detail
    # (stripped from content hashes), so traced and untraced jobs share
    # cache entries — the stored payload never carries a trace.
    tracer = spans.Tracer() if config.trace else None
    with spans.activate(tracer):
        if cache is not None:
            hit = cache.lookup(job, settings)
            if hit is not None:
                if tracer is not None:
                    hit.trace = tracer.to_payload()
                return hit
        try:
            with _cache_lock:
                inline = getattr(job, "context", None)
                if inline is not None:
                    _register_inline(inline)
                with spans.span("context_build", engine=config.engine):
                    context = _cached_context(
                        job.context_key(), settings, config.engine
                    )
                with spans.span("session_build"):
                    session = _session_for(
                        job.context_key(), config.privacy, settings,
                        config.engine,
                    )
                session_reused = session.computers_attached > 0
            start = clock.perf_counter()
            with spans.span("search", threshold=job.threshold):
                result = find_optimal_abstraction(
                    context.example, context.tree, job.threshold,
                    config=config, session=session,
                )
            seconds = clock.perf_counter() - start
            targets: dict[str, str] = {}
            if result.function is not None:
                for (row_idx, occ_idx), target in result.function.assignment.items():
                    source = context.example.rows[row_idx].occurrences[occ_idx]
                    targets[source] = target
            outcome = BatchJobResult(
                job=job,
                found=result.found,
                loi=result.loi,
                privacy=result.privacy,
                edges_used=result.edges_used,
                seconds=seconds,
                stats=result.stats,
                variable_targets=targets,
                session_reused=session_reused,
                trace=tracer.to_payload() if tracer is not None else None,
            )
            if cache is not None:
                cache.store_result(job, settings, outcome)
            return outcome
        except Exception as exc:  # noqa: BLE001 - report, don't kill the pool
            failed = BatchJobResult.from_error(job, exc)
            if tracer is not None:
                failed.trace = tracer.to_payload()
            return failed


def run_job_payload(
    job: "BatchJob | InlineJob",
    settings: ExperimentSettings,
    store_path: "str | None" = None,
) -> dict:
    """:func:`run_job`, returning the JSON payload instead of the object.

    The process-pool entry point for the service's execution tier:
    results cross the pool as :meth:`BatchJobResult.to_payload` dicts —
    the same lossless representation the store and the HTTP result
    endpoint use — so transport can never carry state a consumer would
    not see.  ``run_job`` already converts job failures into error
    results; the extra guard covers everything outside its reach (a
    spec whose context JSON breaks during unpickling-adjacent setup, an
    interpreter-level error), because an exception that escaped a pool
    worker would otherwise surface as an opaque pickled traceback.
    """
    try:
        return run_job(job, settings, store_path).to_payload()
    except BaseException as exc:  # noqa: BLE001 - must cross the pool as data
        return BatchJobResult.from_error(job, exc).to_payload()


class BatchOptimizer:
    """Runs ``find_optimal_abstraction`` over many jobs at once.

    ``max_workers=1`` (the default via settings) runs serially in-process —
    deterministic and cache-friendly for tests and small sweeps;
    ``max_workers=None`` uses every core.  Workers are plain processes,
    so per-job budgets (``max_candidates``/``max_seconds``) are the
    isolation mechanism against runaway searches.

    ``store_path`` names a persistent result-cache file (see
    :mod:`repro.store`): every worker consults it before searching and
    persists fresh results into it, so repeated sweeps — across
    invocations, not just within one — do each distinct job once.
    """

    def __init__(
        self,
        settings: ExperimentSettings = DEFAULT_SETTINGS,
        max_workers: Optional[int] = None,
        store_path: Optional[str] = None,
    ):
        self._settings = settings
        self._store_path = store_path
        if store_path is not None:
            # Fail loudly on an unopenable path *now*: run_job degrades
            # to uncached execution, which would silently discard every
            # result the user asked to persist.
            _cached_result_cache(store_path)
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self._max_workers = max(1, max_workers)

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def run(self, jobs: Sequence[BatchJob]) -> BatchResult:
        """Execute ``jobs`` and aggregate their stats; results in job order."""
        jobs = list(jobs)
        workers = min(self._max_workers, max(1, len(jobs)))
        start = clock.perf_counter()
        if workers == 1:
            results = [
                run_job(job, self._settings, self._store_path) for job in jobs
            ]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(run_job, job, self._settings, self._store_path)
                    for job in jobs
                ]
                results = [future.result() for future in futures]
        wall = clock.perf_counter() - start

        stats = BatchStats(jobs_total=len(jobs), workers=workers, wall_seconds=wall)
        for result in results:
            if not result.ok:
                stats.jobs_failed += 1
                continue
            if result.found:
                stats.jobs_found += 1
            if result.cache_hit:
                # No search ran: the payload's counters describe the
                # original (cached) run, not effort spent here.
                stats.cache_hits += 1
                continue
            stats.job_seconds += result.seconds
            stats.candidates_scanned += result.stats.candidates_scanned
            stats.privacy_computations += result.stats.privacy_computations
            stats.privacy_budget_exhausted += result.stats.privacy_budget_exhausted
            stats.delta_evaluations += result.stats.delta_evaluations
            stats.full_evaluations += result.stats.full_evaluations
            stats.functions_materialized += result.stats.functions_materialized
            stats.sessions_reused += int(result.session_reused)
            stats.row_option_cache_hits += result.stats.row_option_cache_hits
            stats.row_option_cache_misses += result.stats.row_option_cache_misses
        return BatchResult(results=results, stats=stats)


def run_batch(
    jobs: Sequence[BatchJob],
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    max_workers: Optional[int] = None,
    store_path: Optional[str] = None,
) -> BatchResult:
    """Convenience wrapper: one-shot :class:`BatchOptimizer` run."""
    return BatchOptimizer(
        settings, max_workers=max_workers, store_path=store_path
    ).run(jobs)
