"""Picklable job specifications for the batch optimizer.

A :class:`BatchJob` names everything one ``find_optimal_abstraction`` run
needs — the workload query, the K-example/tree shape, the privacy
threshold, and an optional per-job :class:`OptimizerConfig` budget —
without holding any live objects, so jobs cross process boundaries
cheaply.  Workers rebuild the (database, example, tree) context from the
spec and share it across the jobs they execute.

An :class:`InlineJob` is the user-supplied counterpart: instead of a
workload name it carries an :class:`InlineContext` — the ``optimize``
subcommand's inputs (database, tree, query or K-example) serialized to
canonical JSON text — so arbitrary jobs stay picklable and are cached by
workers under a content hash exactly like the named contexts.

:func:`job_from_spec` turns one JSON job spec (named or inline) into the
matching job object, validating every key; it is the single parser behind
``repro batch-optimize --jobs``, ``repro submit``, and the job service.

A :class:`BatchJobResult` carries the outcome back the same way: scalars
and the per-variable abstraction targets rather than live
``AbstractionFunction`` objects (rebuild one with :meth:`BatchJobResult.function`).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import traceback
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.optimizer import OptimizerConfig, OptimizerStats
from repro.errors import JobSpecError
from repro.store.hashing import KNOWN_MODES, canonical_json, hash_parts


@dataclass(frozen=True)
class BatchJob:
    """One optimal-abstraction search over a named experiment workload.

    ``query_name`` is a workload name understood by
    :func:`repro.experiments.runner.prepare_context` (e.g. ``"TPCH-Q3"``,
    ``"IMDB-Q1"``).  ``n_rows``/``n_leaves``/``height`` override the
    settings defaults, mirroring ``prepare_context``; ``config`` overrides
    the per-job search budget (defaults to the settings' budgets).
    ``tag`` is a caller-chosen label echoed in the result.
    """

    query_name: str
    threshold: int
    n_rows: Optional[int] = None
    n_leaves: Optional[int] = None
    height: Optional[int] = None
    config: Optional[OptimizerConfig] = None
    tag: str = ""

    def context_key(self) -> tuple:
        """The part of the spec that determines the (db, example, tree)."""
        return (self.query_name, self.n_rows, self.n_leaves, self.height)


#: First element of an inline job's ``context_key`` — lets the worker
#: context cache route it to the registered payload instead of the
#: named-workload generator.
INLINE_CONTEXT_TAG = "__inline__"


# Canonical JSON text, so equal payloads hash equally (the shared
# definition in repro.store.hashing, which the result cache keys on too).
_canonical = canonical_json


@dataclass(frozen=True)
class InlineContext:
    """A user-supplied (database, tree, query/K-example) job context.

    The fields are canonical JSON *text* (plus the query's datalog text),
    so the spec is hashable, picklable, and content-addressable:
    :meth:`content_hash` keys the per-worker context and privacy-session
    caches, meaning a stream of jobs over the same user data shares one
    warm context exactly like the named workloads do.  Exactly one of
    ``query`` / ``kexample_json`` must be set; :meth:`build` rebuilds the
    live objects the same way ``repro optimize`` loads them.
    """

    database_json: str
    tree_json: str
    query: Optional[str] = None
    kexample_json: Optional[str] = None
    n_rows: int = 2
    # The evaluation engine :meth:`build` uses when it must construct the
    # K-example from ``query``.  Execution detail: not part of
    # :meth:`content_hash` (every engine builds a bit-identical example).
    engine: str = "naive"

    @classmethod
    def from_objects(cls, database, tree, query=None, kexample=None,
                     n_rows: int = 2, engine: str = "naive") -> "InlineContext":
        """Serialize live objects into a spec (inverse of :meth:`build`)."""
        from repro.io.json_io import (
            database_to_json, kexample_to_json, tree_to_json,
        )

        return cls(
            database_json=_canonical(database_to_json(database)),
            tree_json=_canonical(tree_to_json(tree)),
            query=query,
            kexample_json=(
                _canonical(kexample_to_json(kexample))
                if kexample is not None else None
            ),
            n_rows=n_rows,
            engine=engine,
        )

    def content_hash(self) -> str:
        """Hex digest identifying this context's content.

        Memoized on the instance (all inputs are frozen): with a store
        attached the hash is consulted on submit persistence, cache
        lookup, cache store, and every ``query_name`` in a status
        listing, and re-digesting a multi-megabyte database JSON each
        time would put linear work on the service's hot path.
        """
        digest = self.__dict__.get("_content_hash")
        if digest is None:
            digest = hash_parts(
                self.database_json, self.tree_json, self.query or "",
                self.kexample_json or "", str(self.n_rows),
            )
            object.__setattr__(self, "_content_hash", digest)
        return digest

    def build(self, settings, engine: Optional[str] = None):
        """Rebuild the live context exactly as ``repro optimize`` does.

        ``engine`` overrides the spec's engine for this build (the job
        runner passes the effective config's engine through); either way
        the resulting context is bit-identical.
        """
        from repro.experiments.runner import ExperimentContext
        from repro.io.json_io import (
            database_from_json, kexample_from_json, tree_from_json,
        )
        from repro.provenance.builder import build_kexample
        from repro.query.parser import parse_cq

        database = database_from_json(json.loads(self.database_json))
        tree = tree_from_json(json.loads(self.tree_json))
        query = parse_cq(self.query) if self.query else None
        if self.kexample_json is not None:
            example = kexample_from_json(json.loads(self.kexample_json), database)
        else:
            example = build_kexample(
                query, database, n_rows=self.n_rows,
                engine=engine if engine is not None else self.engine,
            )
        return ExperimentContext(
            query_name=f"inline:{self.content_hash()[:12]}",
            query=query,
            database=database,
            example=example,
            tree=tree,
            settings=settings,
        )


@dataclass(frozen=True)
class InlineJob:
    """One optimal-abstraction search over a user-supplied context.

    Mirrors :class:`BatchJob` (threshold, optional per-job config, tag)
    but carries the whole context inline, so it runs through the same
    workers, caches, and result type.
    """

    context: InlineContext
    threshold: int
    config: Optional[OptimizerConfig] = None
    tag: str = ""

    @property
    def query_name(self) -> str:
        """A stable label standing in for the workload name."""
        return f"inline:{self.context.content_hash()[:12]}"

    def context_key(self) -> tuple:
        return (INLINE_CONTEXT_TAG, self.context.content_hash())


#: Every key a named-workload job spec may carry.
NAMED_SPEC_KEYS = frozenset({
    "query_name", "threshold", "n_rows", "n_leaves", "height", "tag",
    "max_candidates", "max_seconds", "mode",
})

#: Every key an inline-context job spec may carry.
INLINE_SPEC_KEYS = frozenset({
    "database", "tree", "query", "kexample", "threshold", "n_rows", "tag",
    "max_candidates", "max_seconds", "mode",
})


def _as_int(value, key: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise JobSpecError(
            f"{key!r} must be an integer, got {value!r}"
        ) from None


def _config_from_spec(
    spec: dict, base_config: Optional[OptimizerConfig]
) -> Optional[OptimizerConfig]:
    """A per-job config when the spec sets budget keys, else ``None``.

    Unset budget keys inherit from ``base_config`` (the settings-level
    budgets), so a spec overriding only ``max_candidates`` keeps the
    global ``max_seconds``.
    """
    if "max_candidates" not in spec and "max_seconds" not in spec:
        return None
    overrides: dict = {}
    if "max_candidates" in spec:
        overrides["max_candidates"] = _as_int(spec["max_candidates"], "max_candidates")
    if "max_seconds" in spec:
        try:
            overrides["max_seconds"] = float(spec["max_seconds"])
        except (TypeError, ValueError):
            raise JobSpecError(
                f"'max_seconds' must be a number, got {spec['max_seconds']!r}"
            ) from None
    return dataclasses.replace(base_config or OptimizerConfig(), **overrides)


def job_from_spec(
    spec: dict,
    *,
    default_rows: Optional[int] = None,
    base_config: Optional[OptimizerConfig] = None,
) -> "Union[BatchJob, InlineJob]":
    """Build a job from one JSON spec, validating every key.

    A spec with any of ``database``/``tree``/``query``/``kexample`` is an
    inline-context job; otherwise it must name a workload via
    ``query_name``.  Unknown keys raise :class:`JobSpecError` naming the
    key (a typo must not silently run a default job), as do missing
    required keys and mistyped values.
    """
    if not isinstance(spec, dict):
        raise JobSpecError(
            f"job spec must be a JSON object, got {type(spec).__name__}"
        )
    inline = any(k in spec for k in ("database", "tree", "query", "kexample"))
    known = INLINE_SPEC_KEYS if inline else NAMED_SPEC_KEYS
    for key in spec:
        if key not in known:
            kind = "inline" if inline else "named-workload"
            raise JobSpecError(
                f"unknown job-spec key {key!r} "
                f"(known {kind} keys: {', '.join(sorted(known))})"
            )
    if "threshold" not in spec:
        raise JobSpecError("job spec needs a 'threshold'")
    # The 'mode' slot is reserved for the dual search.  Specs may say
    # "primal" explicitly (forward compatibility), but anything else must
    # be rejected here, naming the field: silently running an unknown
    # mode as a primal search would cache the wrong result under the
    # dual job's future hash.
    mode = spec.get("mode", "primal")
    if mode not in KNOWN_MODES:
        raise JobSpecError(
            f"unknown job-spec 'mode' {mode!r} "
            f"(known modes: {', '.join(KNOWN_MODES)})"
        )
    threshold = _as_int(spec["threshold"], "threshold")
    config = _config_from_spec(spec, base_config)
    tag = str(spec.get("tag", ""))
    n_rows = spec.get("n_rows", default_rows)
    if n_rows is not None:
        n_rows = _as_int(n_rows, "n_rows")

    if inline:
        missing = [k for k in ("database", "tree") if k not in spec]
        if missing:
            raise JobSpecError(
                f"inline job spec needs {' and '.join(repr(k) for k in missing)}"
            )
        if ("query" in spec) == ("kexample" in spec):
            raise JobSpecError(
                "inline job spec needs exactly one of 'query' or 'kexample'"
            )
        context = InlineContext(
            database_json=_canonical(spec["database"]),
            tree_json=_canonical(spec["tree"]),
            query=spec.get("query"),
            kexample_json=(
                _canonical(spec["kexample"]) if "kexample" in spec else None
            ),
            n_rows=n_rows if n_rows is not None else 2,
        )
        return InlineJob(
            context=context, threshold=threshold, config=config, tag=tag
        )

    if "query_name" not in spec:
        raise JobSpecError("job spec needs 'query_name' and 'threshold'")
    return BatchJob(
        query_name=str(spec["query_name"]),
        threshold=threshold,
        n_rows=n_rows,
        n_leaves=spec.get("n_leaves"),
        height=spec.get("height"),
        config=config,
        tag=tag,
    )


def job_to_spec(job: "Union[BatchJob, InlineJob]") -> dict:
    """Serialize a job back into a JSON spec (inverse of :func:`job_from_spec`).

    This is what the persistent job store writes, so a queued job
    survives a restart as re-parseable input: for any spec-built job,
    ``job_from_spec(job_to_spec(job), base_config=same_base)`` rebuilds
    an equal job.  A hand-built ``config`` is represented by its budget
    keys (``max_candidates``/``max_seconds``) — the only config fields a
    spec can express; ``None`` budgets are omitted, matching the spec
    grammar, which has no null values.
    """
    spec: dict = {"threshold": job.threshold}
    context = getattr(job, "context", None)
    if context is not None:
        spec["database"] = json.loads(context.database_json)
        spec["tree"] = json.loads(context.tree_json)
        if context.query is not None:
            spec["query"] = context.query
        else:
            spec["kexample"] = json.loads(context.kexample_json)
        spec["n_rows"] = context.n_rows
    else:
        spec["query_name"] = job.query_name
        for key in ("n_rows", "n_leaves", "height"):
            value = getattr(job, key)
            if value is not None:
                spec[key] = value
    if job.tag:
        spec["tag"] = job.tag
    if job.config is not None:
        if job.config.max_candidates is not None:
            spec["max_candidates"] = job.config.max_candidates
        if job.config.max_seconds is not None:
            spec["max_seconds"] = job.config.max_seconds
    return spec


def config_to_payload(config: OptimizerConfig) -> dict:
    """An :class:`OptimizerConfig` as a lossless JSON-safe dict.

    The job-spec grammar can only express the budget keys; the fleet's
    claim descriptors need the *whole* effective config on the wire —
    every switch, the privacy sub-config included — so a remote worker
    runs exactly the config the service hashed, not a reconstruction.
    The encoding is :func:`repro.store.hashing.jsonable`'s (nested
    dataclasses become sorted dicts, enums their values), which is also
    what content hashing digests — by construction, what survives
    transport is what was hashed.
    """
    from repro.store.hashing import jsonable

    return jsonable(config)


def _dataclass_from_payload(cls, payload, field_builders):
    """Rebuild dataclass ``cls`` from a ``jsonable`` dict, strictly.

    ``field_builders`` maps field names needing more than the raw JSON
    value (nested dataclasses, enums) to a callable.  Unknown keys raise
    :class:`TypeError` — a worker on a different code version must fail
    visibly, not run a silently-defaulted config.
    """
    if not isinstance(payload, dict):
        raise TypeError(
            f"{cls.__name__} payload must be an object, "
            f"got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise TypeError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}"
        )
    kwargs = {
        name: field_builders.get(name, lambda v: v)(value)
        for name, value in payload.items()
    }
    return cls(**kwargs)


def config_from_payload(payload: dict) -> OptimizerConfig:
    """The inverse of :func:`config_to_payload` (strict; see there)."""
    from repro.core.consistency import ConsistencyConfig
    from repro.core.privacy import PrivacyConfig
    from repro.semirings.base import SemiringName

    return _dataclass_from_payload(
        OptimizerConfig, payload, {
            "privacy": lambda value: _dataclass_from_payload(
                PrivacyConfig, value, {
                    "consistency": lambda sub: _dataclass_from_payload(
                        ConsistencyConfig, sub,
                        {"semiring": SemiringName},
                    ),
                },
            ),
        },
    )


def _traceback_summary(exc: BaseException, limit: int = 3) -> str:
    """The innermost frames of ``exc``'s traceback, compactly.

    Worker processes report failures as error *strings* (the payload is
    JSON), so the location must be baked into the message for a failing
    job to stay debuggable from ``/status`` — innermost frame first,
    basenames only.
    """
    frames = traceback.extract_tb(exc.__traceback__)
    return " <- ".join(
        f"{os.path.basename(frame.filename)}:{frame.lineno} in {frame.name}"
        for frame in reversed(frames[-limit:])
    )


@dataclass
class BatchJobResult:
    """The outcome of one batch job, in picklable scalar form."""

    job: "Union[BatchJob, InlineJob]"
    found: bool = False
    loi: float = float("inf")
    privacy: int = -1
    edges_used: int = 0
    seconds: float = 0.0
    stats: OptimizerStats = field(default_factory=OptimizerStats)
    # The optimal abstraction as {variable: target label} (uniform per
    # variable, as Algorithm 2 produces); empty when not found.
    variable_targets: dict[str, str] = field(default_factory=dict)
    # Whether this job attached to a privacy session already warmed by an
    # earlier job of the same worker (same context + privacy switches).
    session_reused: bool = False
    # Whether this result was served from the content-addressed result
    # cache (repro.store) instead of running the optimizer.
    cache_hit: bool = False
    # Span records from repro.obs.spans when the job ran with
    # ``config.trace`` on; ``None`` otherwise.  Volatile observability
    # data: excluded from result hashes and payload-equivalence checks,
    # but carried losslessly across the pool/store/HTTP round trips.
    trace: Optional[list] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def from_error(
        cls, job: "Union[BatchJob, InlineJob]", exc: BaseException
    ) -> "BatchJobResult":
        """A failed result whose error keeps the traceback summary.

        The single formatter behind every execution tier (in-process
        ``run_job``, pool workers, the service), so an error reads the
        same wherever the job ran — and survives the JSON payload round
        trip intact, traceback summary included.
        """
        where = _traceback_summary(exc)
        message = f"{type(exc).__name__}: {exc}"
        return cls(job=job, error=f"{message} [{where}]" if where else message)

    def function(self, tree, example):
        """Rebuild the optimal :class:`AbstractionFunction` in-process."""
        from repro.abstraction.function import AbstractionFunction

        if not self.found:
            return None
        return AbstractionFunction.uniform(tree, example, self.variable_targets)

    def to_payload(self) -> dict:
        """A JSON-ready dict of the full outcome, audit counters included.

        Shared by ``batch-optimize --output`` and the job service's result
        endpoint, so sweep results can always be audited for cache reuse
        (``session_reused`` plus the :class:`OptimizerStats` counters).
        """
        return {
            "query_name": self.job.query_name,
            "threshold": self.job.threshold,
            "tag": self.job.tag,
            "found": self.found,
            "privacy": self.privacy,
            # JSON has no Infinity: an unbounded LOI (nothing found)
            # crosses as null and from_payload restores math.inf.
            "loi": self.loi if math.isfinite(self.loi) else None,
            "edges_used": self.edges_used,
            "seconds": self.seconds,
            "variable_targets": self.variable_targets,
            "session_reused": self.session_reused,
            "cache_hit": self.cache_hit,
            "stats": dataclasses.asdict(self.stats),
            "trace": self.trace,
            "error": self.error,
        }

    @classmethod
    def from_payload(
        cls, payload: dict, job: "Union[BatchJob, InlineJob]"
    ) -> "BatchJobResult":
        """Rebuild a result from :meth:`to_payload` output, losslessly.

        ``job`` supplies the spec side (the payload carries only its
        display fields); everything else round-trips bit-identically —
        ``to_payload()`` of the rebuilt result equals ``payload``.  The
        :class:`OptimizerStats` counters are matched by field name so a
        payload written by a newer code version (extra counters) still
        loads; absent counters keep their zero defaults.
        """
        known = {f.name for f in dataclasses.fields(OptimizerStats)}
        stats = OptimizerStats(**{
            key: value
            for key, value in (payload.get("stats") or {}).items()
            if key in known
        })
        loi = payload.get("loi")
        return cls(
            job=job,
            found=bool(payload.get("found", False)),
            loi=math.inf if loi is None else loi,
            privacy=payload.get("privacy", -1),
            edges_used=payload.get("edges_used", 0),
            seconds=payload.get("seconds", 0.0),
            stats=stats,
            variable_targets=dict(payload.get("variable_targets") or {}),
            session_reused=bool(payload.get("session_reused", False)),
            cache_hit=bool(payload.get("cache_hit", False)),
            trace=payload.get("trace"),
            error=payload.get("error"),
        )
