"""Picklable job specifications for the batch optimizer.

A :class:`BatchJob` names everything one ``find_optimal_abstraction`` run
needs — the workload query, the K-example/tree shape, the privacy
threshold, and an optional per-job :class:`OptimizerConfig` budget —
without holding any live objects, so jobs cross process boundaries
cheaply.  Workers rebuild the (database, example, tree) context from the
spec and share it across the jobs they execute.

A :class:`BatchJobResult` carries the outcome back the same way: scalars
and the per-variable abstraction targets rather than live
``AbstractionFunction`` objects (rebuild one with :meth:`BatchJobResult.function`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.optimizer import OptimizerConfig, OptimizerStats


@dataclass(frozen=True)
class BatchJob:
    """One optimal-abstraction search over a named experiment workload.

    ``query_name`` is a workload name understood by
    :func:`repro.experiments.runner.prepare_context` (e.g. ``"TPCH-Q3"``,
    ``"IMDB-Q1"``).  ``n_rows``/``n_leaves``/``height`` override the
    settings defaults, mirroring ``prepare_context``; ``config`` overrides
    the per-job search budget (defaults to the settings' budgets).
    ``tag`` is a caller-chosen label echoed in the result.
    """

    query_name: str
    threshold: int
    n_rows: Optional[int] = None
    n_leaves: Optional[int] = None
    height: Optional[int] = None
    config: Optional[OptimizerConfig] = None
    tag: str = ""

    def context_key(self) -> tuple:
        """The part of the spec that determines the (db, example, tree)."""
        return (self.query_name, self.n_rows, self.n_leaves, self.height)


@dataclass
class BatchJobResult:
    """The outcome of one batch job, in picklable scalar form."""

    job: BatchJob
    found: bool = False
    loi: float = float("inf")
    privacy: int = -1
    edges_used: int = 0
    seconds: float = 0.0
    stats: OptimizerStats = field(default_factory=OptimizerStats)
    # The optimal abstraction as {variable: target label} (uniform per
    # variable, as Algorithm 2 produces); empty when not found.
    variable_targets: dict[str, str] = field(default_factory=dict)
    # Whether this job attached to a privacy session already warmed by an
    # earlier job of the same worker (same context + privacy switches).
    session_reused: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def function(self, tree, example):
        """Rebuild the optimal :class:`AbstractionFunction` in-process."""
        from repro.abstraction.function import AbstractionFunction

        if not self.found:
            return None
        return AbstractionFunction.uniform(tree, example, self.variable_targets)
