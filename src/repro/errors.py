"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` and friends) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, attribute, or tuple does not match the declared schema."""


class ParseError(ReproError):
    """A datalog query string could not be parsed."""


class EvaluationError(ReproError):
    """A query could not be evaluated over the given K-database."""


class AbstractionError(ReproError):
    """An abstraction tree or abstraction function is ill-formed.

    Raised, e.g., when a tree is incompatible with a K-example
    (Definition 2.6) or when an abstraction function maps a variable to a
    non-ancestor node (Definition 3.1).
    """


class SemiringError(ReproError):
    """An operation is not supported by the chosen provenance semiring."""


class OptimizationError(ReproError):
    """The optimizer was configured inconsistently or exhausted its budget."""


class JobSpecError(ReproError):
    """A batch/service job spec is malformed (unknown or missing fields)."""


class ServiceError(ReproError):
    """The job service rejected a request or could not be reached."""


class RequestError(ServiceError):
    """A wire request was malformed (bad JSON, wrong shape, missing
    fields) — the v1 ``invalid_request`` error code."""


class JobNotFoundError(ServiceError):
    """The named job id is unknown to the service (v1 ``unknown_job``)."""


class ResultNotReadyError(ServiceError):
    """The job exists but is not terminal yet (v1 ``result_not_ready``)."""


class QueueFullError(ServiceError):
    """The service's bounded queue rejected a submission (v1
    ``queue_full``); poll for results and retry."""


class LeaseLostError(ServiceError):
    """A fleet worker acted on a job lease it no longer holds — the
    lease expired and was requeued, or another worker owns it (v1
    ``lease_lost``).  The worker must drop the job without completing."""


class NotRemoteError(ServiceError):
    """A worker endpoint was called on a service whose executor is not
    ``remote`` (v1 ``not_remote``) — there is no fleet to join."""


class ScenarioError(ReproError):
    """A scenario matrix or benchmark snapshot is malformed."""


class AnalysisError(ReproError):
    """The static-analysis suite was misconfigured or could not run.

    Raised for unknown rule ids, unreadable paths, and unparseable
    sources — *not* for findings (findings are data, and ``repro lint``
    reports them with exit code 1; this error maps to exit code 2 like
    every other library failure).
    """
