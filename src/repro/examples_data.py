"""The paper's running example (Figures 1-6) as a reusable fixture.

Used by the quickstart example, the Table 3 reproduction, and the test
suite: the Interests/Hobbies/Persons database, the four queries of Table 1,
and the abstraction tree of Figure 3.
"""

from __future__ import annotations

from repro.abstraction.builders import tree_from_categories
from repro.abstraction.tree import AbstractionTree
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.query.ast import CQ
from repro.query.parser import parse_cq

RUNNING_EXAMPLE_SCHEMA = Schema.from_dict({
    "Person": ["pid", "name", "age"],
    "Hobbies": ["pid", "hobby", "source"],
    "Interests": ["pid", "interest", "source"],
})

#: The queries of Table 1.
Q_REAL = parse_cq(
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1),"
    " Interests(id, 'Music', src2)"
)
Q_FALSE_1 = parse_cq(
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Trips', src1),"
    " Interests(id, 'Music', src2)"
)
Q_FALSE_2 = parse_cq(
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1),"
    " Interests(id, 'Parties', src2)"
)
Q_GENERAL = parse_cq(
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1),"
    " Interests(id, interest, src2)"
)


def running_example_db() -> KDatabase:
    """The database instance of Figure 1."""
    db = KDatabase(RUNNING_EXAMPLE_SCHEMA)
    rows = {
        "Interests": [
            ("i1", (1, "Music", "WikiLeaks")),
            ("i2", (2, "Music", "Facebook")),
            ("i3", (3, "Music", "LinkedIn")),
            ("i4", (1, "Parties", "WikiLeaks")),
            ("i5", (2, "Parties", "Facebook")),
            ("i6", (4, "Movies", "WikiLeaks")),
        ],
        "Hobbies": [
            ("h1", (1, "Dance", "Facebook")),
            ("h2", (2, "Dance", "LinkedIn")),
            ("h3", (4, "Dance", "Facebook")),
            ("h4", (1, "Trips", "Facebook")),
            ("h5", (2, "Trips", "LinkedIn")),
            ("h6", (3, "Trips", "WikiLeaks")),
        ],
        "Person": [
            ("p1", (1, "James T", 27)),
            ("p2", (2, "Brenda P", 31)),
        ],
    }
    for relation, tuples in rows.items():
        for annotation, values in tuples:
            db.insert(relation, values, annotation)
    return db


def running_example_tree() -> AbstractionTree:
    """The abstraction tree of Figure 3."""
    return tree_from_categories({
        "WikiLeaks": ["i6", "i4", "i1", "h6"],
        "Social Network": {
            "LinkedIn": ["i3", "h5", "h2"],
            "Facebook": ["i5", "i2", "h4", "h3", "h1"],
        },
    })


def running_example() -> tuple[KDatabase, CQ, AbstractionTree]:
    """``(database, Q_real, tree)`` — everything Example 1.1 needs."""
    return running_example_db(), Q_REAL, running_example_tree()
