"""Annotated tuples: the atoms of a K-database.

A :class:`Tuple` carries its relation name, its values, and its provenance
annotation (the variable from ``X`` identifying it — databases used as
query inputs are *abstractly tagged*, i.e. every tuple has a distinct
annotation).
"""

from __future__ import annotations

from typing import Any


class Tuple:
    """An annotated database tuple, e.g. ``h1: Hobbies(1, 'Dance', 'Facebook')``."""

    __slots__ = ("_relation", "_values", "_annotation", "_hash")

    def __init__(self, relation: str, values: tuple, annotation: str):
        self._relation = str(relation)
        self._values = tuple(values)
        self._annotation = str(annotation)
        self._hash = hash((self._relation, self._values, self._annotation))

    @property
    def relation(self) -> str:
        return self._relation

    @property
    def values(self) -> tuple:
        return self._values

    @property
    def annotation(self) -> str:
        return self._annotation

    @property
    def arity(self) -> int:
        return len(self._values)

    def value_set(self) -> frozenset[Any]:
        """The set of constants appearing in the tuple.

        Used by the concretization-connectivity filter: two tuples are
        adjacent iff their value sets intersect.
        """
        return frozenset(self._values)

    def __getitem__(self, index: int) -> Any:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tuple)
            and self._relation == other._relation
            and self._values == other._values
            and self._annotation == other._annotation
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(repr(v) for v in self._values)
        return f"{self._annotation}: {self._relation}({body})"
