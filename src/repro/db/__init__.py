"""Relational substrate: schemas, annotated tuples, and K-databases."""

from repro.db.database import AnnotationRegistry, KDatabase, KRelation
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Tuple

__all__ = [
    "AnnotationRegistry",
    "KDatabase",
    "KRelation",
    "RelationSchema",
    "Schema",
    "Tuple",
]
