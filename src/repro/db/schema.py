"""Database schemas: relation names and attribute lists.

Schemas are deliberately lightweight — attribute names plus arity are all
the query machinery needs.  Values are ordinary hashable Python objects
(strings and numbers in the bundled datasets).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import SchemaError


class RelationSchema:
    """A relation name together with its ordered attribute names."""

    __slots__ = ("_name", "_attributes", "_index")

    def __init__(self, name: str, attributes: Iterable[str]):
        self._name = str(name)
        self._attributes = tuple(str(a) for a in attributes)
        if len(set(self._attributes)) != len(self._attributes):
            raise SchemaError(
                f"duplicate attribute names in relation {name!r}: "
                f"{self._attributes}"
            )
        self._index = {attr: i for i, attr in enumerate(self._attributes)}

    @property
    def name(self) -> str:
        return self._name

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def arity(self) -> int:
        return len(self._attributes)

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` within the relation."""
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {attribute!r}"
            ) from None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self._name == other._name
            and self._attributes == other._attributes
        )

    def __hash__(self) -> int:
        return hash((self._name, self._attributes))

    def __repr__(self) -> str:
        return f"{self._name}({', '.join(self._attributes)})"


class Schema:
    """A collection of relation schemas keyed by relation name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for rel in relations:
            self.add(rel)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Iterable[str]]) -> "Schema":
        """Build a schema from ``{"R": ["a", "b"], ...}``."""
        return cls(RelationSchema(name, attrs) for name, attrs in spec.items())

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(map(repr, self._relations.values())) + ")"
