"""K-databases: collections of annotated relations with lookup indexes.

The :class:`KDatabase` is the substrate every other subsystem builds on:
the evaluator joins over its per-column indexes, the abstraction machinery
resolves annotations back to tuples through its :class:`AnnotationRegistry`,
and the dataset generators populate it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any, Optional

from repro.errors import SchemaError
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Tuple


class KRelation:
    """An annotated relation: an ordered list of tuples plus a column index."""

    __slots__ = ("_schema", "_tuples", "_column_index")

    def __init__(self, schema: RelationSchema):
        self._schema = schema
        self._tuples: list[Tuple] = []
        # column position -> value -> list of tuples with that value there
        self._column_index: list[dict[Any, list[Tuple]]] = [
            {} for _ in range(schema.arity)
        ]

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    def add(self, tup: Tuple) -> None:
        if tup.relation != self._schema.name:
            raise SchemaError(
                f"tuple for relation {tup.relation!r} added to {self.name!r}"
            )
        if tup.arity != self._schema.arity:
            raise SchemaError(
                f"arity mismatch for {self.name!r}: expected "
                f"{self._schema.arity}, got {tup.arity}"
            )
        self._tuples.append(tup)
        for pos, value in enumerate(tup.values):
            self._column_index[pos].setdefault(value, []).append(tup)

    def matching(self, bindings: dict[int, Any]) -> Iterator[Tuple]:
        """Tuples whose value at each position in ``bindings`` matches.

        Picks the most selective bound column as the driver; an empty
        ``bindings`` scans the whole relation.
        """
        if not bindings:
            yield from self._tuples
            return
        best_pos = min(
            bindings,
            key=lambda pos: len(self._column_index[pos].get(bindings[pos], ())),
        )
        for tup in self._column_index[best_pos].get(bindings[best_pos], ()):
            if all(tup.values[pos] == val for pos, val in bindings.items()):
                yield tup

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __repr__(self) -> str:
        return f"KRelation({self._schema!r}, {len(self._tuples)} tuples)"


class AnnotationRegistry:
    """Bidirectional map between annotations and the tuples they tag."""

    __slots__ = ("_by_annotation",)

    def __init__(self) -> None:
        self._by_annotation: dict[str, Tuple] = {}

    def register(self, tup: Tuple) -> None:
        existing = self._by_annotation.get(tup.annotation)
        if existing is not None and existing != tup:
            raise SchemaError(
                f"annotation {tup.annotation!r} already tags {existing!r}; "
                "input databases must be abstractly tagged"
            )
        self._by_annotation[tup.annotation] = tup

    def resolve(self, annotation: str) -> Tuple:
        try:
            return self._by_annotation[annotation]
        except KeyError:
            raise SchemaError(f"unknown annotation {annotation!r}") from None

    def resolve_or_none(self, annotation: str) -> Optional[Tuple]:
        return self._by_annotation.get(annotation)

    def annotations(self) -> frozenset[str]:
        return frozenset(self._by_annotation)

    def __contains__(self, annotation: str) -> bool:
        return annotation in self._by_annotation

    def __len__(self) -> int:
        return len(self._by_annotation)


class KDatabase:
    """An abstractly-tagged K-database over a schema.

    Every tuple carries a distinct annotation; the registry resolves
    annotations back to tuples, which is what lets concretizations of an
    abstracted K-example be interpreted as real database content.
    """

    __slots__ = ("_schema", "_relations", "_registry", "_auto_counter")

    def __init__(self, schema: Schema):
        self._schema = schema
        self._relations: dict[str, KRelation] = {
            rel.name: KRelation(rel) for rel in schema
        }
        self._registry = AnnotationRegistry()
        self._auto_counter = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def registry(self) -> AnnotationRegistry:
        return self._registry

    def relation(self, name: str) -> KRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def insert(
        self,
        relation: str,
        values: Iterable[Any],
        annotation: Optional[str] = None,
    ) -> Tuple:
        """Insert a tuple, auto-generating an annotation if none is given."""
        if annotation is None:
            self._auto_counter += 1
            annotation = f"t{self._auto_counter}"
        tup = Tuple(relation, tuple(values), annotation)
        self.relation(relation).add(tup)
        self._registry.register(tup)
        return tup

    def scan(
        self, relation: str, bindings: Optional[dict[int, Any]] = None
    ) -> Iterator[Tuple]:
        """Tuples of ``relation`` matching ``bindings`` (insertion order).

        The sanctioned read path for code outside the engine and db
        layers: REP006 (``engine_discipline``) bans direct
        ``KRelation.matching`` calls and relation iteration elsewhere so
        evaluation strategy stays the engine tier's concern.
        """
        return self.relation(relation).matching(bindings or {})

    def tuples(self) -> Iterator[Tuple]:
        """All tuples across all relations."""
        for rel in self._relations.values():
            yield from rel

    def annotations(self) -> frozenset[str]:
        return self._registry.annotations()

    def resolve(self, annotation: str) -> Tuple:
        return self._registry.resolve(annotation)

    def total_tuples(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={len(rel)}" for name, rel in self._relations.items()
        )
        return f"KDatabase({sizes})"
