"""The ``repro`` command-line interface.

Workflow: keep the database as a directory of CSV files (or one JSON file),
the abstraction tree as JSON, and the query as datalog text; then::

    python -m repro.cli optimize \
        --database data/ --tree tree.json \
        --query "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', s)" \
        --threshold 2 --rows 2 --output result.json

Subcommands
-----------
``optimize``        find the optimal abstraction (Algorithm 2)
``batch-optimize``  run many optimizer jobs in parallel over the
                    experiment workloads or inline contexts (``repro.batch``)
``serve``           run the long-lived job service (``repro.service``);
                    ``--store PATH`` makes it durable and dedup-ing
``submit``          send jobs to a running service
``worker``          join a ``--executor remote`` service's fleet: claim
                    leased jobs over the v1 protocol, run them here,
                    deliver lossless result payloads back
``poll``            poll job status/results or service stats
``jobs``            inspect or prune a persistent job store
                    (``list`` / ``show`` / ``gc``, see ``repro.store``)
``scenarios``       run / list / diff the seeded scenario matrix and its
                    ``BENCH_scenarios.json`` snapshots (``repro.scenarios``)
``lint``            run the invariant-enforcing static-analysis suite
                    (``repro.analysis``); exit 1 on findings, 0 when clean
``trace``           inspect ``repro-trace-v1`` JSONL files written by
                    ``--trace-file`` (``show`` / ``summary``,
                    see ``repro.obs``)
``engines``         list the relational evaluation engines (``repro.engine``)
                    with availability markers
``privacy``         compute the privacy of a K-example / abstraction (Algorithm 1)
``attack``          list the CIM queries an adversary recovers
``evaluate``        run a query with provenance tracking
``show-tree``       pretty-print an abstraction tree

Library errors (missing files, malformed JSON, bad job specs, an
unreachable service) are reported as one-line ``error: ...`` messages
with exit code 2; exit code 1 means the command ran but a search failed
or found nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.abstraction.function import AbstractionFunction
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer
from repro.db.database import KDatabase
from repro.engine import DEFAULT_ENGINE, ENGINE_NAMES, available_engines, get_engine
from repro.errors import AbstractionError, JobSpecError, ReproError, SchemaError
from repro.io.csv_io import database_from_csv_dir
from repro.io.json_io import (
    abstraction_from_json,
    database_from_json,
    database_to_json,
    dumps,
    kexample_from_json,
    result_to_json,
    tree_from_json,
    tree_to_json,
)
from repro.provenance.builder import build_kexample
from repro.query.parser import parse_cq
from repro.render import render_kexample, render_query, render_result, render_tree


def _read_json_file(path_text: str, what: str, error_cls=SchemaError):
    """Read a JSON file, mapping I/O and syntax failures to repro errors."""
    try:
        with open(path_text) as handle:
            return json.load(handle)
    except OSError as exc:
        raise error_cls(f"cannot read {what} {path_text!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise error_cls(
            f"malformed {what} JSON in {path_text!r}: {exc}"
        ) from None


def _load_database(path_text: str) -> KDatabase:
    path = Path(path_text)
    if path.is_dir():
        try:
            return database_from_csv_dir(path)
        except OSError as exc:
            raise SchemaError(
                f"cannot read database directory {path_text!r}: {exc}"
            ) from None
    return database_from_json(_read_json_file(path_text, "database"))


def _load_tree(path_text: str):
    return tree_from_json(
        _read_json_file(path_text, "tree", error_cls=AbstractionError)
    )


def _build_example(args, database: KDatabase):
    if args.kexample:
        return kexample_from_json(
            _read_json_file(args.kexample, "K-example"), database
        )
    query = parse_cq(args.query)
    return build_kexample(
        query, database, n_rows=args.rows,
        engine=getattr(args, "engine", None),
    )


def _add_common(parser: argparse.ArgumentParser, with_tree: bool = True) -> None:
    parser.add_argument("--database", required=True,
                        help="CSV directory or JSON file")
    if with_tree:
        parser.add_argument("--tree", required=True, help="tree JSON file")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", help="datalog CQ text")
    group.add_argument("--kexample", help="K-example JSON file")
    parser.add_argument("--rows", type=int, default=2,
                        help="K-example rows when building from a query")
    _add_engine_flag(parser)


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default=DEFAULT_ENGINE,
        help="relational evaluation backend (execution detail: every "
             "engine produces bit-identical results and hashes; "
             "see 'repro engines')",
    )


def _tracing_requested(args) -> bool:
    """``--trace-file PATH`` implies ``--trace``."""
    return bool(getattr(args, "trace", False) or
                getattr(args, "trace_file", None))


def _emit_trace(args, payload, *, label, query=None, threshold=None,
                tag=None, seconds=None) -> None:
    """One traced job's spans to ``--trace-file`` (JSONL) or stdout."""
    from repro.obs.trace import TraceWriter, format_record, trace_record

    record = trace_record(
        payload, label=label, query=query, threshold=threshold,
        tag=tag, seconds=seconds,
    )
    if args.trace_file:
        with TraceWriter(args.trace_file) as writer:
            writer.write(record)
    else:
        print(format_record(record))


def cmd_optimize(args) -> int:
    from repro.obs import clock, spans

    database = _load_database(args.database)
    tree = _load_tree(args.tree)
    example = _build_example(args, database)
    config = OptimizerConfig(
        max_candidates=args.max_candidates, max_seconds=args.max_seconds,
        engine=args.engine, trace=_tracing_requested(args),
    )
    tracer = spans.Tracer() if config.trace else None
    start = clock.perf_counter()
    with spans.activate(tracer):
        with spans.span("search", threshold=args.threshold):
            result = find_optimal_abstraction(
                example, tree, args.threshold, config=config
            )
    seconds = clock.perf_counter() - start
    print(render_result(result))
    if tracer is not None:
        _emit_trace(
            args, tracer.to_payload(),
            label=f"optimize@{args.threshold}",
            threshold=args.threshold, seconds=seconds,
        )
        if args.trace_file:
            print(f"(trace appended to {args.trace_file})")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dumps(result_to_json(result)))
        print(f"(written to {args.output})")
    return 0 if result.found else 1


def _positive_int(text: str) -> int:
    """Argparse type for flags that need a count >= 1.

    Raising :class:`argparse.ArgumentTypeError` makes argparse exit 2
    with a message naming the flag — a bad ``serve --workers 0`` used to
    slip through and surface only as a service whose queue never drains.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _settings_for(args):
    """The experiment settings profile with CLI budget overrides applied."""
    import dataclasses

    from repro.experiments.settings import DEFAULT_SETTINGS, FAST_SETTINGS

    settings = FAST_SETTINGS if args.profile == "fast" else DEFAULT_SETTINGS
    overrides = {}
    if args.max_candidates is not None:
        overrides["max_candidates"] = args.max_candidates
    if args.max_seconds is not None:
        overrides["max_seconds"] = args.max_seconds
    if overrides:
        settings = dataclasses.replace(settings, **overrides)
    return settings


def _load_job_specs(path_text: str) -> list:
    specs = _read_json_file(path_text, "job-spec", error_cls=JobSpecError)
    if not isinstance(specs, list):
        raise JobSpecError(
            f"{path_text!r} must hold a JSON list of job specs"
        )
    return specs


def _print_result_line(payload_or_result) -> None:
    """One human line per job outcome (dict payload or BatchJobResult)."""
    if isinstance(payload_or_result, dict):
        p = payload_or_result
        tag, name = p.get("tag"), p.get("query_name")
        threshold = p.get("threshold")
        found, error = p.get("found"), p.get("error")
        privacy, loi = p.get("privacy"), p.get("loi")
        edges, seconds = p.get("edges_used"), p.get("seconds", 0.0)
        state = p.get("state")
    else:
        r = payload_or_result
        tag, name, threshold = r.job.tag, r.job.query_name, r.job.threshold
        found, error = r.found, r.error
        privacy, loi = r.privacy, r.loi
        edges, seconds = r.edges_used, r.seconds
        state = None
    label = tag or f"{name} k={threshold}"
    if state == "cancelled":
        print(f"{label}: CANCELLED")
    elif error is not None:
        print(f"{label}: FAILED ({error})")
    elif found:
        print(
            f"{label}: privacy={privacy} loi={loi:.4f} "
            f"edges={edges} in {seconds:.2f}s"
        )
    else:
        print(f"{label}: no abstraction within budget ({seconds:.2f}s)")


def cmd_batch_optimize(args) -> int:
    from repro.batch import BatchJob, BatchOptimizer, job_from_spec

    settings = _settings_for(args)
    # Matches run_job's config fallback exactly (budgets from settings),
    # so stamping it is content-hash-neutral; it only carries --engine
    # and --trace (both hash-stripped execution details).
    base_config = OptimizerConfig(
        max_candidates=settings.max_candidates,
        max_seconds=settings.max_seconds,
        engine=args.engine,
        trace=_tracing_requested(args),
    )
    if args.jobs:
        jobs = []
        for index, spec in enumerate(_load_job_specs(args.jobs)):
            try:
                jobs.append(job_from_spec(
                    spec, default_rows=args.rows, base_config=base_config,
                ))
            except JobSpecError as exc:
                raise JobSpecError(
                    f"job {index} in {args.jobs}: {exc}"
                ) from None
        # Specs without budget keys come back config-less; stamp the base
        # config so --engine reaches them too.
        import dataclasses

        jobs = [dataclasses.replace(job, config=job.config or base_config)
                for job in jobs]
    else:
        jobs = [
            BatchJob(name, threshold, n_rows=args.rows, config=base_config)
            for name in args.queries
            for threshold in args.thresholds
        ]

    workers = args.workers if args.workers > 0 else None
    batch = BatchOptimizer(
        settings, max_workers=workers, store_path=args.store
    ).run(jobs)

    for result in batch.results:
        _print_result_line(result)
    print(batch.stats.summary())

    if _tracing_requested(args):
        _emit_batch_traces(args, batch.results)

    if args.output:
        payload = [r.to_payload() for r in batch.results]
        with open(args.output, "w") as handle:
            handle.write(dumps(payload))
        print(f"(written to {args.output})")
    return 0 if batch.stats.jobs_failed == 0 else 1


def _emit_batch_traces(args, results) -> None:
    """Traced batch results to ``--trace-file`` (one JSONL line per job)
    or a per-phase summary table on stdout."""
    from repro.obs.trace import (
        TraceWriter, format_summary, summarize, trace_record,
    )

    records = [
        trace_record(
            r.trace,
            label=r.job.tag or f"{r.job.query_name}@{r.job.threshold}",
            query=r.job.query_name, threshold=r.job.threshold,
            tag=r.job.tag or None, seconds=r.seconds,
        )
        for r in results if r.trace
    ]
    if not records:
        return
    if args.trace_file:
        with TraceWriter(args.trace_file) as writer:
            for record in records:
                writer.write(record)
        print(f"({len(records)} traces appended to {args.trace_file})")
    else:
        print(format_summary(summarize(records)))


def cmd_serve(args) -> int:
    from repro.service.server import JobService, make_server
    from repro.store import JobStore

    store = JobStore(args.store) if args.store else None
    service = JobService(
        settings=_settings_for(args),
        worker_threads=args.workers,
        max_queue=args.queue_size,
        job_timeout=args.job_timeout,
        store=store,
        executor=args.executor,
        engine=args.engine,
        trace=_tracing_requested(args),
        trace_path=args.trace_file,
        lease_seconds=args.lease_seconds,
        lease_attempts=args.lease_attempts,
    ).start()
    server = make_server(service, args.host, args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    traced = ", tracing on" if _tracing_requested(args) else ""
    print(
        f"repro job service on http://{host}:{port} "
        f"({args.workers} {args.executor} worker"
        f"{'s' if args.workers != 1 else ''}, queue {args.queue_size}, "
        f"{args.engine} engine{traced})"
    )
    if args.trace_file:
        print(f"streaming job traces to {args.trace_file}")
    if store is not None:
        stats = service.stats_payload()
        print(
            f"job store {store.path}: {stats['jobs_recovered']} jobs "
            f"recovered, {stats['jobs_requeued']} requeued, "
            f"{stats['results_stored']} results cached"
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.shutdown()
    return 0


def _inline_spec_from_args(args) -> dict:
    """Build one inline job spec from ``submit``'s optimize-style flags."""
    if not args.database or not args.tree or args.threshold is None:
        raise JobSpecError(
            "submit needs either --jobs or --database/--tree/--threshold "
            "with one of --query/--kexample"
        )
    if (args.query is None) == (args.kexample is None):
        raise JobSpecError(
            "submit needs exactly one of --query or --kexample"
        )
    spec: dict = {
        "database": database_to_json(_load_database(args.database)),
        "tree": tree_to_json(_load_tree(args.tree)),
        "threshold": args.threshold,
        "n_rows": args.rows,
    }
    if args.kexample:
        spec["kexample"] = _read_json_file(args.kexample, "K-example")
    else:
        spec["query"] = args.query
    if args.tag:
        spec["tag"] = args.tag
    if args.max_candidates is not None:
        spec["max_candidates"] = args.max_candidates
    if args.max_seconds is not None:
        spec["max_seconds"] = args.max_seconds
    return spec


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.server)
    if args.jobs:
        specs = _load_job_specs(args.jobs)
    else:
        specs = [_inline_spec_from_args(args)]
    ids = client.submit_many(specs)
    print(f"submitted {len(ids)} job{'s' if len(ids) != 1 else ''}: "
          f"{', '.join(ids)}")
    if not args.wait:
        return 0

    payloads = client.wait_all(
        ids, timeout=args.timeout, interval=args.poll_interval
    )
    failures = 0
    for payload in payloads:
        _print_result_line(payload)
        if payload.get("state") != "done" or payload.get("error"):
            failures += 1
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dumps(payloads))
        print(f"(written to {args.output})")
    return 0 if failures == 0 else 1


def cmd_worker(args) -> int:
    from repro.service.worker import FleetWorker

    worker = FleetWorker(
        args.server,
        worker_id=args.id,
        store_path=args.store,
        poll_seconds=args.poll_interval,
        idle_exit=args.idle_exit,
        max_jobs=args.max_jobs,
        startup_timeout=args.startup_timeout,
        quiet=args.quiet,
    )
    try:
        summary = worker.run()
    except KeyboardInterrupt:
        print(f"worker {worker.worker_id} interrupted")
        return 0
    print(
        f"worker {summary['worker']} done: {summary['jobs_done']} ok, "
        f"{summary['jobs_failed']} failed, "
        f"{summary['leases_lost']} leases lost"
    )
    return 0


def cmd_poll(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.server)
    if args.stats:
        print(dumps(client.stats()))
        return 0
    if not args.id:
        raise JobSpecError("poll needs --id (one or more job ids) or --stats")
    failures = 0
    for job_id in args.id:
        if args.wait:
            payload = client.wait(
                job_id, timeout=args.timeout, interval=args.poll_interval
            )
        else:
            payload = client.status(job_id)
        print(dumps(payload))
        if payload.get("state") == "failed" or payload.get("error"):
            failures += 1
    return 0 if failures == 0 else 1


def _open_store(path_text: str):
    """Open an *existing* job store (inspection must not create files)."""
    from repro.errors import ServiceError
    from repro.store import JobStore

    if path_text != ":memory:" and not Path(path_text).exists():
        raise ServiceError(f"no job store at {path_text!r}")
    return JobStore(path_text)


def cmd_jobs_list(args) -> int:
    store = _open_store(args.store)
    jobs = store.list_jobs(state=args.state)
    for stored in jobs:
        label = stored.spec.get("tag") or stored.label
        print(
            f"{stored.job_id}  {stored.state:<9}  {label} "
            f"k={stored.spec.get('threshold')}  "
            f"hash={stored.content_hash[:12]}"
        )
    suffix = f" in state {args.state!r}" if args.state else ""
    n_results = store.result_count()
    print(f"({len(jobs)} job{'s' if len(jobs) != 1 else ''}{suffix}, "
          f"{n_results} cached result{'s' if n_results != 1 else ''})")
    return 0


def cmd_jobs_show(args) -> int:
    from repro.errors import ServiceError

    store = _open_store(args.store)
    stored = store.get_job(args.id)
    if stored is None:
        raise ServiceError(f"unknown job {args.id!r} in {args.store!r}")
    payload = {
        "id": stored.job_id,
        "state": stored.state,
        "content_hash": stored.content_hash,
        "spec": stored.spec,
        "error": stored.error,
        "submitted_at": stored.submitted_at,
        "started_at": stored.started_at,
        "finished_at": stored.finished_at,
        # peek: inspecting a job must not mark its result recently used.
        "result": store.peek_result(stored.content_hash),
    }
    print(dumps(payload))
    return 0


def cmd_jobs_gc(args) -> int:
    from repro.errors import ServiceError

    if (args.keep_results is None and args.keep_days is None
            and not args.drop_jobs):
        raise ServiceError(
            "jobs gc needs at least one of --keep-results, --keep-days, "
            "or --drop-jobs"
        )
    store = _open_store(args.store)
    counts = store.gc(
        keep_results=args.keep_results,
        max_age_days=args.keep_days,
        drop_terminal_jobs=args.drop_jobs,
    )
    print(
        f"gc {args.store}: deleted {counts['results_deleted']} result"
        f"{'s' if counts['results_deleted'] != 1 else ''} and "
        f"{counts['jobs_deleted']} job record"
        f"{'s' if counts['jobs_deleted'] != 1 else ''}; "
        f"{store.result_count()} results remain"
    )
    return 0


def _scenario_matrix(args):
    """The matrix the ``scenarios`` verbs operate on (preset or file)."""
    from repro.errors import ScenarioError
    from repro.scenarios import PRESETS, ScenarioMatrix

    if getattr(args, "matrix", None):
        data = _read_json_file(
            args.matrix, "scenario-matrix", error_cls=ScenarioError
        )
        return ScenarioMatrix.from_dict(data)
    return PRESETS[args.preset]


def cmd_scenarios_run(args) -> int:
    from repro.scenarios import run_matrix, save

    matrix = _scenario_matrix(args)
    snapshot = run_matrix(
        matrix,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        store_path=args.store,
        engine=args.engine,
        trace=_tracing_requested(args),
        trace_path=args.trace_file,
        fleet_host=args.fleet_host,
        fleet_port=args.fleet_port,
        lease_seconds=args.lease_seconds,
    )
    for cell in snapshot["cells"]:
        marker = " (cached)" if cell["cache_hit"] else ""
        if cell["found"]:
            line = (f"privacy={cell['privacy']} loi={cell['loi']:.4f} "
                    f"in {cell['seconds']:.2f}s")
        else:
            line = f"no abstraction within budget ({cell['seconds']:.2f}s)"
        print(f"{cell['cell']}: {line}{marker}")
    summary = snapshot["summary"]
    print(
        f"{summary['cells']} cells ({summary['found']} found, "
        f"{summary['cache_hits']} cache hits): "
        f"{summary['job_seconds']:.2f}s search, "
        f"{snapshot['wall_seconds']:.2f}s wall on "
        f"{snapshot['workers']} {snapshot['executor']} worker"
        f"{'s' if snapshot['workers'] != 1 else ''} "
        f"({snapshot['engine']} engine)"
    )
    save(args.output, snapshot)
    print(f"(snapshot written to {args.output})")
    return 0


def cmd_scenarios_list(args) -> int:
    matrix = _scenario_matrix(args)
    matrix.validate()
    cells = matrix.cells()
    for cell in cells:
        print(cell.cell_id)
    print(
        f"({len(cells)} cells; axes: "
        + ", ".join(f"{k}={v!r}" for k, v in sorted(
            matrix.to_dict().items()))
        + ")"
    )
    return 0


def cmd_scenarios_diff(args) -> int:
    from repro.scenarios import diff, load

    report = diff(
        load(args.old), load(args.new), tolerance=args.tolerance
    )
    for line in report.lines():
        print(line)
    if report.has_drift:
        print(
            f"FAIL: {len(report.drifted)} cell"
            f"{'s' if len(report.drifted) != 1 else ''} changed result "
            f"hash on identical inputs", file=sys.stderr,
        )
        return 1
    if args.max_regression is not None:
        fatal = [r for r in report.regressions
                 if r["ratio"] > args.max_regression]
        if fatal:
            print(
                f"FAIL: {len(fatal)} cell"
                f"{'s' if len(fatal) != 1 else ''} slower than "
                f"{args.max_regression:.2f}x", file=sys.stderr,
            )
            return 1
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import all_rules, analyze_paths

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        # Default target: the installed repro package itself.
        import repro

        paths = [Path(repro.__file__).parent]
    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    report = analyze_paths(paths, rule_ids=rule_ids)
    if args.format == "json":
        print(dumps(report.to_dict()))
    else:
        for line in report.render_lines():
            print(line)
    return 0 if report.ok else 1


def cmd_privacy(args) -> int:
    database = _load_database(args.database)
    tree = _load_tree(args.tree)
    example = _build_example(args, database)
    if args.abstraction:
        with open(args.abstraction) as handle:
            function = abstraction_from_json(json.load(handle), tree, example)
    else:
        function = AbstractionFunction.identity(tree, example)
    abstracted = function.apply(example)
    computer = PrivacyComputer(tree, database.registry)
    privacy = computer.privacy(abstracted)
    print(render_kexample(abstracted))
    print(f"privacy: {privacy}")
    return 0


def cmd_attack(args) -> int:
    database = _load_database(args.database)
    tree = _load_tree(args.tree)
    example = _build_example(args, database)
    if args.abstraction:
        with open(args.abstraction) as handle:
            function = abstraction_from_json(json.load(handle), tree, example)
    else:
        function = AbstractionFunction.identity(tree, example)
    abstracted = function.apply(example)
    computer = PrivacyComputer(tree, database.registry)
    cims = sorted(computer.cim_queries(abstracted), key=repr)
    print(f"{len(cims)} CIM quer{'y' if len(cims) == 1 else 'ies'}:")
    for query in cims:
        print(f"  {render_query(query)}")
    return 0


def cmd_engines(args) -> int:
    availability = available_engines()
    for name in ENGINE_NAMES:
        marker = "available" if availability[name] else (
            "unavailable (pip install duckdb)" if name == "duckdb"
            else "unavailable"
        )
        default = "  (default)" if name == DEFAULT_ENGINE else ""
        print(f"{name:<8}{marker}{default}")
    return 0


def cmd_evaluate(args) -> int:
    database = _load_database(args.database)
    query = parse_cq(args.query)
    results = get_engine(args.engine).evaluate(query, database)
    for output, provenance in sorted(results.items(), key=lambda kv: repr(kv[0])):
        print(f"{output} <- {provenance}")
    print(f"({len(results)} rows)")
    return 0


def cmd_show_tree(args) -> int:
    tree = _load_tree(args.tree)
    print(render_tree(tree, max_children=args.max_children))
    return 0


def cmd_trace_show(args) -> int:
    from repro.obs.trace import format_record, read_trace

    records = read_trace(args.file)
    shown = records if args.limit is None else records[:args.limit]
    for index, record in enumerate(shown):
        if index:
            print()
        print(format_record(record))
    if len(shown) < len(records):
        print(f"\n({len(records) - len(shown)} more record"
              f"{'s' if len(records) - len(shown) != 1 else ''}; "
              f"raise --limit to see them)")
    return 0


def cmd_trace_summary(args) -> int:
    from repro.obs.trace import format_summary, read_trace, summarize

    print(format_summary(summarize(read_trace(args.file))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="provenance abstraction for query privacy"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_trace_flags(sp) -> None:
        sp.add_argument("--trace", action="store_true",
                        help="record per-phase spans for each job "
                             "(bit-neutral: result hashes are unchanged)")
        sp.add_argument("--trace-file", default=None,
                        help="append repro-trace-v1 JSONL records here "
                             "(implies --trace); read back with "
                             "'repro trace summary'")

    p_opt = sub.add_parser("optimize", help="find the optimal abstraction")
    _add_common(p_opt)
    p_opt.add_argument("--threshold", type=int, required=True)
    p_opt.add_argument("--max-candidates", type=int, default=None)
    p_opt.add_argument("--max-seconds", type=float, default=None)
    p_opt.add_argument("--output", help="write the result JSON here")
    _add_trace_flags(p_opt)
    p_opt.set_defaults(func=cmd_optimize)

    p_batch = sub.add_parser(
        "batch-optimize",
        help="run many optimizer jobs in parallel over the experiment workloads",
    )
    p_batch.add_argument(
        "--queries", nargs="+", default=["TPCH-Q3", "TPCH-Q10", "IMDB-Q1"],
        help="workload query names (see repro.datasets.queries)",
    )
    p_batch.add_argument(
        "--thresholds", nargs="+", type=int, default=[2],
        help="privacy thresholds; jobs are the queries x thresholds product",
    )
    p_batch.add_argument(
        "--jobs", help="JSON file with a list of job specs, named-workload "
                       "or inline-context (overrides --queries/--thresholds)",
    )
    p_batch.add_argument("--rows", type=int, default=None,
                         help="K-example rows per job (with --jobs: the "
                              "default for specs without n_rows)")
    p_batch.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = one per core, 1 = serial)",
    )
    p_batch.add_argument("--profile", choices=("fast", "default"),
                         default="fast", help="experiment settings profile")
    p_batch.add_argument("--max-candidates", type=int, default=None)
    p_batch.add_argument("--max-seconds", type=float, default=None)
    p_batch.add_argument("--output", help="write per-job results JSON here")
    p_batch.add_argument("--store", default=None,
                         help="persistent result-cache file: identical jobs "
                              "are served from it instead of re-searching, "
                              "across runs (see repro.store)")
    _add_engine_flag(p_batch)
    _add_trace_flags(p_batch)
    p_batch.set_defaults(func=cmd_batch_optimize)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived job service over repro.batch",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="listen port (0 = pick a free port)")
    p_serve.add_argument(
        "--workers", type=_positive_int, default=1,
        help="concurrent job workers (>= 1); with --executor thread "
             "they share one in-process cache, so 1 (the default) "
             "maximizes warm-cache reuse",
    )
    from repro.service.state import EXECUTOR_NAMES

    p_serve.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=EXECUTOR_NAMES[0],
        help="execution tier: 'thread' runs searches in-process "
             "(shared warm caches, GIL-capped at ~1 core), 'process' "
             "fans them out to a pool of --workers processes that "
             "share the --store result cache (scales to all cores)",
    )
    p_serve.add_argument(
        "--lease-seconds", type=float, default=15.0,
        help="with --executor remote: how long a fleet worker may go "
             "without a heartbeat before its job is requeued",
    )
    p_serve.add_argument(
        "--lease-attempts", type=_positive_int, default=3,
        help="with --executor remote: how many leases a job may lose "
             "before it fails visibly",
    )
    p_serve.add_argument("--queue-size", type=int, default=64,
                         help="pending-job bound; submissions beyond it "
                              "are rejected with HTTP 503")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         help="per-job wall-clock cap in seconds (clamps "
                              "each job's max_seconds budget)")
    p_serve.add_argument("--profile", choices=("fast", "default"),
                         default="fast", help="experiment settings profile")
    p_serve.add_argument("--max-candidates", type=int, default=None)
    p_serve.add_argument("--max-seconds", type=float, default=None)
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request logging")
    p_serve.add_argument("--store", default=None,
                         help="SQLite job-store file: jobs and results "
                              "persist across restarts, and identical jobs "
                              "are answered from the result cache")
    _add_engine_flag(p_serve)
    _add_trace_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit jobs to a running job service",
    )
    p_submit.add_argument("--server", required=True,
                          help="service base URL, e.g. http://127.0.0.1:8765")
    p_submit.add_argument("--jobs",
                          help="JSON file with a list of job specs "
                               "(named-workload or inline-context)")
    p_submit.add_argument("--database",
                          help="CSV directory or JSON file (inline job)")
    p_submit.add_argument("--tree", help="tree JSON file (inline job)")
    p_submit.add_argument("--query", help="datalog CQ text (inline job)")
    p_submit.add_argument("--kexample",
                          help="K-example JSON file (inline job)")
    p_submit.add_argument("--threshold", type=int, help="privacy threshold "
                                                        "(inline job)")
    p_submit.add_argument("--rows", type=int, default=2,
                          help="K-example rows when building from a query")
    p_submit.add_argument("--tag", default="")
    p_submit.add_argument("--max-candidates", type=int, default=None)
    p_submit.add_argument("--max-seconds", type=float, default=None)
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until every job finishes")
    p_submit.add_argument("--timeout", type=float, default=300.0)
    p_submit.add_argument("--poll-interval", type=float, default=0.2)
    p_submit.add_argument("--output",
                          help="with --wait: write result payloads here")
    p_submit.set_defaults(func=cmd_submit)

    p_worker = sub.add_parser(
        "worker",
        help="join a remote-executor service's fleet and run leased jobs",
    )
    p_worker.add_argument("--server", required=True,
                          help="service base URL, e.g. http://host:8765")
    p_worker.add_argument("--id", default=None,
                          help="worker id (default: hostname-pid); shows "
                               "up in /v1/stats and per-worker metrics")
    p_worker.add_argument("--store", default=None,
                          help="shared result-cache file reachable from "
                               "THIS host (consulted before searching, "
                               "fresh results persisted)")
    p_worker.add_argument("--poll-interval", type=float, default=0.5,
                          help="seconds between claim attempts while idle")
    p_worker.add_argument("--max-jobs", type=int, default=None,
                          help="exit after this many jobs (default: run "
                               "until killed)")
    p_worker.add_argument("--idle-exit", type=float, default=None,
                          help="exit after this many consecutive idle "
                               "seconds (default: keep polling)")
    p_worker.add_argument("--startup-timeout", type=float, default=30.0,
                          help="how long to wait for the service to become "
                               "healthy before giving up")
    p_worker.add_argument("--quiet", action="store_true",
                          help="suppress per-job log lines")
    p_worker.set_defaults(func=cmd_worker)

    p_poll = sub.add_parser(
        "poll", help="poll job status/results or service stats",
    )
    p_poll.add_argument("--server", required=True)
    p_poll.add_argument("--id", nargs="+", default=[], help="job ids")
    p_poll.add_argument("--stats", action="store_true",
                        help="print the service stats instead")
    p_poll.add_argument("--wait", action="store_true",
                        help="block until each job is terminal")
    p_poll.add_argument("--timeout", type=float, default=300.0)
    p_poll.add_argument("--poll-interval", type=float, default=0.2)
    p_poll.set_defaults(func=cmd_poll)

    p_jobs = sub.add_parser(
        "jobs", help="inspect or prune a persistent job store",
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    p_jlist = jobs_sub.add_parser("list", help="list persisted job records")
    p_jlist.add_argument("--store", required=True, help="job-store file")
    p_jlist.add_argument("--state", default=None,
                         help="only this state (queued/running/done/"
                              "failed/cancelled)")
    p_jlist.set_defaults(func=cmd_jobs_list)

    p_jshow = jobs_sub.add_parser(
        "show", help="one job's record and cached result payload",
    )
    p_jshow.add_argument("id", help="job id, e.g. job-000001")
    p_jshow.add_argument("--store", required=True, help="job-store file")
    p_jshow.set_defaults(func=cmd_jobs_show)

    p_jgc = jobs_sub.add_parser(
        "gc", help="prune old results and terminal job records",
    )
    p_jgc.add_argument("--store", required=True, help="job-store file")
    p_jgc.add_argument("--keep-results", type=int, default=None,
                       help="keep only the N most-recently-used results")
    p_jgc.add_argument("--keep-days", type=float, default=None,
                       help="drop results unused (and terminal job records "
                            "finished) more than N days ago")
    p_jgc.add_argument("--drop-jobs", action="store_true",
                       help="also drop every done/failed/cancelled job "
                            "record (cached results stay)")
    p_jgc.set_defaults(func=cmd_jobs_gc)

    p_scen = sub.add_parser(
        "scenarios",
        help="run / list / diff the seeded scenario matrix "
             "(BENCH_scenarios.json snapshots)",
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)

    def _add_matrix_flags(sp) -> None:
        sp.add_argument("--preset", choices=("smoke", "full"),
                        default="smoke", help="built-in scenario matrix")
        sp.add_argument("--matrix",
                        help="JSON file with matrix axes (overrides "
                             "--preset; see repro.scenarios.ScenarioMatrix)")

    p_srun = scen_sub.add_parser(
        "run", help="materialize and run every cell, write a snapshot",
    )
    _add_matrix_flags(p_srun)
    p_srun.add_argument("--seed", type=int, default=7,
                        help="generator seed; the whole matrix is a pure "
                             "function of (matrix, seed)")
    p_srun.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=EXECUTOR_NAMES[0],
        help="job-service execution tier the cells fan out on",
    )
    p_srun.add_argument("--workers", type=_positive_int, default=2,
                        help="concurrent workers on the chosen tier")
    p_srun.add_argument("--store", default=None,
                        help="persistent result-cache file: repeated cells "
                             "(this run or any earlier one) are served "
                             "from it instead of re-searching")
    p_srun.add_argument("--fleet-host", default="127.0.0.1",
                        help="with --executor remote: interface to serve "
                             "the fleet endpoints on")
    p_srun.add_argument("--fleet-port", type=int, default=None,
                        help="with --executor remote (required there): "
                             "port to serve the v1 protocol on so "
                             "`repro worker` processes can claim cells")
    p_srun.add_argument("--lease-seconds", type=float, default=15.0,
                        help="with --executor remote: lease length before "
                             "a silent worker's cell is requeued")
    p_srun.add_argument("--output", default="BENCH_scenarios.json",
                        help="snapshot file to write")
    _add_engine_flag(p_srun)
    _add_trace_flags(p_srun)
    p_srun.set_defaults(func=cmd_scenarios_run)

    p_slist = scen_sub.add_parser(
        "list", help="print the matrix's cell ids without running anything",
    )
    _add_matrix_flags(p_slist)
    p_slist.set_defaults(func=cmd_scenarios_list)

    p_sdiff = scen_sub.add_parser(
        "diff", help="compare two snapshots: result-hash drift is fatal, "
                     "timing moves are reported",
    )
    p_sdiff.add_argument("old", help="baseline snapshot JSON")
    p_sdiff.add_argument("new", help="candidate snapshot JSON")
    p_sdiff.add_argument("--tolerance", type=float, default=1.5,
                         help="per-cell slowdown ratio worth reporting")
    p_sdiff.add_argument("--max-regression", type=float, default=None,
                         help="fail (exit 1) when any cell is slower than "
                              "this ratio; default: report only")
    p_sdiff.set_defaults(func=cmd_scenarios_diff)

    p_lint = sub.add_parser(
        "lint",
        help="run the invariant-enforcing static-analysis suite "
             "(repro.analysis); exit 1 on findings",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze "
             "(default: the installed repro package)",
    )
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    p_lint.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all); "
             "unknown ids exit 2",
    )
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.set_defaults(func=cmd_lint)

    p_priv = sub.add_parser("privacy", help="privacy of a (possibly abstracted) K-example")
    _add_common(p_priv)
    p_priv.add_argument("--abstraction", help="abstraction JSON file")
    p_priv.set_defaults(func=cmd_privacy)

    p_att = sub.add_parser("attack", help="list the recoverable CIM queries")
    _add_common(p_att)
    p_att.add_argument("--abstraction", help="abstraction JSON file")
    p_att.set_defaults(func=cmd_attack)

    p_eval = sub.add_parser("evaluate", help="run a query with provenance")
    p_eval.add_argument("--database", required=True)
    p_eval.add_argument("--query", required=True)
    _add_engine_flag(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_eng = sub.add_parser(
        "engines",
        help="list the relational evaluation engines with availability",
    )
    p_eng.set_defaults(func=cmd_engines)

    p_trace = sub.add_parser(
        "trace",
        help="inspect repro-trace-v1 JSONL files written by --trace-file",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tshow = trace_sub.add_parser(
        "show", help="print each traced job as an indented span tree",
    )
    p_tshow.add_argument("file", help="repro-trace-v1 JSONL file")
    p_tshow.add_argument("--limit", type=_positive_int, default=None,
                         help="show at most this many records")
    p_tshow.set_defaults(func=cmd_trace_show)
    p_tsum = trace_sub.add_parser(
        "summary", help="fold every record into a per-phase totals table",
    )
    p_tsum.add_argument("file", help="repro-trace-v1 JSONL file")
    p_tsum.set_defaults(func=cmd_trace_summary)

    p_tree = sub.add_parser("show-tree", help="pretty-print a tree JSON file")
    p_tree.add_argument("--tree", required=True)
    p_tree.add_argument("--max-children", type=int, default=12)
    p_tree.set_defaults(func=cmd_show_tree)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
