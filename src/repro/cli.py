"""The ``repro`` command-line interface.

Workflow: keep the database as a directory of CSV files (or one JSON file),
the abstraction tree as JSON, and the query as datalog text; then::

    python -m repro.cli optimize \
        --database data/ --tree tree.json \
        --query "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', s)" \
        --threshold 2 --rows 2 --output result.json

Subcommands
-----------
``optimize``        find the optimal abstraction (Algorithm 2)
``batch-optimize``  run many optimizer jobs in parallel over the
                    experiment workloads (``repro.batch``)
``privacy``         compute the privacy of a K-example / abstraction (Algorithm 1)
``attack``          list the CIM queries an adversary recovers
``evaluate``        run a query with provenance tracking
``show-tree``       pretty-print an abstraction tree
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.abstraction.function import AbstractionFunction
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer
from repro.db.database import KDatabase
from repro.io.csv_io import database_from_csv_dir
from repro.io.json_io import (
    abstraction_from_json,
    database_from_json,
    dumps,
    kexample_from_json,
    result_to_json,
    tree_from_json,
)
from repro.provenance.builder import build_kexample
from repro.query.evaluator import evaluate
from repro.query.parser import parse_cq
from repro.render import render_kexample, render_query, render_result, render_tree


def _load_database(path_text: str) -> KDatabase:
    path = Path(path_text)
    if path.is_dir():
        return database_from_csv_dir(path)
    with open(path) as handle:
        return database_from_json(json.load(handle))


def _load_tree(path_text: str):
    with open(path_text) as handle:
        return tree_from_json(json.load(handle))


def _build_example(args, database: KDatabase):
    if args.kexample:
        with open(args.kexample) as handle:
            return kexample_from_json(json.load(handle), database)
    query = parse_cq(args.query)
    return build_kexample(query, database, n_rows=args.rows)


def _add_common(parser: argparse.ArgumentParser, with_tree: bool = True) -> None:
    parser.add_argument("--database", required=True,
                        help="CSV directory or JSON file")
    if with_tree:
        parser.add_argument("--tree", required=True, help="tree JSON file")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", help="datalog CQ text")
    group.add_argument("--kexample", help="K-example JSON file")
    parser.add_argument("--rows", type=int, default=2,
                        help="K-example rows when building from a query")


def cmd_optimize(args) -> int:
    database = _load_database(args.database)
    tree = _load_tree(args.tree)
    example = _build_example(args, database)
    config = OptimizerConfig(
        max_candidates=args.max_candidates, max_seconds=args.max_seconds
    )
    result = find_optimal_abstraction(example, tree, args.threshold, config=config)
    print(render_result(result))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dumps(result_to_json(result)))
        print(f"(written to {args.output})")
    return 0 if result.found else 1


def cmd_batch_optimize(args) -> int:
    import dataclasses

    from repro.batch import BatchJob, BatchOptimizer
    from repro.experiments.settings import DEFAULT_SETTINGS, FAST_SETTINGS

    settings = FAST_SETTINGS if args.profile == "fast" else DEFAULT_SETTINGS
    overrides = {}
    if args.max_candidates is not None:
        overrides["max_candidates"] = args.max_candidates
    if args.max_seconds is not None:
        overrides["max_seconds"] = args.max_seconds
    if overrides:
        settings = dataclasses.replace(settings, **overrides)

    if args.jobs:
        with open(args.jobs) as handle:
            specs = json.load(handle)
        jobs = []
        for index, spec in enumerate(specs):
            if "query_name" not in spec or "threshold" not in spec:
                print(f"error: job {index} in {args.jobs} needs "
                      f"'query_name' and 'threshold'", file=sys.stderr)
                return 2
            jobs.append(BatchJob(
                query_name=spec["query_name"],
                threshold=int(spec["threshold"]),
                n_rows=spec.get("n_rows", args.rows),
                n_leaves=spec.get("n_leaves"),
                height=spec.get("height"),
                tag=spec.get("tag", ""),
            ))
    else:
        jobs = [
            BatchJob(name, threshold, n_rows=args.rows)
            for name in args.queries
            for threshold in args.thresholds
        ]

    workers = args.workers if args.workers > 0 else None
    batch = BatchOptimizer(settings, max_workers=workers).run(jobs)

    for result in batch.results:
        job = result.job
        label = job.tag or f"{job.query_name} k={job.threshold}"
        if not result.ok:
            print(f"{label}: FAILED ({result.error})")
        elif result.found:
            print(
                f"{label}: privacy={result.privacy} loi={result.loi:.4f} "
                f"edges={result.edges_used} in {result.seconds:.2f}s"
            )
        else:
            print(f"{label}: no abstraction within budget "
                  f"({result.seconds:.2f}s)")
    print(batch.stats.summary())

    if args.output:
        payload = [
            {
                "query_name": r.job.query_name,
                "threshold": r.job.threshold,
                "tag": r.job.tag,
                "found": r.found,
                "privacy": r.privacy,
                "loi": r.loi if r.found else None,
                "edges_used": r.edges_used,
                "seconds": r.seconds,
                "variable_targets": r.variable_targets,
                "error": r.error,
            }
            for r in batch.results
        ]
        with open(args.output, "w") as handle:
            handle.write(dumps(payload))
        print(f"(written to {args.output})")
    return 0 if batch.stats.jobs_failed == 0 else 1


def cmd_privacy(args) -> int:
    database = _load_database(args.database)
    tree = _load_tree(args.tree)
    example = _build_example(args, database)
    if args.abstraction:
        with open(args.abstraction) as handle:
            function = abstraction_from_json(json.load(handle), tree, example)
    else:
        function = AbstractionFunction.identity(tree, example)
    abstracted = function.apply(example)
    computer = PrivacyComputer(tree, database.registry)
    privacy = computer.privacy(abstracted)
    print(render_kexample(abstracted))
    print(f"privacy: {privacy}")
    return 0


def cmd_attack(args) -> int:
    database = _load_database(args.database)
    tree = _load_tree(args.tree)
    example = _build_example(args, database)
    if args.abstraction:
        with open(args.abstraction) as handle:
            function = abstraction_from_json(json.load(handle), tree, example)
    else:
        function = AbstractionFunction.identity(tree, example)
    abstracted = function.apply(example)
    computer = PrivacyComputer(tree, database.registry)
    cims = sorted(computer.cim_queries(abstracted), key=repr)
    print(f"{len(cims)} CIM quer{'y' if len(cims) == 1 else 'ies'}:")
    for query in cims:
        print(f"  {render_query(query)}")
    return 0


def cmd_evaluate(args) -> int:
    database = _load_database(args.database)
    query = parse_cq(args.query)
    results = evaluate(query, database)
    for output, provenance in sorted(results.items(), key=lambda kv: repr(kv[0])):
        print(f"{output} <- {provenance}")
    print(f"({len(results)} rows)")
    return 0


def cmd_show_tree(args) -> int:
    tree = _load_tree(args.tree)
    print(render_tree(tree, max_children=args.max_children))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="provenance abstraction for query privacy"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="find the optimal abstraction")
    _add_common(p_opt)
    p_opt.add_argument("--threshold", type=int, required=True)
    p_opt.add_argument("--max-candidates", type=int, default=None)
    p_opt.add_argument("--max-seconds", type=float, default=None)
    p_opt.add_argument("--output", help="write the result JSON here")
    p_opt.set_defaults(func=cmd_optimize)

    p_batch = sub.add_parser(
        "batch-optimize",
        help="run many optimizer jobs in parallel over the experiment workloads",
    )
    p_batch.add_argument(
        "--queries", nargs="+", default=["TPCH-Q3", "TPCH-Q10", "IMDB-Q1"],
        help="workload query names (see repro.datasets.queries)",
    )
    p_batch.add_argument(
        "--thresholds", nargs="+", type=int, default=[2],
        help="privacy thresholds; jobs are the queries x thresholds product",
    )
    p_batch.add_argument(
        "--jobs", help="JSON file with a list of job specs "
                       "(overrides --queries/--thresholds)",
    )
    p_batch.add_argument("--rows", type=int, default=None,
                         help="K-example rows per job (with --jobs: the "
                              "default for specs without n_rows)")
    p_batch.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = one per core, 1 = serial)",
    )
    p_batch.add_argument("--profile", choices=("fast", "default"),
                         default="fast", help="experiment settings profile")
    p_batch.add_argument("--max-candidates", type=int, default=None)
    p_batch.add_argument("--max-seconds", type=float, default=None)
    p_batch.add_argument("--output", help="write per-job results JSON here")
    p_batch.set_defaults(func=cmd_batch_optimize)

    p_priv = sub.add_parser("privacy", help="privacy of a (possibly abstracted) K-example")
    _add_common(p_priv)
    p_priv.add_argument("--abstraction", help="abstraction JSON file")
    p_priv.set_defaults(func=cmd_privacy)

    p_att = sub.add_parser("attack", help="list the recoverable CIM queries")
    _add_common(p_att)
    p_att.add_argument("--abstraction", help="abstraction JSON file")
    p_att.set_defaults(func=cmd_attack)

    p_eval = sub.add_parser("evaluate", help="run a query with provenance")
    p_eval.add_argument("--database", required=True)
    p_eval.add_argument("--query", required=True)
    p_eval.set_defaults(func=cmd_evaluate)

    p_tree = sub.add_parser("show-tree", help="pretty-print a tree JSON file")
    p_tree.add_argument("--tree", required=True)
    p_tree.add_argument("--max-children", type=int, default=12)
    p_tree.set_defaults(func=cmd_show_tree)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
