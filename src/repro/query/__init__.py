"""Conjunctive queries and UCQs: AST, parsing, evaluation, containment."""

from repro.query.ast import CQ, UCQ, Atom, Constant, Term, Variable
from repro.query.containment import (
    find_homomorphism,
    is_contained_in,
    is_equivalent,
    is_strictly_contained_in,
)
from repro.query.evaluator import evaluate, evaluate_cq, evaluate_ucq
from repro.query.join_graph import is_connected, join_graph
from repro.query.minimize import minimize_cq
from repro.query.parser import parse_cq, parse_ucq

__all__ = [
    "Atom",
    "CQ",
    "Constant",
    "Term",
    "UCQ",
    "Variable",
    "evaluate",
    "evaluate_cq",
    "evaluate_ucq",
    "find_homomorphism",
    "is_connected",
    "is_contained_in",
    "is_equivalent",
    "is_strictly_contained_in",
    "join_graph",
    "minimize_cq",
    "parse_cq",
    "parse_ucq",
]
