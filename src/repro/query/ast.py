"""Abstract syntax for conjunctive queries (CQs) and unions thereof (UCQs).

A CQ is ``Q(u) :- R1(v1), ..., Rl(vl)`` where every head variable occurs in
the body (Section 2.1 of the paper).  Terms are either :class:`Variable` or
:class:`Constant`; all AST nodes are immutable and hashable so queries can
be deduplicated, cached, and used as dictionary keys.

Queries compare structurally.  For comparison *up to variable renaming*
(isomorphism) use :meth:`CQ.canonical`.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping
from typing import Any, Union

from repro.errors import ParseError


class Variable:
    """A query variable, e.g. ``x``."""

    __slots__ = ("_name", "_hash")

    def __init__(self, name: str):
        self._name = str(name)
        self._hash = hash(("var", self._name))

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self._name == other._name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self._name


class Constant:
    """A query constant, e.g. ``'Dance'`` or ``1995``."""

    __slots__ = ("_value", "_hash")

    def __init__(self, value: Any):
        self._value = value
        self._hash = hash(("const", value))

    @property
    def value(self) -> Any:
        return self._value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self._value == other._value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return repr(self._value)


Term = Union[Variable, Constant]


class Atom:
    """A relational atom ``R(t1, ..., tn)``."""

    __slots__ = ("_relation", "_terms", "_hash")

    def __init__(self, relation: str, terms: Iterable[Term]):
        self._relation = str(relation)
        self._terms = tuple(terms)
        for term in self._terms:
            if not isinstance(term, (Variable, Constant)):
                raise TypeError(f"atom term must be Variable or Constant: {term!r}")
        self._hash = hash((self._relation, self._terms))

    @property
    def relation(self) -> str:
        return self._relation

    @property
    def terms(self) -> tuple[Term, ...]:
        return self._terms

    @property
    def arity(self) -> int:
        return len(self._terms)

    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self._terms if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        return frozenset(t for t in self._terms if isinstance(t, Constant))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Replace variables according to ``mapping``."""
        return Atom(
            self._relation,
            (mapping.get(t, t) if isinstance(t, Variable) else t for t in self._terms),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self._relation == other._relation
            and self._terms == other._terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self._relation}({', '.join(map(repr, self._terms))})"


class CQ:
    """A conjunctive query with head and body.

    The body is kept as a tuple in construction order but equality and
    hashing use the *sorted* body so syntactically reordered queries
    coincide.  Full isomorphism-invariant identity is provided by
    :meth:`canonical`.
    """

    __slots__ = ("_head", "_body", "_hash", "_canonical_cache")

    def __init__(self, head: Atom, body: Iterable[Atom]):
        self._head = head
        self._body = tuple(body)
        if not self._body:
            raise ParseError("a CQ must have a non-empty body")
        head_vars = head.variables()
        body_vars: set[Variable] = set()
        for atom in self._body:
            body_vars.update(atom.variables())
        missing = head_vars - body_vars
        if missing:
            raise ParseError(
                f"head variables not bound in body: "
                f"{sorted(v.name for v in missing)}"
            )
        self._hash = hash((self._head, tuple(sorted(self._body, key=_atom_key))))
        self._canonical_cache: "tuple | None" = None

    @property
    def head(self) -> Atom:
        return self._head

    @property
    def body(self) -> tuple[Atom, ...]:
        return self._body

    def variables(self) -> frozenset[Variable]:
        out: set[Variable] = set(self._head.variables())
        for atom in self._body:
            out.update(atom.variables())
        return frozenset(out)

    def constants(self) -> frozenset[Constant]:
        out: set[Constant] = set(self._head.constants())
        for atom in self._body:
            out.update(atom.constants())
        return frozenset(out)

    def relations(self) -> tuple[str, ...]:
        """Relation names in the body, with repetitions, sorted."""
        return tuple(sorted(atom.relation for atom in self._body))

    def num_joins(self) -> int:
        """Number of edges in the join graph (atoms sharing a variable)."""
        edges = 0
        for i, a in enumerate(self._body):
            for b in self._body[i + 1:]:
                if a.variables() & b.variables():
                    edges += 1
        return edges

    def substitute(self, mapping: Mapping[Variable, Term]) -> "CQ":
        return CQ(
            self._head.substitute(mapping),
            (atom.substitute(mapping) for atom in self._body),
        )

    def rename_apart(self, suffix: str) -> "CQ":
        """Fresh copy whose variables carry ``suffix`` (for containment tests)."""
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(mapping)

    def canonical(self) -> tuple:
        """An isomorphism-invariant key: two CQs get the same key iff they
        are equal up to variable renaming and body reordering.

        Computed by trying variable numberings in every order of first
        appearance induced by body permutations would be factorial; instead
        we canonicalize greedily: sort atoms by an invariant signature, then
        number variables by first appearance, then refine by trying all
        orders among atoms with identical signatures (bounded in practice
        by self-join multiplicity).
        """
        if self._canonical_cache is not None:
            return self._canonical_cache

        atoms = list(self._body)
        signatures = [_atom_signature(atom, self) for atom in atoms]
        order = sorted(range(len(atoms)), key=lambda i: signatures[i])
        groups: list[list[int]] = []
        for idx in order:
            if groups and signatures[groups[-1][-1]] == signatures[idx]:
                groups[-1].append(idx)
            else:
                groups.append([idx])

        best: "tuple | None" = None
        for arrangement in _group_permutations(groups):
            key = _numbered_key(self._head, [atoms[i] for i in arrangement])
            if best is None or key < best:
                best = key
        assert best is not None
        self._canonical_cache = best
        return best

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CQ)
            and self._head == other._head
            and sorted(self._body, key=_atom_key) == sorted(other._body, key=_atom_key)
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(map(repr, self._body))
        return f"{self._head!r} :- {body}"


class UCQ:
    """A union of conjunctive queries."""

    __slots__ = ("_disjuncts", "_hash")

    def __init__(self, disjuncts: Iterable[CQ]):
        self._disjuncts = tuple(disjuncts)
        if not self._disjuncts:
            raise ParseError("a UCQ must have at least one disjunct")
        arities = {cq.head.arity for cq in self._disjuncts}
        if len(arities) != 1:
            raise ParseError(f"UCQ disjuncts disagree on head arity: {arities}")
        self._hash = hash(frozenset(self._disjuncts))

    @property
    def disjuncts(self) -> tuple[CQ, ...]:
        return self._disjuncts

    def is_single_cq(self) -> bool:
        return len(self._disjuncts) == 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UCQ) and frozenset(self._disjuncts) == frozenset(
            other._disjuncts
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return " UNION ".join(repr(cq) for cq in self._disjuncts)


def _atom_key(atom: Atom) -> tuple:
    return (
        atom.relation,
        tuple(
            ("c", repr(t.value)) if isinstance(t, Constant) else ("v", t.name)
            for t in atom.terms
        ),
    )


def _atom_signature(atom: Atom, query: CQ) -> tuple:
    """A renaming-invariant signature for sorting atoms before numbering."""
    head_vars = query.head.variables()
    occurrences: dict[Variable, int] = {}
    for other in query.body:
        for term in other.terms:
            if isinstance(term, Variable):
                occurrences[term] = occurrences.get(term, 0) + 1
    per_term = tuple(
        ("c", repr(t.value))
        if isinstance(t, Constant)
        else ("v", occurrences.get(t, 0), t in head_vars)
        for t in atom.terms
    )
    return (atom.relation, per_term)


def _group_permutations(groups: list[list[int]]):
    """All arrangements permuting only within signature-equal groups."""
    per_group = [list(itertools.permutations(g)) for g in groups]
    for combo in itertools.product(*per_group):
        flat: list[int] = []
        for perm in combo:
            flat.extend(perm)
        yield flat


def _numbered_key(head: Atom, ordered_atoms: list[Atom]) -> tuple:
    """Number variables by first appearance over head then atoms."""
    numbering: dict[Variable, int] = {}

    def term_key(term: Term) -> tuple:
        if isinstance(term, Constant):
            return ("c", repr(term.value))
        if term not in numbering:
            numbering[term] = len(numbering)
        return ("v", numbering[term])

    head_part = (head.relation, tuple(term_key(t) for t in head.terms))
    body_part = tuple(
        (atom.relation, tuple(term_key(t) for t in atom.terms))
        for atom in ordered_atoms
    )
    return (head_part, body_part)
