"""Conjunctive-query containment via homomorphisms (Chandra–Merlin 1977).

``Q1 ⊆ Q2`` (over set semantics, and for the natural order of the
positively-ordered semirings used here) iff there is a homomorphism from
``Q2`` to ``Q1``: a mapping of Q2's variables to Q1's terms that maps every
body atom of Q2 onto a body atom of Q1 and the head onto the head.

The search is a straightforward backtracking over atom assignments with
unification, which is exponential in the worst case (the problem is
NP-complete) but fast for the small queries arising from K-examples.
"""

from __future__ import annotations

from typing import Optional

from repro.query.ast import CQ, Atom, Constant, Term, Variable


def find_homomorphism(source: CQ, target: CQ) -> Optional[dict[Variable, Term]]:
    """A homomorphism from ``source`` to ``target``, or ``None``.

    Maps each variable of ``source`` to a term of ``target`` such that every
    source body atom lands on some target body atom and the source head maps
    exactly onto the target head.
    """
    if source.head.relation != target.head.relation:
        return None
    if source.head.arity != target.head.arity:
        return None

    # Avoid accidental variable capture between the two queries.
    source = source.rename_apart("_src")

    mapping: dict[Variable, Term] = {}
    if not _unify_atom(source.head, target.head, mapping):
        return None

    by_relation: dict[str, list[Atom]] = {}
    for atom in target.body:
        by_relation.setdefault(atom.relation, []).append(atom)

    # Most-constrained-first: atoms with fewer candidate images first.
    ordered = sorted(
        source.body, key=lambda a: len(by_relation.get(a.relation, ()))
    )

    if _assign(ordered, 0, by_relation, mapping):
        return {
            Variable(v.name[: -len("_src")]): t for v, t in mapping.items()
        }
    return None


def _assign(
    atoms: list[Atom],
    index: int,
    by_relation: dict[str, list[Atom]],
    mapping: dict[Variable, Term],
) -> bool:
    if index == len(atoms):
        return True
    atom = atoms[index]
    for candidate in by_relation.get(atom.relation, ()):
        if candidate.arity != atom.arity:
            continue
        trail = dict(mapping)
        if _unify_atom(atom, candidate, mapping):
            if _assign(atoms, index + 1, by_relation, mapping):
                return True
        mapping.clear()
        mapping.update(trail)
    return False


def _unify_atom(source: Atom, target: Atom, mapping: dict[Variable, Term]) -> bool:
    """Extend ``mapping`` so ``source`` maps onto ``target``; False if impossible."""
    if source.relation != target.relation or source.arity != target.arity:
        return False
    for s_term, t_term in zip(source.terms, target.terms):
        if isinstance(s_term, Constant):
            if not isinstance(t_term, Constant) or s_term != t_term:
                return False
        else:
            bound = mapping.get(s_term)
            if bound is None:
                mapping[s_term] = t_term
            elif bound != t_term:
                return False
    return True


def is_contained_in(q1: CQ, q2: CQ) -> bool:
    """True iff ``q1 ⊆ q2`` (every answer of q1 is an answer of q2)."""
    return find_homomorphism(q2, q1) is not None


def is_equivalent(q1: CQ, q2: CQ) -> bool:
    """True iff ``q1`` and ``q2`` return the same answers on every database."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def is_strictly_contained_in(q1: CQ, q2: CQ) -> bool:
    """True iff ``q1 ⊊ q2``: contained but not equivalent."""
    return is_contained_in(q1, q2) and not is_contained_in(q2, q1)


def ucq_is_contained_in(u1, u2) -> bool:
    """``u1 ⊆ u2`` for UCQs: every disjunct of u1 is contained in some
    disjunct of u2 (Sagiv-Yannakakis)."""
    from repro.query.ast import UCQ

    d1 = u1.disjuncts if isinstance(u1, UCQ) else (u1,)
    d2 = u2.disjuncts if isinstance(u2, UCQ) else (u2,)
    return all(any(is_contained_in(a, b) for b in d2) for a in d1)


def ucq_is_equivalent(u1, u2) -> bool:
    """UCQ equivalence via mutual containment."""
    return ucq_is_contained_in(u1, u2) and ucq_is_contained_in(u2, u1)
