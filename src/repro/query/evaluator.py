"""Provenance-tracking evaluation of CQs and UCQs over K-databases.

Implements Definition 2.2: the annotation of each output tuple is the sum,
over all derivations producing it, of the product of the annotations of the
tuples in the derivation's image.  Evaluation always produces ``N[X]``
polynomials; coarser semirings are obtained with
:func:`repro.semirings.coarsen`.

The join strategy is index-nested-loops with a greedy most-selective-atom
ordering, which is plenty for the K-example workloads of the paper (a few
atoms over generated datasets).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, Optional

from repro.db.database import KDatabase
from repro.db.tuples import Tuple
from repro.errors import EvaluationError
from repro.query.ast import CQ, UCQ, Atom, Constant, Variable
from repro.semirings.polynomial import Monomial, Polynomial

OutputRow = tuple  # the values of the head after substitution


class Derivation:
    """A single derivation: the atom-to-tuple assignment of one match."""

    __slots__ = ("_query", "_images", "_bindings")

    def __init__(
        self,
        query: CQ,
        images: tuple[Tuple, ...],
        bindings: dict[Variable, Any],
    ):
        self._query = query
        self._images = images
        self._bindings = bindings

    @property
    def query(self) -> CQ:
        return self._query

    @property
    def images(self) -> tuple[Tuple, ...]:
        """The tuple assigned to each body atom, in body order."""
        return self._images

    @property
    def bindings(self) -> dict[Variable, Any]:
        return dict(self._bindings)

    def output(self) -> OutputRow:
        """The head tuple produced by this derivation."""
        return _head_values(self._query.head, self._bindings)

    def monomial(self) -> Monomial:
        """The provenance monomial: product of the image annotations."""
        return Monomial(tup.annotation for tup in self._images)

    def __repr__(self) -> str:
        return f"Derivation({self.output()!r} via {self.monomial()!r})"


def derivations(query: CQ, database: KDatabase) -> Iterator[Derivation]:
    """Enumerate every derivation of ``query`` over ``database``."""
    for name in {atom.relation for atom in query.body}:
        if name not in database.schema:
            raise EvaluationError(f"query uses unknown relation {name!r}")
        for atom in query.body:
            if (
                atom.relation == name
                and atom.arity != database.schema.relation(name).arity
            ):
                raise EvaluationError(
                    f"atom {atom!r} does not match arity of relation {name!r}"
                )

    order = _atom_order(query, database)
    assignment: list[Optional[Tuple]] = [None] * len(query.body)
    yield from _search(query, database, order, 0, {}, assignment)


def _search(
    query: CQ,
    database: KDatabase,
    order: list[int],
    depth: int,
    bindings: dict[Variable, Any],
    assignment: list[Optional[Tuple]],
) -> Iterator[Derivation]:
    if depth == len(order):
        yield Derivation(query, tuple(assignment), dict(bindings))  # type: ignore[arg-type]
        return
    atom_index = order[depth]
    atom = query.body[atom_index]
    relation = database.relation(atom.relation)
    fixed: dict[int, Any] = {}
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            fixed[pos] = term.value
        elif term in bindings:
            fixed[pos] = bindings[term]
    for tup in relation.matching(fixed):
        new_vars: list[Variable] = []
        ok = True
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term not in bindings:
                bindings[term] = tup.values[pos]
                new_vars.append(term)
            elif isinstance(term, Variable) and bindings[term] != tup.values[pos]:
                ok = False
                break
        if ok:
            assignment[atom_index] = tup
            yield from _search(query, database, order, depth + 1, bindings, assignment)
            assignment[atom_index] = None
        for var in new_vars:
            del bindings[var]


def _atom_order(query: CQ, database: KDatabase) -> list[int]:
    """Greedy join order: start from the most selective atom, then grow
    the connected frontier, preferring atoms that share bound variables."""
    remaining = set(range(len(query.body)))
    bound_vars: set[Variable] = set()
    order: list[int] = []

    def selectivity(index: int) -> tuple:
        atom = query.body[index]
        n_bound = sum(
            1
            for t in atom.terms
            if isinstance(t, Constant) or t in bound_vars
        )
        size = len(database.relation(atom.relation))
        return (-n_bound, size)

    while remaining:
        best = min(remaining, key=selectivity)
        remaining.discard(best)
        order.append(best)
        bound_vars.update(query.body[best].variables())
    return order


def _head_values(head: Atom, bindings: dict[Variable, Any]) -> OutputRow:
    values = []
    for term in head.terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            if term not in bindings:
                raise EvaluationError(f"unbound head variable {term!r}")
            values.append(bindings[term])
    return tuple(values)


def evaluate_cq(query: CQ, database: KDatabase) -> dict[OutputRow, Polynomial]:
    """Evaluate a CQ, returning each output row's provenance polynomial."""
    result: dict[OutputRow, Polynomial] = {}
    for derivation in derivations(query, database):
        row = derivation.output()
        mono = derivation.monomial()
        current = result.get(row, Polynomial.zero())
        result[row] = current + mono
    return result


def evaluate_ucq(query: UCQ, database: KDatabase) -> dict[OutputRow, Polynomial]:
    """Evaluate a UCQ: provenance polynomials add across disjuncts."""
    result: dict[OutputRow, Polynomial] = {}
    for cq in query.disjuncts:
        for row, poly in evaluate_cq(cq, database).items():
            current = result.get(row, Polynomial.zero())
            result[row] = current + poly
    return result


def evaluate(query: "CQ | UCQ", database: KDatabase) -> dict[OutputRow, Polynomial]:
    """Evaluate a CQ or UCQ with provenance tracking."""
    if isinstance(query, UCQ):
        return evaluate_ucq(query, database)
    return evaluate_cq(query, database)
