"""Provenance-tracking evaluation of CQs and UCQs over K-databases.

Implements Definition 2.2: the annotation of each output tuple is the sum,
over all derivations producing it, of the product of the annotations of the
tuples in the derivation's image.  Evaluation always produces ``N[X]``
polynomials; coarser semirings are obtained with
:func:`repro.semirings.coarsen`.

The implementation lives in :mod:`repro.engine` — this module is the
stable facade over the default (naive) engine, kept so the historical
import surface (``from repro.query.evaluator import evaluate``) keeps
working.  Pick a different execution backend with
:func:`repro.engine.get_engine`.

The engine imports are deliberately lazy: ``repro.engine`` itself uses
the query AST, and importing it here at module scope would close an
import cycle through ``repro.query.__init__``.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.db.database import KDatabase
from repro.query.ast import CQ, UCQ
from repro.semirings.polynomial import Polynomial

if TYPE_CHECKING:
    from repro.engine.base import Derivation, OutputRow

__all__ = [
    "Derivation",
    "OutputRow",
    "derivations",
    "evaluate",
    "evaluate_cq",
    "evaluate_ucq",
]


def derivations(query: CQ, database: KDatabase) -> "Iterator[Derivation]":
    """Enumerate every derivation of ``query`` over ``database``."""
    from repro.engine.naive import derivations as naive_derivations

    return naive_derivations(query, database)


def evaluate_cq(query: CQ, database: KDatabase) -> "dict[OutputRow, Polynomial]":
    """Evaluate a CQ, returning each output row's provenance polynomial."""
    from repro.engine.registry import get_engine

    return get_engine().evaluate_cq(query, database)


def evaluate_ucq(query: UCQ, database: KDatabase) -> "dict[OutputRow, Polynomial]":
    """Evaluate a UCQ: provenance polynomials add across disjuncts."""
    from repro.engine.registry import get_engine

    return get_engine().evaluate_ucq(query, database)


def evaluate(query: "CQ | UCQ", database: KDatabase) -> "dict[OutputRow, Polynomial]":
    """Evaluate a CQ or UCQ with provenance tracking."""
    from repro.engine.registry import get_engine

    return get_engine().evaluate(query, database)


def __getattr__(name: str):
    # Lazy re-exports of the engine-layer types (see module docstring).
    if name in ("Derivation", "OutputRow"):
        from repro.engine import base

        return getattr(base, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
