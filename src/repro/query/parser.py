"""A small datalog-style parser for CQs and UCQs.

Grammar (whitespace-insensitive)::

    ucq    := cq ( ";" cq )*
    cq     := atom ":-" atom ("," atom)*
    atom   := NAME "(" term ("," term)* ")"
    term   := NAME            -- variable (lowercase start)
            | 'text' | "text" -- string constant
            | 123 | 1.5       -- numeric constant

Example::

    parse_cq("Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src)")
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.query.ast import CQ, UCQ, Atom, Constant, Variable

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<comma>,) |
        (?P<implies>:-) |
        (?P<semicolon>;) |
        (?P<string>'[^']*'|"[^"]*") |
        (?P<number>-?\d+(?:\.\d+)?) |
        (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:pos + 20]
            raise ParseError(f"unexpected input at position {pos}: {remainder!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind is not None:
            tokens.append((kind, match.group(kind)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> "tuple[str, str] | None":
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _expect(self, kind: str) -> str:
        token = self._peek()
        if token is None or token[0] != kind:
            raise ParseError(f"expected {kind}, got {token}")
        self._pos += 1
        return token[1]

    def parse_term(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in term")
        kind, text = token
        self._pos += 1
        if kind == "string":
            return Constant(text[1:-1])
        if kind == "number":
            value = float(text) if "." in text else int(text)
            return Constant(value)
        if kind == "name":
            return Variable(text)
        raise ParseError(f"unexpected token in term: {text!r}")

    def parse_atom(self) -> Atom:
        relation = self._expect("name")
        self._expect("lparen")
        terms = [self.parse_term()]
        while self._peek() is not None and self._peek()[0] == "comma":
            self._pos += 1
            terms.append(self.parse_term())
        self._expect("rparen")
        return Atom(relation, terms)

    def parse_cq(self) -> CQ:
        head = self.parse_atom()
        self._expect("implies")
        body = [self.parse_atom()]
        while self._peek() is not None and self._peek()[0] == "comma":
            self._pos += 1
            body.append(self.parse_atom())
        return CQ(head, body)

    def parse_ucq(self) -> UCQ:
        disjuncts = [self.parse_cq()]
        while self._peek() is not None and self._peek()[0] == "semicolon":
            self._pos += 1
            disjuncts.append(self.parse_cq())
        if self._peek() is not None:
            raise ParseError(f"trailing input: {self._peek()}")
        return UCQ(disjuncts)


def parse_cq(text: str) -> CQ:
    """Parse a single conjunctive query from datalog syntax."""
    parser = _Parser(_tokenize(text))
    cq = parser.parse_cq()
    if parser._peek() is not None:
        raise ParseError(f"trailing input: {parser._peek()}")
    return cq


def parse_ucq(text: str) -> UCQ:
    """Parse a semicolon-separated union of conjunctive queries."""
    return _Parser(_tokenize(text)).parse_ucq()
