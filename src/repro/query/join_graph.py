"""Join graphs and connectivity of queries.

The join graph of a CQ has the body atoms as nodes with an edge between two
atoms iff they share at least one *variable* (Section 3.3).  A query is
connected iff its join graph is; a UCQ is connected iff every disjunct is
(the Table 4 adjustment for the UCQ case).
"""

from __future__ import annotations

import networkx as nx

from repro.query.ast import CQ, UCQ


def join_graph(query: CQ) -> nx.Graph:
    """The join graph of a CQ as a networkx graph over atom indexes."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(query.body)))
    for i, atom_a in enumerate(query.body):
        vars_a = atom_a.variables()
        for j in range(i + 1, len(query.body)):
            if vars_a & query.body[j].variables():
                graph.add_edge(i, j)
    return graph


def is_connected(query: "CQ | UCQ") -> bool:
    """True iff the query's join graph is connected.

    Single-atom bodies are connected by convention.  For a UCQ, every
    disjunct must be connected.
    """
    if isinstance(query, UCQ):
        return all(is_connected(cq) for cq in query.disjuncts)
    if len(query.body) <= 1:
        return True
    return nx.is_connected(join_graph(query))
