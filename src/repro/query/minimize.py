"""CQ minimization: computing the core of a conjunctive query.

A CQ is *minimal* if no body atom can be removed while preserving
equivalence.  Removing atoms only enlarges the answer set, so an atom is
redundant iff the reduced query is still contained in the original —
i.e. iff there is a homomorphism from the original onto the reduced body.
Iterating to a fixpoint yields the core, which is unique up to isomorphism.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.query.ast import CQ
from repro.query.containment import find_homomorphism


def minimize_cq(query: CQ) -> CQ:
    """The core of ``query``: an equivalent CQ with an irredundant body."""
    body = list(query.body)
    changed = True
    while changed and len(body) > 1:
        changed = False
        for index in range(len(body)):
            reduced_body = body[:index] + body[index + 1:]
            try:
                reduced = CQ(query.head, reduced_body)
            except ParseError:
                # Removing the atom would unbind a head variable.
                continue
            if find_homomorphism(query, reduced) is not None:
                body = reduced_body
                changed = True
                break
    return CQ(query.head, body)


def is_minimal(query: CQ) -> bool:
    """True iff no body atom of ``query`` is redundant."""
    return len(minimize_cq(query).body) == len(query.body)
