"""Scenario benchmark snapshots (``BENCH_*.json``): schema, diffing.

A snapshot is one generation of the scenario matrix: per-cell wall time,
effort counters, cache provenance, and — the part that must never move
without a code change meaning it — a **result hash** over exactly the
deterministic fields of the outcome (found / privacy / LOI /
edges_used / variable_targets).  Timing and execution-provenance fields
(seconds, cache_hit, executor, ...) are declared volatile: they are the
perf *trajectory*, expected to move run to run, and are stripped by
:func:`normalize` before any identity comparison.

:func:`diff` compares two snapshots cell by cell:

* **result-hash drift** — same cell, same inputs (``content_hash``),
  different ``result_hash``.  This is the fatal signal: the optimizer
  changed its answer.
* **changed inputs** — same cell id but a different ``content_hash``
  (the matrix, generators, or hash schema changed); reported, never
  conflated with drift.
* **throughput regressions/speedups** — per-cell search seconds moved
  beyond a tolerance; informational by default, fatal only when the
  caller sets ``max_regression``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import ScenarioError
from repro.store.hashing import canonical_json, hash_text

#: Snapshot schema identifier (bump on layout changes).
SNAPSHOT_SCHEMA = "repro-scenarios-v1"

#: Keys whose values legitimately differ between two runs of the same
#: code on the same inputs: timing, and where/how the result was served.
VOLATILE_FIELDS = frozenset({
    "seconds", "wall_seconds", "job_seconds", "generated_at",
    "cache_hit", "cache_hits", "session_reused", "sessions_reused",
    "executor", "engine", "workers", "trace",
})

#: The payload fields a cell's ``result_hash`` digests — exactly the
#: machine-independent outcome of a candidate-capped search.
RESULT_HASH_FIELDS = (
    "found", "privacy", "loi", "edges_used", "variable_targets",
)


def result_hash(payload: dict) -> str:
    """Hex digest of the deterministic slice of one result payload."""
    loi = payload.get("loi")
    if isinstance(loi, float) and not math.isfinite(loi):
        loi = None
    slice_ = {name: payload.get(name) for name in RESULT_HASH_FIELDS}
    slice_["loi"] = loi
    return hash_text(canonical_json(slice_))


def normalize(snapshot: dict):
    """``snapshot`` with every volatile field removed, recursively.

    Two runs of the same matrix+seed on the same code must normalize to
    equal values — this is the identity the acceptance tests compare.
    """
    if isinstance(snapshot, dict):
        return {
            key: normalize(value)
            for key, value in snapshot.items()
            if key not in VOLATILE_FIELDS
        }
    if isinstance(snapshot, list):
        return [normalize(value) for value in snapshot]
    return snapshot


def save(path: str, snapshot: dict) -> None:
    """Write a snapshot as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    """Read a snapshot, mapping failures to :class:`ScenarioError`."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ScenarioError(f"cannot read snapshot {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(
            f"malformed snapshot JSON in {path!r}: {exc}"
        ) from None
    if not isinstance(data, dict) or "cells" not in data:
        raise ScenarioError(
            f"{path!r} is not a scenario snapshot (no 'cells' key)"
        )
    schema = data.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ScenarioError(
            f"{path!r} has snapshot schema {schema!r}; "
            f"this code reads {SNAPSHOT_SCHEMA!r}"
        )
    return data


@dataclass
class SnapshotDiff:
    """The outcome of comparing an old snapshot against a new one."""

    drifted: list[dict] = field(default_factory=list)
    changed_inputs: list[str] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)
    regressions: list[dict] = field(default_factory=list)
    speedups: list[dict] = field(default_factory=list)
    old_job_seconds: float = 0.0
    new_job_seconds: float = 0.0
    compared: int = 0
    #: Ratio above which a per-cell slowdown is flagged (informational).
    tolerance: float = 1.5

    @property
    def has_drift(self) -> bool:
        return bool(self.drifted)

    def lines(self) -> list[str]:
        """Human-readable report, one finding per line."""
        out = [
            f"compared {self.compared} cell"
            f"{'s' if self.compared != 1 else ''}: "
            f"{self.old_job_seconds:.2f}s -> {self.new_job_seconds:.2f}s "
            f"of search"
        ]
        for entry in self.drifted:
            out.append(
                f"DRIFT {entry['cell']}: result hash "
                f"{entry['old'][:12]} -> {entry['new'][:12]}"
            )
        for cell_id in self.changed_inputs:
            out.append(f"CHANGED-INPUTS {cell_id}: content hash differs "
                       f"(matrix or generators moved; not comparable)")
        for cell_id in self.only_old:
            out.append(f"REMOVED {cell_id}: only in the old snapshot")
        for cell_id in self.only_new:
            out.append(f"ADDED {cell_id}: only in the new snapshot")
        for entry in self.regressions:
            out.append(
                f"SLOWER {entry['cell']}: {entry['old_seconds']:.3f}s -> "
                f"{entry['new_seconds']:.3f}s ({entry['ratio']:.2f}x)"
            )
        for entry in self.speedups:
            out.append(
                f"FASTER {entry['cell']}: {entry['old_seconds']:.3f}s -> "
                f"{entry['new_seconds']:.3f}s ({entry['ratio']:.2f}x)"
            )
        if not self.has_drift:
            out.append("result hashes: OK (no drift)")
        return out


def diff(old: dict, new: dict, tolerance: float = 1.5) -> SnapshotDiff:
    """Compare two snapshots cell by cell (see module docstring)."""
    report = SnapshotDiff(tolerance=tolerance)
    old_cells = {c["cell"]: c for c in old.get("cells", [])}
    new_cells = {c["cell"]: c for c in new.get("cells", [])}
    report.only_old = sorted(set(old_cells) - set(new_cells))
    report.only_new = sorted(set(new_cells) - set(old_cells))
    for cell_id in (c["cell"] for c in old.get("cells", [])
                    if c["cell"] in new_cells):
        a, b = old_cells[cell_id], new_cells[cell_id]
        if a.get("content_hash") != b.get("content_hash"):
            report.changed_inputs.append(cell_id)
            continue
        report.compared += 1
        if a.get("result_hash") != b.get("result_hash"):
            report.drifted.append({
                "cell": cell_id,
                "old": a.get("result_hash") or "<none>",
                "new": b.get("result_hash") or "<none>",
            })
        old_s = float(a.get("seconds") or 0.0)
        new_s = float(b.get("seconds") or 0.0)
        report.old_job_seconds += old_s
        report.new_job_seconds += new_s
        # Sub-5ms cells are all noise; don't rate their ratios.
        if old_s >= 0.005 and new_s >= 0.005:
            ratio = new_s / old_s
            entry = {"cell": cell_id, "old_seconds": old_s,
                     "new_seconds": new_s, "ratio": ratio}
            if ratio > tolerance:
                report.regressions.append(entry)
            elif ratio < 1.0 / tolerance:
                report.speedups.append(entry)
    return report
