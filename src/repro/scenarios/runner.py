"""Fan a scenario matrix through the job service and snapshot it.

:func:`run_matrix` is the whole harness: materialize the matrix into
seeded inline jobs, submit them to an in-process
:class:`~repro.service.server.JobService` on the chosen execution tier
(``thread``, ``process``, or ``remote``), wait for the stream to
drain, and fold the per-cell outcomes into one
``BENCH_scenarios.json``-shaped snapshot (see
:mod:`repro.scenarios.snapshot` for the schema and which fields are
identity vs. trajectory).

The ``remote`` tier needs a fleet to execute: ``fleet_port`` exposes
the in-process service over HTTP (a daemon serving thread) so that
``repro worker`` processes — on this host or others — can claim the
leased cells over the v1 wire protocol.  Everything else (snapshot
shape, hashes, cache behavior) is tier-independent by construction.

With a persistent store attached the run dedups against everything the
store has ever seen: repeated cells — in this run, a previous run, or a
run on the *other* execution tier — come back as ``cache_hit`` cells
whose payload (timing included) is the original run's.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import ScenarioError
from repro.obs import clock
from repro.scenarios.matrix import ScenarioMatrix, materialize
from repro.scenarios.snapshot import SNAPSHOT_SCHEMA, result_hash
from repro.service.server import JobService
from repro.service.state import TERMINAL_STATES
from repro.store import JobStore, job_content_hash

#: How often the driver polls the service for terminal records.
_POLL_SECONDS = 0.01


def run_matrix(
    matrix: ScenarioMatrix,
    seed: int,
    executor: str = "thread",
    workers: int = 2,
    store_path: Optional[str] = None,
    settings=None,
    engine: str = "naive",
    trace: bool = False,
    trace_path: Optional[str] = None,
    fleet_host: str = "127.0.0.1",
    fleet_port: Optional[int] = None,
    lease_seconds: float = 15.0,
) -> dict:
    """Run every cell of ``matrix`` and return the snapshot dict.

    ``store_path`` attaches a persistent :class:`~repro.store.JobStore`
    (shared across runs and execution tiers); ``None`` runs without
    caching.  Any cell that fails aborts the whole run with a
    :class:`ScenarioError` — a seeded, candidate-capped matrix has no
    legitimate per-cell failures, so one is a bug, not a data point.

    ``engine`` picks the relational evaluation backend, exactly like
    ``executor`` picks the concurrency tier: content hashes, result
    hashes, and payloads are identical across engines, so runs on
    different engines share the persistent cache.

    ``trace`` turns on per-job span tracing (``trace_path`` also streams
    one ``repro-trace-v1`` line per job); traces live in the VOLATILE
    tier, so result hashes are identical with tracing on or off.

    ``executor="remote"`` requires ``fleet_port``: the service is
    served over HTTP on ``fleet_host:fleet_port`` for the run's
    duration so fleet workers can claim the cells; ``lease_seconds``
    tunes how fast a dead worker's cells are requeued.
    """
    from repro.experiments.settings import DEFAULT_SETTINGS

    matrix.validate()
    if executor == "remote" and fleet_port is None:
        raise ScenarioError(
            "executor 'remote' needs fleet_port: the run must expose the "
            "service over HTTP for `repro worker` processes to claim from"
        )
    settings = settings or DEFAULT_SETTINGS
    jobs = materialize(matrix, seed, engine=engine)
    store = JobStore(store_path) if store_path else None
    service = JobService(
        settings=settings,
        worker_threads=max(1, workers),
        max_queue=0,  # unbounded: the matrix is submitted all at once
        store=store,
        executor=executor,
        engine=engine,
        trace=trace,
        trace_path=trace_path,
        lease_seconds=lease_seconds,
    )
    # Snapshot timestamp (wall, display-only) vs. run duration (perf).
    started = time.time()
    wall_t0 = clock.perf_counter()
    service.start()
    server = None
    serve_thread = None
    if fleet_port is not None:
        from repro.service.server import make_server

        server = make_server(service, fleet_host, fleet_port, quiet=True)
        serve_thread = threading.Thread(
            target=server.serve_forever,
            name="repro-scenarios-fleet-server",
            daemon=True,
        )
        serve_thread.start()
    try:
        ids = [(cell, job, service.submit(job)) for cell, job in jobs]
        cells = [
            _cell_entry(cell, job, _await(service, job_id), settings)
            for cell, job, job_id in ids
        ]
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
            if serve_thread is not None:
                serve_thread.join(timeout=5.0)
        service.shutdown()
        if store is not None:
            store.close()
    wall = clock.perf_counter() - wall_t0
    failures = [c for c in cells if c.get("error")]
    if failures:
        first = failures[0]
        raise ScenarioError(
            f"{len(failures)} of {len(cells)} scenario cells failed; "
            f"first: {first['cell']}: {first['error']}"
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "matrix": matrix.to_dict(),
        "seed": seed,
        "executor": executor,
        "engine": engine,
        "workers": max(1, workers),
        "generated_at": started,
        "wall_seconds": wall,
        "summary": {
            "cells": len(cells),
            "found": sum(1 for c in cells if c["found"]),
            "cache_hits": sum(1 for c in cells if c["cache_hit"]),
            "job_seconds": sum(c["seconds"] for c in cells),
            "candidates_scanned": sum(c["candidates_scanned"] for c in cells),
        },
        "cells": cells,
    }


def _await(service: JobService, job_id: str):
    """Block until ``job_id`` is terminal; return its record."""
    while True:
        record = service.record(job_id)
        if record.state in TERMINAL_STATES:
            return record
        time.sleep(_POLL_SECONDS)


def _cell_entry(cell, job, record, settings) -> dict:
    """One snapshot row: identity hashes + outcome + trajectory fields."""
    result = record.result
    if result is None:
        return {
            "cell": cell.cell_id, "axes": cell.axes(),
            "error": record.error or f"job ended {record.state!r} "
                                     f"with no result",
            "found": False, "cache_hit": False, "seconds": 0.0,
            "candidates_scanned": 0,
        }
    payload = result.to_payload()
    return {
        "cell": cell.cell_id,
        "axes": cell.axes(),
        "content_hash": job_content_hash(job, settings),
        "result_hash": result_hash(payload),
        "found": payload["found"],
        "privacy": payload["privacy"],
        "loi": payload["loi"],
        "edges_used": payload["edges_used"],
        "variable_targets": payload["variable_targets"],
        "candidates_scanned": result.stats.candidates_scanned,
        "privacy_computations": result.stats.privacy_computations,
        # Trajectory (volatile) fields — see snapshot.VOLATILE_FIELDS.
        "seconds": payload["seconds"],
        "cache_hit": payload["cache_hit"],
        "session_reused": payload["session_reused"],
        "executor": record.executor,
        "error": payload["error"],
    }
