"""Seeded scenario-matrix harness with an in-repo perf trajectory.

The paper's evaluation is a sweep: database scale x tree shape x query
family x K-example size x threshold.  This package makes that sweep a
first-class, reproducible artifact:

* :mod:`repro.scenarios.matrix` — the declarative
  :class:`ScenarioMatrix` and its seeded materialization into
  content-addressable inline jobs,
* :mod:`repro.scenarios.runner` — :func:`run_matrix`, which fans the
  cells through the job service (thread or process tier, optional
  persistent result cache),
* :mod:`repro.scenarios.snapshot` — the ``BENCH_scenarios.json``
  schema, the per-cell result hash, and :func:`diff` for comparing two
  generations (result-hash drift is fatal; timing moves are trajectory).

Driven by ``repro scenarios run | list | diff``; the committed
``benchmarks/BENCH_scenarios.json`` baseline plus the CI scenario-smoke
leg keep the trajectory honest (see ``docs/PERFORMANCE.md``).
"""

from repro.scenarios.matrix import (
    FULL_MATRIX,
    PRESETS,
    SCALES,
    SMOKE_MATRIX,
    ScenarioCell,
    ScenarioMatrix,
    materialize,
)
from repro.scenarios.runner import run_matrix
from repro.scenarios.snapshot import (
    RESULT_HASH_FIELDS,
    SNAPSHOT_SCHEMA,
    VOLATILE_FIELDS,
    SnapshotDiff,
    diff,
    load,
    normalize,
    result_hash,
    save,
)

__all__ = [
    "FULL_MATRIX",
    "PRESETS",
    "RESULT_HASH_FIELDS",
    "SCALES",
    "SMOKE_MATRIX",
    "SNAPSHOT_SCHEMA",
    "ScenarioCell",
    "ScenarioMatrix",
    "SnapshotDiff",
    "VOLATILE_FIELDS",
    "diff",
    "load",
    "materialize",
    "normalize",
    "result_hash",
    "run_matrix",
    "save",
]
