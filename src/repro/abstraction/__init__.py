"""Provenance abstraction: trees, abstraction functions, concretizations."""

from repro.abstraction.tree import AbstractionTree, TreeNode
from repro.abstraction.function import AbstractionFunction
from repro.abstraction.builders import (
    balanced_tree,
    tree_by_attributes,
    tree_from_categories,
    tree_over_annotations,
)
from repro.abstraction.concretization import ConcretizationEngine

__all__ = [
    "AbstractionFunction",
    "AbstractionTree",
    "ConcretizationEngine",
    "TreeNode",
    "balanced_tree",
    "tree_by_attributes",
    "tree_from_categories",
    "tree_over_annotations",
]
