"""Abstraction functions (Definition 3.1).

An abstraction function maps each annotation *occurrence* of a K-example to
an ancestor of that annotation in the abstraction tree (or to itself).  The
common case — mapping every occurrence of a variable uniformly — is built
with :meth:`AbstractionFunction.uniform`; per-occurrence maps are supported
because Definition 3.1 allows them.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import AbstractionError
from repro.abstraction.tree import AbstractionTree
from repro.provenance.kexample import AbstractedKExample, KExample, KExampleRow
from repro.semirings.semimodule import AggregateExpression


class AbstractionFunction:
    """A choice of abstraction target per annotation occurrence.

    ``assignment`` maps ``(row_index, occurrence_index)`` to a tree label;
    positions not present are mapped to themselves (the identity).  The
    constructor validates that every target is a proper tree ancestor of the
    source annotation.
    """

    __slots__ = ("_tree", "_assignment")

    def __init__(
        self,
        tree: AbstractionTree,
        example: KExample,
        assignment: Mapping[tuple[int, int], str],
    ):
        self._tree = tree
        cleaned: dict[tuple[int, int], str] = {}
        for (row_idx, occ_idx), target in assignment.items():
            if row_idx < 0 or row_idx >= len(example.rows):
                raise AbstractionError(f"row index out of range: {row_idx}")
            row = example.rows[row_idx]
            if occ_idx < 0 or occ_idx >= len(row.occurrences):
                raise AbstractionError(
                    f"occurrence index out of range: {(row_idx, occ_idx)}"
                )
            source = row.occurrences[occ_idx]
            if target == source:
                continue  # identity; not an abstraction
            if source not in tree or not tree.is_leaf(source):
                raise AbstractionError(
                    f"cannot abstract {source!r}: not a leaf of the tree"
                )
            if not tree.is_ancestor(source, target):
                raise AbstractionError(
                    f"{target!r} is not an ancestor of {source!r}"
                )
            cleaned[(row_idx, occ_idx)] = target
        self._assignment = cleaned

    @classmethod
    def identity(cls, tree: AbstractionTree, example: KExample) -> "AbstractionFunction":
        """The abstraction that changes nothing."""
        return cls(tree, example, {})

    @classmethod
    def _from_validated(
        cls,
        tree: AbstractionTree,
        assignment: dict[tuple[int, int], str],
    ) -> "AbstractionFunction":
        """Wrap an assignment known to be valid, skipping re-validation.

        Internal fast path for the optimizer, which derives assignments
        from precomputed ancestor chains; ``assignment`` must already
        exclude identity entries and map each position to a proper tree
        ancestor of its source annotation.
        """
        function = cls.__new__(cls)
        function._tree = tree
        function._assignment = assignment
        return function

    @classmethod
    def uniform(
        cls,
        tree: AbstractionTree,
        example: KExample,
        variable_targets: Mapping[str, str],
    ) -> "AbstractionFunction":
        """Map every occurrence of each variable to the same target label."""
        assignment: dict[tuple[int, int], str] = {}
        for row_idx, row in enumerate(example.rows):
            for occ_idx, ann in enumerate(row.occurrences):
                target = variable_targets.get(ann)
                if target is not None and target != ann:
                    assignment[(row_idx, occ_idx)] = target
        return cls(tree, example, assignment)

    @property
    def tree(self) -> AbstractionTree:
        return self._tree

    @property
    def assignment(self) -> dict[tuple[int, int], str]:
        return dict(self._assignment)

    def target(self, example: KExample, row_idx: int, occ_idx: int) -> str:
        """Where the given occurrence is mapped (itself if not abstracted)."""
        key = (row_idx, occ_idx)
        if key in self._assignment:
            return self._assignment[key]
        return example.rows[row_idx].occurrences[occ_idx]

    def num_abstracted(self) -> int:
        return len(self._assignment)

    def edges_used(self, example: KExample) -> int:
        """The number of distinct tree edges used by the abstraction.

        This is the paper's "optimal abstraction size" metric: the union of
        the edges on every (leaf -> target) path.
        """
        edges: set[tuple[str, str]] = set()
        for (row_idx, occ_idx), target in self._assignment.items():
            source = example.rows[row_idx].occurrences[occ_idx]
            edges.update(self._tree.path_edges(source, target))
        return len(edges)

    def apply(self, example: KExample) -> AbstractedKExample:
        """``A_T(Ex)``: the abstracted K-example."""
        new_rows: list[KExampleRow] = []
        for row_idx, row in enumerate(example.rows):
            values = [
                self._assignment.get((row_idx, occ_idx), ann)
                for occ_idx, ann in enumerate(row.occurrences)
            ]
            new_rows.append(KExampleRow(row.output, values))
        return AbstractedKExample(new_rows, example, self._assignment)

    def apply_to_aggregate(
        self, example: KExample, expression: AggregateExpression
    ) -> AggregateExpression:
        """Abstract the annotation side of an aggregate expression.

        Uses the per-variable view of the assignment (aggregate expressions
        do not carry row/occurrence indexes); requires the assignment to be
        uniform per variable.
        """
        variable_targets: dict[str, str] = {}
        for (row_idx, occ_idx), target in self._assignment.items():
            source = example.rows[row_idx].occurrences[occ_idx]
            existing = variable_targets.get(source)
            if existing is not None and existing != target:
                raise AbstractionError(
                    "aggregate abstraction requires a per-variable-uniform "
                    f"assignment; {source!r} maps to both {existing!r} and "
                    f"{target!r}"
                )
            variable_targets[source] = target
        return expression.rename(variable_targets)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AbstractionFunction)
            and self._assignment == other._assignment
            and self._tree is other._tree
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._assignment.items())))

    def __repr__(self) -> str:
        if not self._assignment:
            return "AbstractionFunction(identity)"
        parts = [
            f"{pos}->{label}" for pos, label in sorted(self._assignment.items())
        ]
        return "AbstractionFunction(" + ", ".join(parts) + ")"
