"""Concretizations of abstracted K-examples (Definition 3.3).

A concretization replaces every abstract label occurrence with one of the
leaves below it.  The engine provides:

* exact counting via the product formula of Proposition 3.5,
* lazy enumeration (full or per-row),
* the connectivity filter of Section 4.1 (a concretization whose monomial
  tuples do not form a connected constant-sharing graph can never admit a
  connected consistent query),
* memoized connectivity checks (one of the Figure 19 ablation components).

The engine resolves leaf labels to tuples through the K-example's
annotation registry, which must cover every leaf of the tree (the tree is
built over database annotations).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import networkx as nx

from repro.abstraction.tree import AbstractionTree
from repro.db.database import AnnotationRegistry
from repro.provenance.kexample import AbstractedKExample, KExample, KExampleRow


class ConcretizationEngine:
    """Counts, enumerates, and filters concretizations of abstractions."""

    def __init__(
        self,
        tree: AbstractionTree,
        registry: AnnotationRegistry,
        use_connectivity_cache: bool = True,
    ):
        self._tree = tree
        self._registry = registry
        self._use_cache = use_connectivity_cache
        self._connectivity_cache: dict[tuple[str, ...], bool] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def tree(self) -> AbstractionTree:
        return self._tree

    @property
    def connectivity_cache_size(self) -> int:
        """Memoized per-row connectivity verdicts (0 when the cache is off)."""
        return len(self._connectivity_cache)

    # -- counting (Proposition 3.5) ----------------------------------------

    def count(self, abstracted: AbstractedKExample) -> int:
        """``|C(Ex~)|``: the product of subtree leaf counts per occurrence."""
        total = 1
        for row in abstracted.rows:
            for label in row.occurrences:
                if label in self._tree and not self._tree.is_leaf(label):
                    total *= self._tree.leaf_count(label)
        return total

    def occurrence_choices(self, row: KExampleRow) -> list[tuple[str, ...]]:
        """Per occurrence, the candidate concrete annotations.

        A concrete label has the single choice of itself; an abstract label
        offers every leaf of its subtree.
        """
        choices = []
        for label in row.occurrences:
            if label in self._tree and not self._tree.is_leaf(label):
                choices.append(tuple(self._tree.leaves_under(label)))
            else:
                choices.append((label,))
        return choices

    # -- enumeration --------------------------------------------------------

    def concretize_row(self, row: KExampleRow) -> Iterator[KExampleRow]:
        """All concrete versions of one abstracted row."""
        for combo in itertools.product(*self.occurrence_choices(row)):
            yield KExampleRow(row.output, combo)

    def concretizations(
        self,
        abstracted: AbstractedKExample,
        connected_only: bool = False,
    ) -> Iterator[KExample]:
        """Enumerate the concretization set ``C(Ex~)`` lazily.

        With ``connected_only`` the connectivity filter is applied per row
        *during* enumeration, pruning the product space early.
        """
        rows_choices = []
        for row in abstracted.rows:
            concrete_rows = list(self.concretize_row(row))
            if connected_only:
                concrete_rows = [r for r in concrete_rows if self.row_connected(r)]
            if not concrete_rows:
                return
            rows_choices.append(concrete_rows)
        for combo in itertools.product(*rows_choices):
            yield KExample(combo, self._registry)

    # -- connectivity (Section 4.1, "Concretizations connectivity") ---------

    def row_connected(self, row: KExampleRow) -> bool:
        """Whether the row's tuples form a connected constant-sharing graph."""
        key = row.occurrences
        if self._use_cache:
            cached = self._connectivity_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        result = self._compute_row_connected(row)
        if self._use_cache:
            self.cache_misses += 1
            self._connectivity_cache[key] = result
        return result

    def _compute_row_connected(self, row: KExampleRow) -> bool:
        tuples = [self._registry.resolve(ann) for ann in row.occurrences]
        if len(tuples) <= 1:
            return True
        graph = nx.Graph()
        graph.add_nodes_from(range(len(tuples)))
        for i, a in enumerate(tuples):
            values_a = a.value_set()
            for j in range(i + 1, len(tuples)):
                if values_a & tuples[j].value_set():
                    graph.add_edge(i, j)
        return nx.is_connected(graph)

    def example_connected(self, example: KExample) -> bool:
        """Whether every row of a concrete K-example is connected."""
        return all(self.row_connected(row) for row in example.rows)
