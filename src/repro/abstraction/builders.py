"""Factory functions for abstraction trees.

Mirrors the paper's two construction styles (Section 4, "Constructing
abstraction trees"):

* :func:`balanced_tree` — the TPC-H style: a set of annotations divided
  randomly and evenly into synthetic sub-categories down to a target height.
* :func:`tree_from_categories` — the IMDB style: an explicit ontology given
  as nested dictionaries whose leaves are annotation lists.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import AbstractionError
from repro.abstraction.tree import AbstractionTree
from repro.seeding import DEFAULT_SEED


def balanced_tree(
    annotations: Sequence[str],
    height: int,
    seed: int = DEFAULT_SEED,
    root_label: str = "*",
    category_prefix: str = "cat",
) -> AbstractionTree:
    """A tree of the given height whose leaves are ``annotations``.

    Annotations are shuffled deterministically (``seed``) and divided evenly:
    each level splits every group into roughly equal sub-groups so that after
    ``height - 1`` splits the groups are the individual leaves.  This is the
    construction used for the paper's TPC-H tree ("randomly divided into
    subcategories evenly throughout the tree").
    """
    annotations = list(annotations)
    if not annotations:
        raise AbstractionError("cannot build a tree over zero annotations")
    if height < 1:
        raise AbstractionError("tree height must be at least 1")
    rng = random.Random(seed)
    rng.shuffle(annotations)

    tree = AbstractionTree(root_label)
    levels = max(height - 1, 0)
    # Branching factor so that branching^levels >= number of leaves.
    if levels == 0:
        for ann in annotations:
            tree.add_node(ann, root_label)
        return tree.freeze()
    branching = max(2, math.ceil(len(annotations) ** (1.0 / levels)))

    counter = 0

    def build(parent: str, group: list[str], remaining_levels: int) -> None:
        nonlocal counter
        if remaining_levels == 0 or len(group) == 1:
            for ann in group:
                tree.add_node(ann, parent)
            return
        chunks = _split_evenly(group, branching)
        for chunk in chunks:
            if len(chunk) == 1 and remaining_levels == 1:
                tree.add_node(chunk[0], parent)
                continue
            counter += 1
            label = f"{category_prefix}_{counter}"
            tree.add_node(label, parent)
            build(label, chunk, remaining_levels - 1)

    build(root_label, annotations, levels)
    return tree.freeze()


def _split_evenly(items: list, n_chunks: int) -> list[list]:
    n_chunks = min(n_chunks, len(items))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return [c for c in chunks if c]


def tree_from_categories(
    categories: Mapping[str, object],
    root_label: str = "*",
) -> AbstractionTree:
    """Build a tree from a nested mapping ontology.

    ``categories`` maps category labels to either a nested mapping (a
    sub-ontology) or an iterable of annotation strings (the leaves of that
    category)::

        tree_from_categories({
            "Social Network": {
                "Facebook": ["h1", "h3", "h4", "i2", "i5"],
                "LinkedIn": ["h2", "h5", "i3"],
            },
            "WikiLeaks": ["i1", "i4", "i6", "h6"],
        })
    """
    tree = AbstractionTree(root_label)

    def build(parent: str, spec: object) -> None:
        if isinstance(spec, Mapping):
            for label, child_spec in spec.items():
                tree.add_node(str(label), parent)
                build(str(label), child_spec)
        elif isinstance(spec, Iterable) and not isinstance(spec, (str, bytes)):
            for ann in spec:
                tree.add_node(str(ann), parent)
        else:
            raise AbstractionError(
                f"category spec must be a mapping or iterable, got {spec!r}"
            )

    build(root_label, categories)
    return tree.freeze()


def tree_by_attributes(
    database,
    relation_attributes: Mapping[str, Sequence[str]],
    root_label: str = "*",
) -> AbstractionTree:
    """Infer an abstraction tree from the database content (Section 4).

    The paper leaves (semi-)automatic tree inference as future work but
    sketches the recipe: place annotations of tuples "containing the same
    values in the same attributes" under a common node.  This builder
    implements it: for each relation, nest by the given attributes in
    order; the leaves are the tuple annotations.

    Example — group lineitems by return flag, then ship month::

        tree_by_attributes(db, {"lineitem": ["returnflag"]})

    Relations not mentioned get a flat category of their own, so the tree
    is compatible with any K-example over the database.
    """
    from repro.db.database import KDatabase

    if not isinstance(database, KDatabase):
        raise AbstractionError("tree_by_attributes needs a KDatabase")

    categories: dict[str, object] = {}
    for relation_schema in database.schema:
        name = relation_schema.name
        attrs = list(relation_attributes.get(name, ()))
        positions = [relation_schema.position(a) for a in attrs]
        if not positions:
            categories[f"rel:{name}"] = [
                t.annotation for t in database.scan(name)
            ]
            continue
        nested: dict = {}
        for tup in database.scan(name):
            node = nested
            path = f"rel:{name}"
            for attr, pos in zip(attrs[:-1], positions[:-1]):
                path = f"{path}/{attr}={tup.values[pos]}"
                node = node.setdefault(path, {})
            last_path = f"{path}/{attrs[-1]}={tup.values[positions[-1]]}"
            node.setdefault(last_path, []).append(tup.annotation)
        categories[f"rel:{name}"] = nested
    return tree_from_categories(categories, root_label=root_label)


def tree_over_annotations(
    annotations: Sequence[str],
    n_leaves: int,
    height: int,
    seed: int = DEFAULT_SEED,
    must_include: Iterable[str] = (),
) -> AbstractionTree:
    """A balanced tree over a sample of ``annotations`` of size ``n_leaves``.

    Used by the scalability experiments to sweep tree size independently of
    database size.  ``must_include`` (typically the K-example's variables)
    is always placed in the sample so the tree stays useful for abstraction.
    """
    must = list(dict.fromkeys(must_include))
    pool = [a for a in annotations if a not in set(must)]
    rng = random.Random(seed)
    extra_needed = max(n_leaves - len(must), 0)
    if extra_needed > len(pool):
        extra = pool
    else:
        extra = rng.sample(pool, extra_needed)
    sample = must + extra
    if not sample:
        raise AbstractionError("no annotations available for the tree")
    return balanced_tree(sample, height=height, seed=seed)
