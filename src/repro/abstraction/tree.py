"""Abstraction trees (Definition 2.6).

A rooted labelled tree whose leaves are tuple annotations and whose inner
nodes are "meta-annotations" usable as abstractions of the leaves below
them.  The tree is compatible with a K-database / K-example iff no inner
label collides with a tuple annotation.

The structure is immutable after :meth:`AbstractionTree.freeze` and
precomputes the two quantities the optimizer hits in tight loops:
ancestor chains (the abstraction options per variable) and subtree leaf
counts (the concretization-set factors of Proposition 3.5).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional

from repro.errors import AbstractionError


class TreeNode:
    """A node of an abstraction tree; identified by its unique label."""

    __slots__ = ("label", "parent", "children", "depth", "_leaf_count")

    def __init__(self, label: str, parent: Optional["TreeNode"] = None):
        self.label = str(label)
        self.parent = parent
        self.children: list[TreeNode] = []
        self.depth = 0 if parent is None else parent.depth + 1
        self._leaf_count: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return f"TreeNode({self.label!r}, depth={self.depth}, {kind})"


class AbstractionTree:
    """A provenance abstraction tree.

    Build with :meth:`add_node` (parent before child) or use the factory
    functions in :mod:`repro.abstraction.builders`.
    """

    def __init__(self, root_label: str = "*"):
        self._root = TreeNode(root_label)
        self._nodes: dict[str, TreeNode] = {root_label: self._root}
        self._frozen = False
        self._leaves: Optional[tuple[str, ...]] = None
        # Memo tables, populated lazily once the tree is frozen; the
        # optimizer hits ancestors()/leaves_under() once per candidate and
        # the chains never change after freeze().
        self._ancestor_cache: dict[str, tuple[str, ...]] = {}
        self._leaves_under_cache: dict[str, tuple[str, ...]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, label: str, parent: str) -> TreeNode:
        """Add ``label`` as a child of ``parent``; labels must be unique."""
        if self._frozen:
            raise AbstractionError("tree is frozen; no further nodes may be added")
        if label in self._nodes:
            raise AbstractionError(f"duplicate tree label {label!r}")
        parent_node = self._nodes.get(parent)
        if parent_node is None:
            raise AbstractionError(f"unknown parent label {parent!r}")
        node = TreeNode(label, parent_node)
        parent_node.children.append(node)
        self._nodes[label] = node
        return node

    def freeze(self) -> "AbstractionTree":
        """Seal the tree and precompute leaf lists and counts."""
        self._frozen = True
        self._leaves = tuple(
            node.label for node in self._nodes.values() if node.is_leaf
        )
        self._count_leaves(self._root)
        return self

    def _count_leaves(self, node: TreeNode) -> int:
        if node.is_leaf:
            node._leaf_count = 1
        else:
            node._leaf_count = sum(self._count_leaves(c) for c in node.children)
        return node._leaf_count

    # -- queries ----------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        return self._root

    def node(self, label: str) -> TreeNode:
        try:
            return self._nodes[label]
        except KeyError:
            raise AbstractionError(f"unknown tree label {label!r}") from None

    def __contains__(self, label: str) -> bool:
        return label in self._nodes

    def labels(self) -> frozenset[str]:
        """``V_T``: all labels in the tree."""
        return frozenset(self._nodes)

    def leaves(self) -> tuple[str, ...]:
        """``L_T``: the leaf labels."""
        self._require_frozen()
        assert self._leaves is not None
        return self._leaves

    def inner_labels(self) -> frozenset[str]:
        """``V_T \\ L_T``."""
        return frozenset(
            label for label, node in self._nodes.items() if not node.is_leaf
        )

    def is_leaf(self, label: str) -> bool:
        return self.node(label).is_leaf

    def height(self) -> int:
        """The maximum depth of any node."""
        return max(node.depth for node in self._nodes.values())

    def num_nodes(self) -> int:
        return len(self._nodes)

    def leaf_count(self, label: str) -> int:
        """``|L_T(v)|``: leaves in the subtree rooted at ``label``."""
        self._require_frozen()
        count = self.node(label)._leaf_count
        assert count is not None
        return count

    def leaves_under(self, label: str) -> Iterator[str]:
        """``L_T(v)``: the leaf labels below (or equal to) ``label``."""
        if self._frozen:
            cached = self._leaves_under_cache.get(label)
            if cached is None:
                cached = tuple(self._walk_leaves_under(label))
                self._leaves_under_cache[label] = cached
            return iter(cached)
        return self._walk_leaves_under(label)

    def _walk_leaves_under(self, label: str) -> Iterator[str]:
        stack = [self.node(label)]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node.label
            else:
                stack.extend(reversed(node.children))

    def ancestors(self, label: str) -> tuple[str, ...]:
        """Labels from ``label`` itself up to the root, inclusive.

        These are exactly the values an abstraction function may assign to
        an occurrence of ``label`` (Definition 3.1).
        """
        if self._frozen:
            cached = self._ancestor_cache.get(label)
            if cached is None:
                cached = self._walk_ancestors(label)
                self._ancestor_cache[label] = cached
            return cached
        return self._walk_ancestors(label)

    def _walk_ancestors(self, label: str) -> tuple[str, ...]:
        chain = []
        node: Optional[TreeNode] = self.node(label)
        while node is not None:
            chain.append(node.label)
            node = node.parent
        return tuple(chain)

    def is_ancestor(self, descendant: str, ancestor: str) -> bool:
        """``descendant <=_T ancestor`` (reflexive)."""
        node: Optional[TreeNode] = self.node(descendant)
        while node is not None:
            if node.label == ancestor:
                return True
            node = node.parent
        return False

    def path_edges(self, descendant: str, ancestor: str) -> tuple[tuple[str, str], ...]:
        """The (child, parent) edges on the path from descendant to ancestor."""
        edges = []
        node = self.node(descendant)
        while node.label != ancestor:
            if node.parent is None:
                raise AbstractionError(
                    f"{ancestor!r} is not an ancestor of {descendant!r}"
                )
            edges.append((node.label, node.parent.label))
            node = node.parent
        return tuple(edges)

    # -- compatibility (Definition 2.6) -------------------------------------

    def is_compatible_with_annotations(self, annotations: Iterable[str]) -> bool:
        """True iff no inner node label is a tuple annotation."""
        inner = self.inner_labels()
        return not any(ann in inner for ann in annotations)

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise AbstractionError("tree must be frozen before queries; call freeze()")

    def __repr__(self) -> str:
        if self._frozen:
            return (
                f"AbstractionTree({self.num_nodes()} nodes, "
                f"{len(self.leaves())} leaves, height={self.height()})"
            )
        return f"AbstractionTree({self.num_nodes()} nodes, unfrozen)"
