#!/usr/bin/env python
"""Smoke-test service durability end to end, as CI runs it.

Starts ``repro serve --store``, submits a mid-stream of jobs, then
**kills the server without warning** (SIGKILL — no graceful shutdown)
and restarts it on the same store.  The restarted service must:

* recover every submitted job — completed ones served from the store,
  interrupted/queued ones re-enqueued and finished — with results equal
  to the direct ``find_optimal_abstraction`` answer, and
* answer a content-identical resubmission from the result cache
  (``cache_hit`` set, payload bit-identical apart from that marker)
  without running the optimizer again.

Run from the repo root: ``python scripts/store_smoke.py``.
"""

import os
import shutil
import socket
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.optimizer import find_optimal_abstraction  # noqa: E402
from repro.examples_data import (  # noqa: E402
    running_example_db,
    running_example_tree,
)
from repro.io.json_io import database_to_json, tree_to_json  # noqa: E402
from repro.provenance.builder import build_kexample  # noqa: E402
from repro.query.parser import parse_cq  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)

THRESHOLDS = (2, 3, 4)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(store_path: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--quiet", "--store", store_path],
        env=env, cwd=REPO_ROOT,
    )


def payload_core(payload: dict) -> dict:
    """A result payload reduced to its content (no identity/audit fields)."""
    return {k: v for k, v in payload.items()
            if k not in ("id", "tag", "cache_hit")}


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="repro-store-smoke-")
    store_path = os.path.join(workdir, "jobs.db")
    spec = {
        "database": database_to_json(running_example_db()),
        "tree": tree_to_json(running_example_tree()),
        "query": QUERY,
    }
    server = None
    try:
        # Life 1: submit a stream, then die mid-stream with no warning.
        # The client's connection retry absorbs the serve startup race —
        # no explicit wait_until_healthy needed before submitting.
        port = free_port()
        server = start_server(store_path, port)
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               connect_retries=8, retry_backoff=0.25)
        ids = client.submit_many([
            {**spec, "threshold": k, "tag": f"k{k}"} for k in THRESHOLDS
        ])
        assert len(ids) == len(THRESHOLDS), ids
        server.kill()  # SIGKILL: whatever was running dies mid-search
        server.wait(timeout=10)

        # Life 2: same store, fresh process — every job must finish.
        port = free_port()
        server = start_server(store_path, port)
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               connect_retries=8, retry_backoff=0.25)
        payloads = client.wait_all(ids, timeout=120)
        for payload in payloads:
            assert payload["state"] == "done", payload
            assert payload["found"], payload

        example = build_kexample(
            parse_cq(QUERY), running_example_db(), n_rows=2
        )
        for threshold, payload in zip(THRESHOLDS, payloads):
            direct = find_optimal_abstraction(
                example, running_example_tree(), threshold
            )
            assert payload["privacy"] == direct.privacy, payload
            assert payload["loi"] == direct.loi, payload

        # Dedup across restarts: a content-identical resubmission is a
        # cache hit with the same payload, optimizer untouched.
        stats_before = client.stats()
        resubmitted = client.submit_many([{**spec, "threshold": THRESHOLDS[0],
                                      "tag": "again"}])
        again = client.wait(resubmitted[0], timeout=60)
        assert again["cache_hit"] is True, again
        assert payload_core(again) == payload_core(payloads[0]), (
            again, payloads[0]
        )
        stats = client.stats()
        assert stats["cache_hits"] >= stats_before.get("cache_hits", 0) + 1
        assert stats["jobs_recovered"] >= len(THRESHOLDS), stats
        assert stats["results_stored"] >= len(THRESHOLDS), stats

        print(
            f"store smoke OK: {len(ids)} jobs survived a SIGKILL restart, "
            f"{stats['jobs_recovered']} recovered, "
            f"{stats['jobs_requeued']} requeued, "
            f"{stats['cache_hits']} cache hits, "
            f"{stats['results_stored']} results in {os.path.basename(store_path)}"
        )
        return 0
    finally:
        if server is not None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
