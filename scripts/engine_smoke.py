#!/usr/bin/env python
"""Engine-matrix smoke, as CI runs it (one engine per matrix cell).

Replays the committed 12-cell smoke matrix (seed 7) on the requested
evaluation engine and asserts the engine contract:

* the engine is listed by ``repro engines`` and importable — for
  ``duckdb`` on machines without the module, the leg *skips cleanly*
  (exit 0 with a skip notice) instead of failing, so the matrix can
  probe optional engines without making them a hard dependency,
* a cold run produces per-cell content and result hashes identical to
  the committed ``benchmarks/BENCH_scenarios.json`` baseline — the
  engine is an execution detail, and any hash it moves is a bug.

Run from the repo root: ``python scripts/engine_smoke.py --engine sqlite``.
"""

import argparse
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.engine import ENGINE_NAMES, available_engines  # noqa: E402

BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_scenarios.json")
SEED = "7"


def run_cli(*argv: str) -> int:
    command = [sys.executable, "-m", "repro.cli", *argv]
    print(f"$ {' '.join(command)}", flush=True)
    env = {**os.environ,
           "PYTHONPATH": os.path.join(REPO_ROOT, "src")}
    return subprocess.run(command, env=env, cwd=REPO_ROOT).returncode


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"[engine-smoke] {status}: {message}", flush=True)
    if not condition:
        sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", required=True, choices=ENGINE_NAMES,
                        help="evaluation engine to smoke-test")
    args = parser.parse_args()

    if not available_engines()[args.engine]:
        print(f"[engine-smoke] SKIP: engine {args.engine!r} is not "
              f"available in this environment", flush=True)
        return 0

    check(run_cli("engines") == 0, "repro engines lists the catalog")

    with tempfile.TemporaryDirectory(prefix="engine-smoke-") as tmp:
        store = os.path.join(tmp, "store.sqlite")
        snapshot = os.path.join(
            REPO_ROOT, f"BENCH_scenarios.engine-{args.engine}.json"
        )
        check(run_cli(
            "scenarios", "run", "--preset", "smoke", "--seed", SEED,
            "--executor", "thread", "--workers", "2",
            "--engine", args.engine,
            "--store", store, "--output", snapshot,
        ) == 0, f"cold smoke run on the {args.engine} engine")
        check(run_cli(
            "scenarios", "diff", BASELINE, snapshot,
        ) == 0, f"no {args.engine}-engine drift vs the committed baseline")
    print(f"[engine-smoke] all checks passed ({args.engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
