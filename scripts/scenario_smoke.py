#!/usr/bin/env python
"""Scenario-matrix smoke, as CI runs it.

Replays the committed 12-cell smoke matrix (seed 7) through the
``repro scenarios`` CLI and asserts the reproducibility contract:

* **cross-tier identity** — the thread and process execution tiers,
  each run against its own fresh store, produce snapshots with
  identical per-cell content *and* result hashes (``scenarios diff``
  reports no drift and no changed inputs),
* **no drift vs the committed baseline** — the fresh thread snapshot
  diffs clean against ``benchmarks/BENCH_scenarios.json`` (a result
  hash that moves on identical inputs fails the build),
* **cross-engine identity** — the SQLite evaluation engine, against
  its own fresh store, produces the same per-cell content and result
  hashes as the naive engine and the committed baseline,
* **cache dedup** — re-running the matrix against the thread tier's
  now-warm store answers >= 90% of cells from the persistent result
  cache, and the warm snapshot is bit-identical to the cold one once
  the volatile trajectory fields are stripped; the same holds when the
  warm re-run happens on a *different engine* (the engine is stripped
  from the content hash, so engines share the cache).

The fresh snapshots are left in the working directory
(``BENCH_scenarios.thread.json`` / ``.process.json`` / ``.sqlite.json``
/ ``.warm.json``) for CI to upload as the build's perf-trajectory
artifact.

Run from the repo root: ``python scripts/scenario_smoke.py``.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.scenarios import normalize  # noqa: E402

BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_scenarios.json")
SEED = "7"


def run_cli(*argv: str) -> int:
    command = [sys.executable, "-m", "repro.cli", *argv]
    print(f"$ {' '.join(command)}", flush=True)
    env = {**os.environ,
           "PYTHONPATH": os.path.join(REPO_ROOT, "src")}
    return subprocess.run(command, env=env, cwd=REPO_ROOT).returncode


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"[scenario-smoke] {status}: {message}", flush=True)
    if not condition:
        sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="scenario-smoke-") as tmp:
        thread_store = os.path.join(tmp, "thread.sqlite")
        process_store = os.path.join(tmp, "process.sqlite")
        engine_store = os.path.join(tmp, "engine.sqlite")
        snaps = {
            name: os.path.join(REPO_ROOT, f"BENCH_scenarios.{name}.json")
            for name in ("thread", "process", "sqlite", "warm")
        }

        check(run_cli(
            "scenarios", "run", "--preset", "smoke", "--seed", SEED,
            "--executor", "thread", "--workers", "2",
            "--store", thread_store, "--output", snaps["thread"],
        ) == 0, "cold run on the thread tier")
        check(run_cli(
            "scenarios", "run", "--preset", "smoke", "--seed", SEED,
            "--executor", "process", "--workers", "2",
            "--store", process_store, "--output", snaps["process"],
        ) == 0, "cold run on the process tier")

        check(run_cli(
            "scenarios", "run", "--preset", "smoke", "--seed", SEED,
            "--executor", "thread", "--workers", "2", "--engine", "sqlite",
            "--store", engine_store, "--output", snaps["sqlite"],
        ) == 0, "cold run on the sqlite evaluation engine")

        check(run_cli(
            "scenarios", "diff", snaps["thread"], snaps["process"],
        ) == 0, "thread and process tiers agree cell for cell")
        check(run_cli(
            "scenarios", "diff", snaps["thread"], snaps["sqlite"],
        ) == 0, "naive and sqlite engines agree cell for cell")
        check(run_cli(
            "scenarios", "diff", BASELINE, snaps["thread"],
        ) == 0, "no result-hash drift vs the committed baseline")
        check(run_cli(
            "scenarios", "diff", BASELINE, snaps["sqlite"],
        ) == 0, "no sqlite-engine drift vs the committed baseline")

        check(run_cli(
            "scenarios", "run", "--preset", "smoke", "--seed", SEED,
            "--executor", "thread", "--workers", "2",
            "--store", thread_store, "--output", snaps["warm"],
        ) == 0, "warm re-run on the thread tier")

        with open(snaps["thread"]) as handle:
            cold = json.load(handle)
        with open(snaps["warm"]) as handle:
            warm = json.load(handle)
        hits = warm["summary"]["cache_hits"]
        cells = warm["summary"]["cells"]
        check(hits >= 0.9 * cells,
              f"warm run served from the result cache ({hits}/{cells})")
        check(normalize(cold) == normalize(warm),
              "warm snapshot identical modulo volatile fields")

        # Cross-engine cache reuse: the engine is stripped from the
        # content hash, so a sqlite-engine run against the naive-engine
        # store must be served from its cache.
        cross = os.path.join(tmp, "cross.json")
        check(run_cli(
            "scenarios", "run", "--preset", "smoke", "--seed", SEED,
            "--executor", "thread", "--workers", "2", "--engine", "sqlite",
            "--store", thread_store, "--output", cross,
        ) == 0, "sqlite-engine re-run against the naive-engine store")
        with open(cross) as handle:
            crossed = json.load(handle)
        cross_hits = crossed["summary"]["cache_hits"]
        check(cross_hits >= 0.9 * cells,
              f"cross-engine run served from the shared cache "
              f"({cross_hits}/{cells})")
    print("[scenario-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
