#!/usr/bin/env python
"""Smoke-test the multi-host worker fleet, as CI runs it.

Replays the committed 12-cell smoke matrix (seed 7) on the ``remote``
executor — the scenario driver serves the v1 wire protocol over
localhost HTTP while real ``repro worker`` *processes* claim, execute,
and deliver the cells — and asserts the fleet guarantees:

* **crash recovery** — the first worker is SIGKILLed while it holds a
  lease; the lease expires, the cell is requeued (``lease_requeues``
  and the victim's ``leases_lost`` both observable in ``/v1/stats``),
  and a second worker completes it,
* **bit-identical results** — every per-cell ``result_hash`` (and
  ``content_hash``) from the fleet run equals the thread-tier run of
  the same matrix, so crossing the wire, the worker boundary, and a
  mid-run worker death change nothing the paper's numbers depend on,
* **clean drain** — the surviving worker exits 0 on its own once the
  run is over (an unreachable service is an idle poll, not a crash).

The kill is made deterministic by staging the fleet: the victim worker
starts alone, the smoke waits until ``/v1/stats`` shows it holding an
active lease, kills it dead, and only then starts the survivor.

Run from the repo root: ``python scripts/fleet_smoke.py``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs import clock  # noqa: E402
from repro.scenarios import PRESETS, run_matrix  # noqa: E402

SEED = 7
LEASE_SECONDS = 2.0  # short lease -> fast requeue after the SIGKILL


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def ok(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def start_worker(base: str, worker_id: str, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--server", base, "--id", worker_id,
            "--poll-interval", "0.05", "--idle-exit", "5",
            "--startup-timeout", "60", "--quiet",
        ],
        env=env, cwd=REPO_ROOT,
    )


def fleet_sample(base: str):
    """The ``fleet`` section of ``/v1/stats``, or None while unreachable."""
    try:
        with urllib.request.urlopen(base + "/v1/stats", timeout=5) as resp:
            return json.loads(resp.read().decode()).get("fleet")
    except Exception:
        return None


def cell_hashes(snapshot: dict) -> dict:
    return {c["cell"]: c["result_hash"] for c in snapshot["cells"]}


def main() -> int:
    matrix = PRESETS["smoke"]

    print("== thread-tier baseline ==")
    baseline = run_matrix(matrix, seed=SEED, executor="thread", workers=2)
    print(f"baseline: {len(baseline['cells'])} cells on thread tier")

    print("== remote tier: 2 worker processes over localhost HTTP ==")
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    # The scenario driver doubles as the fleet server: run it in a
    # background thread so this (main) thread can stage the workers.
    result: dict = {}

    def drive() -> None:
        try:
            result["snapshot"] = run_matrix(
                matrix, seed=SEED, executor="remote",
                fleet_port=port, lease_seconds=LEASE_SECONDS,
            )
        except BaseException as exc:  # surfaced after join
            result["error"] = exc

    driver = threading.Thread(target=drive, name="fleet-smoke-driver")
    driver.start()

    victim = survivor = None
    last_fleet = None
    try:
        deadline = clock.monotonic() + 60
        while fleet_sample(base) is None:
            assert clock.monotonic() < deadline, "fleet server never came up"
            time.sleep(0.05)

        # Stage 1: the victim claims alone, so the SIGKILL provably
        # lands while it owns a lease on a cell in flight.
        victim = start_worker(base, "victim", env)
        while True:
            sample = fleet_sample(base)
            if sample and any(
                lease["worker"] == "victim"
                for lease in sample["leases"].values()
            ):
                break
            assert clock.monotonic() < deadline, "victim never claimed a cell"
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        print(f"killed victim (pid {victim.pid}) while it held a lease")

        # Stage 2: the survivor drains the matrix, including the
        # requeued cell once the dead worker's lease expires.
        survivor = start_worker(base, "survivor", env)
        while driver.is_alive():
            sample = fleet_sample(base)
            if sample is not None:
                last_fleet = sample
            time.sleep(0.05)
    finally:
        driver.join(timeout=300)
        for proc in (victim, survivor):
            if proc is not None and proc.poll() is None and proc is victim:
                proc.kill()

    if "error" in result:
        raise result["error"]
    snapshot = result["snapshot"]

    ok(last_fleet is not None, "fleet stats were observable during the run")
    ok(
        last_fleet["lease_requeues"] >= 1,
        f"dead worker's lease was requeued "
        f"(lease_requeues={last_fleet['lease_requeues']})",
    )
    victim_stats = last_fleet["workers"].get("victim", {})
    ok(
        victim_stats.get("leases_lost", 0) >= 1,
        f"victim is charged the lost lease "
        f"(leases_lost={victim_stats.get('leases_lost')})",
    )
    ok(
        last_fleet["workers"].get("survivor", {}).get("completed", 0) >= 1,
        "survivor completed cells over the wire",
    )

    ok(snapshot["executor"] == "remote", "snapshot records the remote tier")
    ok(
        {c["cell"]: c["content_hash"] for c in snapshot["cells"]}
        == {c["cell"]: c["content_hash"] for c in baseline["cells"]},
        "per-cell content hashes match the thread tier",
    )
    ok(
        cell_hashes(snapshot) == cell_hashes(baseline),
        f"all {len(baseline['cells'])} per-cell result hashes are "
        "bit-identical to the thread tier",
    )
    # Clean drain: once the run is over the service vanishes; the
    # surviving worker treats that as idle and exits 0 by itself.
    ok(survivor is not None and survivor.wait(timeout=60) == 0,
       "survivor exited 0 after draining the fleet")

    print("fleet smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
