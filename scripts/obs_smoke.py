#!/usr/bin/env python
"""Smoke-test the observability layer end to end, as CI runs it.

Starts ``repro serve --trace --trace-file`` as a subprocess, scrapes
``GET /metrics`` before and after a job stream, and asserts the
observability guarantees:

* ``/metrics`` serves valid Prometheus text (content type, HELP/TYPE
  headers, parseable samples) on the chosen execution tier,
* running jobs moves the counters — submitted/completed totals, the
  per-phase latency histogram, and (on repeats) the cache-hit counter,
* the streamed ``repro-trace-v1`` file parses, covers every job, and
  ``repro trace summary`` renders per-phase totals from it, and
* tracing is bit-neutral: the traced service's result equals the
  direct, untraced search bit for bit.

Run from the repo root: ``python scripts/obs_smoke.py
[--executor thread|process]``.
"""

import argparse
import os
import socket
import subprocess
import sys
import tempfile
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.optimizer import find_optimal_abstraction  # noqa: E402
from repro.examples_data import (  # noqa: E402
    running_example_db,
    running_example_tree,
)
from repro.io.json_io import database_to_json, tree_to_json  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.obs.trace import read_trace, summarize  # noqa: E402
from repro.provenance.builder import build_kexample  # noqa: E402
from repro.query.parser import parse_cq  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def scrape(port: int) -> dict:
    """GET /metrics, validate the exposition format, return samples."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ) as response:
        assert response.status == 200
        content_type = response.headers.get("Content-Type")
        assert content_type == metrics.CONTENT_TYPE, content_type
        text = response.read().decode("utf-8")
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            assert not line or line.startswith(("# HELP ", "# TYPE ")), line
            continue
        name_part, _, value_part = line.rpartition(" ")
        assert name_part and value_part, f"unparseable sample: {line!r}"
        float(value_part)  # must parse (or be +Inf/NaN, float handles both)
        samples[name_part] = float(value_part)
    return samples


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread")
    args = parser.parse_args()

    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    workdir = tempfile.TemporaryDirectory(prefix="repro-obs-smoke-")
    trace_path = os.path.join(workdir.name, "trace.jsonl")
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", str(port), "--quiet",
        "--executor", args.executor, "--workers", "1",
        "--store", os.path.join(workdir.name, "jobs.db"),
        "--trace-file", trace_path,
    ]
    server = subprocess.Popen(command, env=env, cwd=REPO_ROOT)
    client = ServiceClient(f"http://127.0.0.1:{port}")
    try:
        client.wait_until_healthy(timeout=30)

        before = scrape(port)
        assert before["repro_service_jobs_submitted_total"] == 0, before
        info_keys = [k for k in before if k.startswith("repro_service_info")]
        assert info_keys and f'executor="{args.executor}"' in info_keys[0], (
            info_keys
        )

        spec = {
            "database": database_to_json(running_example_db()),
            "tree": tree_to_json(running_example_tree()),
            "query": QUERY,
            "threshold": 2,
        }
        ids = client.submit_many([spec, {**spec, "threshold": 3}])
        for job_id in ids:
            payload = client.wait(job_id, timeout=120)
            assert payload["state"] == "done", payload
        ids = client.submit_many([spec])  # identical job -> store cache hit
        client.wait(ids[0], timeout=120)

        after = scrape(port)
        assert after["repro_service_jobs_submitted_total"] == 3, after
        assert after['repro_service_jobs_completed_total{state="done"}'] == 3
        assert after["repro_service_cache_hits_total"] == 1, after
        assert after["repro_service_queue_wait_seconds_count"] == 3, after
        phase_counts = {
            key: value for key, value in after.items()
            if key.startswith("repro_service_phase_seconds_count")
        }
        assert 'repro_service_phase_seconds_count{phase="search"}' in \
            phase_counts, phase_counts

        # The streamed trace file covers every job and summarizes.
        records = read_trace(trace_path)
        assert len(records) == 3, len(records)
        summary = summarize(records)
        assert summary.phases["search"].jobs >= 2, summary.phases
        assert summary.root_seconds > 0, summary

        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "trace", "summary",
             trace_path],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "search" in proc.stdout, proc.stdout

        # Bit-neutrality: the traced service result equals the direct,
        # untraced search.
        example = build_kexample(
            parse_cq(QUERY), running_example_db(), n_rows=2
        )
        direct = find_optimal_abstraction(example, running_example_tree(), 2)
        payload = client.result(ids[0])
        assert payload["privacy"] == direct.privacy, payload
        assert payload["loi"] == direct.loi, payload

        print(
            f"obs smoke OK ({args.executor} executor): 3 jobs, "
            f"{len(after)} metric samples, {len(records)} trace records, "
            f"search {summary.phases['search'].seconds:.3f}s of "
            f"{summary.root_seconds:.3f}s root span time"
        )
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)
        workdir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
