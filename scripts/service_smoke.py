#!/usr/bin/env python
"""Smoke-test the job service end to end, as CI runs it.

Starts ``repro serve`` as a subprocess, submits an inline-context job
stream (the paper's running example) through :class:`ServiceClient`,
and asserts the service guarantees:

* an inline user-database job returns the same result as the
  ``optimize`` subcommand on the same inputs,
* a second job stream over the same context reports
  ``sessions_reused > 0`` in the stats endpoint (cache amortization is
  observable — for ``--executor process`` this proves each pool
  *process* warmed and reused its own privacy session), and
* with ``--executor process`` (which runs with a ``--store`` file), a
  resubmitted identical job is answered from the shared SQLite result
  cache — the search ran in a pool worker process, the hit is served by
  the service process, so the cache demonstrably crosses processes.

Run from the repo root: ``python scripts/service_smoke.py
[--executor thread|process]``.
"""

import argparse
import os
import socket
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.optimizer import find_optimal_abstraction  # noqa: E402
from repro.examples_data import (  # noqa: E402
    running_example_db,
    running_example_tree,
)
from repro.io.json_io import database_to_json, tree_to_json  # noqa: E402
from repro.provenance.builder import build_kexample  # noqa: E402
from repro.query.parser import parse_cq  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread")
    args = parser.parse_args()

    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", str(port), "--quiet",
        "--executor", args.executor, "--workers", "1",
    ]
    store_dir = None
    if args.executor == "process":
        # A file-backed store: pool workers persist results into it, the
        # service process answers repeats from it — the cross-process leg.
        store_dir = tempfile.TemporaryDirectory(prefix="repro-smoke-")
        command += ["--store", os.path.join(store_dir.name, "jobs.db")]
    server = subprocess.Popen(command, env=env, cwd=REPO_ROOT)
    client = ServiceClient(f"http://127.0.0.1:{port}")
    try:
        client.wait_until_healthy(timeout=30)
        stats = client.stats()
        assert stats["executor"] == args.executor, stats
        spec = {
            "database": database_to_json(running_example_db()),
            "tree": tree_to_json(running_example_tree()),
            "query": QUERY,
            "threshold": 2,
        }

        # Stream 1: one inline job; result must match the direct search.
        ids = client.submit_many([spec])
        payload = client.wait(ids[0], timeout=120)
        assert payload["state"] == "done", payload
        assert payload["found"], payload
        example = build_kexample(parse_cq(QUERY), running_example_db(), n_rows=2)
        direct = find_optimal_abstraction(example, running_example_tree(), 2)
        assert payload["privacy"] == direct.privacy, payload
        assert payload["loi"] == direct.loi, payload
        assert client.status(ids[0])["executor"] == args.executor

        # Stream 2: same context again; amortization must be observable.
        # Under the process executor the session lives in the pool
        # worker process, so sessions_reused > 0 asserts the per-process
        # warm-up actually happened there.
        ids = client.submit_many([{**spec, "threshold": 3}])
        client.wait(ids[0], timeout=120)
        stats = client.stats()
        assert stats["jobs_done"] == 2, stats
        assert stats["jobs_failed"] == 0, stats
        assert stats["sessions_reused"] > 0, stats

        cache_note = ""
        if args.executor == "process":
            # Stream 3: a bit-for-bit identical job must be served from
            # the shared store without re-running the search.
            ids = client.submit_many([spec])
            repeat = client.wait(ids[0], timeout=120)
            assert repeat["cache_hit"] is True, repeat
            assert repeat["privacy"] == direct.privacy, repeat
            stats = client.stats()
            assert stats["cache_hits"] > 0, stats
            assert stats["results_stored"] >= 2, stats
            cache_note = (
                f", {stats['cache_hits']} cross-process cache hits"
            )

        print(
            f"service smoke OK ({args.executor} executor): "
            f"{stats['jobs_done']} jobs, "
            f"{stats['sessions_reused']} warm-session{cache_note}, "
            f"privacy={payload['privacy']} loi={payload['loi']:.4f}"
        )
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)
        if store_dir is not None:
            store_dir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
