"""Import-smoke: every ``benchmarks/bench_*.py`` must load cleanly.

The benchmark scripts are run ad hoc (``pytest benchmarks/`` or their
module mains), so an import-time breakage — a renamed helper in
``_common``, an API move in the library — historically surfaced only
when someone next ran the benchmarks.  Importing each module here makes
that a tier-1 failure instead.  Import must also be side-effect-free:
anything slow (or file-writing) belongs under ``main()``/test bodies.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def _import_bench(path: Path):
    # The scripts do ``from _common import ...`` relative to their own
    # directory (benchmarks/conftest.py arranges this for pytest runs),
    # so mirror that sys.path arrangement here.
    sys.path.insert(0, str(BENCH_DIR))
    try:
        name = f"bench_smoke_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        finally:
            sys.modules.pop(name, None)
        return module
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_the_benchmark_suite_is_present():
    assert len(BENCH_FILES) >= 20, [p.name for p in BENCH_FILES]


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.stem for p in BENCH_FILES]
)
def test_benchmark_module_imports(path):
    module = _import_bench(path)
    # Every bench module is a pytest file: it must expose at least one
    # collectable test or benchmark function.
    assert any(name.startswith(("test_", "bench_")) for name in dir(module)), \
        f"{path.name} defines no test_*/bench_* callables"
