"""Incremental candidate evaluation: equivalence with full recomputation.

The incremental evaluator must be *bit-identical* to the from-scratch
path — same floats, not merely close — because the optimizer's LOI gate
compares candidates against the incumbent and an ulp of drift could flip
which candidate wins.  These tests check that across random trees and
K-examples, for both additive distributions, per candidate and end to end.
"""

import math
import random

import pytest

from repro.abstraction.builders import balanced_tree, tree_from_categories
from repro.core.dual import find_dual_optimal_abstraction
from repro.core.privacy import PrivacySession
from repro.core.loi import (
    ExplicitDistribution,
    LeafWeightDistribution,
    UniformDistribution,
    loss_of_information,
)
from repro.core.optimizer import (
    IncrementalEvaluator,
    OptimizerConfig,
    _function_for_levels,
    _occurrence_counts,
    _SortedFrontier,
    find_optimal_abstraction,
    search_space,
)
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.provenance.kexample import KExample, KExampleRow


def _random_instance(seed: int):
    """A random database, K-example, and abstraction tree."""
    rng = random.Random(seed)
    db = KDatabase(Schema.from_dict({"R": ["a", "b"], "S": ["b", "c"]}))
    n_r, n_s = rng.randint(3, 6), rng.randint(3, 6)
    for i in range(n_r):
        db.insert("R", (i, rng.randint(0, 3)), f"r{i}")
    for j in range(n_s):
        db.insert("S", (rng.randint(0, 3), j), f"s{j}")
    annotations = [f"r{i}" for i in range(n_r)] + [f"s{j}" for j in range(n_s)]

    rows = []
    for _ in range(rng.randint(2, 3)):
        k = rng.randint(2, 4)
        rows.append(KExampleRow((rng.randint(0, 9),), rng.sample(annotations, k)))
    example = KExample(rows, db.registry)

    tree = balanced_tree(annotations, height=rng.randint(2, 4), seed=seed)
    return db, example, tree


def _search_inputs(example, tree):
    return search_space(example, tree)


def _candidate_sample(example, tree, variables, chains, rng, limit=80):
    """Sorted-order candidates plus random level vectors."""
    frontier = _SortedFrontier(
        variables, chains, tree, _occurrence_counts(example, variables)
    )
    candidates = []
    while len(candidates) < limit:
        levels = frontier.pop()
        if levels is None:
            break
        candidates.append(levels)
        frontier.expand(levels)
    for _ in range(20):
        candidates.append(tuple(
            rng.randrange(len(chains[v])) for v in variables
        ))
    return candidates


class TestPerCandidateEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_uniform_bit_identical(self, seed):
        _, example, tree = _random_instance(seed)
        variables, chains = _search_inputs(example, tree)
        rng = random.Random(seed + 1000)
        dist = UniformDistribution()
        evaluator = IncrementalEvaluator(example, tree, variables, chains, dist)
        for levels in _candidate_sample(example, tree, variables, chains, rng):
            function = _function_for_levels(tree, example, variables, chains, levels)
            full = loss_of_information(function.apply(example), tree, dist)
            assert evaluator.loi(levels) == full  # bitwise, not isclose

    @pytest.mark.parametrize("seed", range(4))
    def test_leaf_weight_bit_identical(self, seed):
        _, example, tree = _random_instance(seed)
        variables, chains = _search_inputs(example, tree)
        rng = random.Random(seed + 2000)
        weights = {leaf: rng.uniform(0.25, 4.0) for leaf in tree.leaves()}
        dist = LeafWeightDistribution(weights)
        evaluator = IncrementalEvaluator(example, tree, variables, chains, dist)
        for levels in _candidate_sample(example, tree, variables, chains, rng):
            function = _function_for_levels(tree, example, variables, chains, levels)
            full = loss_of_information(function.apply(example), tree, dist)
            assert evaluator.loi(levels) == full

    @pytest.mark.parametrize("seed", range(4))
    def test_materialize_matches_apply(self, seed):
        _, example, tree = _random_instance(seed)
        variables, chains = _search_inputs(example, tree)
        rng = random.Random(seed + 3000)
        evaluator = IncrementalEvaluator(
            example, tree, variables, chains, UniformDistribution()
        )
        for levels in _candidate_sample(example, tree, variables, chains, rng, 40):
            reference = _function_for_levels(tree, example, variables, chains, levels)
            function, abstracted = evaluator.materialize(levels)
            assert function.assignment == reference.assignment
            assert abstracted.rows == reference.apply(example).rows
            assert abstracted.mapping == reference.apply(example).mapping
            assert function.edges_used(example) == reference.edges_used(example)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_search_results_identical(self, seed):
        _, example, tree = _random_instance(seed)
        budget = dict(max_candidates=300)
        incremental = find_optimal_abstraction(
            example, tree, threshold=2, config=OptimizerConfig(**budget)
        )
        full = find_optimal_abstraction(
            example, tree, threshold=2,
            config=OptimizerConfig(incremental=False, **budget),
        )
        assert incremental.found == full.found
        assert incremental.loi == full.loi
        assert incremental.privacy == full.privacy
        assert incremental.edges_used == full.edges_used
        assert incremental.stats.candidates_scanned == full.stats.candidates_scanned
        assert incremental.stats.privacy_computations == full.stats.privacy_computations
        if incremental.found:
            assert incremental.function.assignment == full.function.assignment
            assert incremental.abstracted.rows == full.abstracted.rows

    def test_paper_example_identical(self, paper_example, paper_tree):
        incremental = find_optimal_abstraction(paper_example, paper_tree, 2)
        full = find_optimal_abstraction(
            paper_example, paper_tree, 2,
            config=OptimizerConfig(incremental=False),
        )
        assert incremental.loi == full.loi == pytest.approx(math.log(15))
        assert incremental.function.assignment == full.function.assignment


class TestDualEndToEndEquivalence:
    """The dual search rides the same evaluator; incremental=True must be
    bit-identical to the from-scratch path (function, privacy, LOI)."""

    CAPS = (0.0, 1.5, 3.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_dual_results_identical(self, seed):
        _, example, tree = _random_instance(seed)
        budget = dict(max_candidates=120)
        for max_loi in self.CAPS:
            incremental = find_dual_optimal_abstraction(
                example, tree, max_loi, config=OptimizerConfig(**budget)
            )
            full = find_dual_optimal_abstraction(
                example, tree, max_loi,
                config=OptimizerConfig(incremental=False, **budget),
            )
            assert incremental.found == full.found
            assert incremental.loi == full.loi
            assert incremental.privacy == full.privacy
            assert incremental.edges_used == full.edges_used
            assert incremental.stats.candidates_scanned == (
                full.stats.candidates_scanned
            )
            assert incremental.stats.privacy_computations == (
                full.stats.privacy_computations
            )
            if incremental.found:
                assert incremental.function.assignment == (
                    full.function.assignment
                )
                assert incremental.abstracted.rows == full.abstracted.rows

    def test_paper_dual_identical(self, paper_example, paper_tree):
        incremental = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=math.log(15)
        )
        full = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=math.log(15),
            config=OptimizerConfig(incremental=False),
        )
        assert incremental.privacy == full.privacy
        assert incremental.loi == full.loi
        assert incremental.function.assignment == full.function.assignment

    def test_dual_uses_delta_evaluations(self, paper_example, paper_tree):
        result = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=math.log(15)
        )
        stats = result.stats
        assert stats.delta_evaluations == stats.candidates_scanned
        assert stats.full_evaluations == 0
        # Lazy materialization: only under-cap candidates are built.
        assert stats.functions_materialized == stats.privacy_computations

    def test_dual_shared_session_identical(self, paper_example, paper_tree):
        """One session across an LOI-cap sweep changes nothing but speed."""
        session = PrivacySession(paper_tree, paper_example.registry)
        for max_loi in (0.0, math.log(15), math.log(20)):
            shared = find_dual_optimal_abstraction(
                paper_example, paper_tree, max_loi, session=session
            )
            cold = find_dual_optimal_abstraction(
                paper_example, paper_tree, max_loi
            )
            assert shared.privacy == cold.privacy
            assert shared.loi == cold.loi
            if cold.found:
                assert shared.function.assignment == cold.function.assignment


class TestEvaluatorBookkeeping:
    def test_stats_counters(self, paper_example, paper_tree):
        result = find_optimal_abstraction(paper_example, paper_tree, 2)
        stats = result.stats
        assert stats.delta_evaluations == stats.candidates_scanned
        assert stats.full_evaluations == 0
        # Lazy materialization: only gate-passing candidates are built.
        assert stats.functions_materialized == stats.privacy_computations
        assert stats.functions_materialized < stats.candidates_scanned
        assert stats.contribution_cache_misses > 0
        assert stats.contribution_cache_hits > stats.contribution_cache_misses

    def test_disabled_uses_full_path(self, paper_example, paper_tree):
        result = find_optimal_abstraction(
            paper_example, paper_tree, 2,
            config=OptimizerConfig(incremental=False),
        )
        stats = result.stats
        assert stats.full_evaluations == stats.candidates_scanned
        assert stats.delta_evaluations == 0
        assert stats.functions_materialized == 0
        assert stats.contribution_cache_hits == 0

    def test_explicit_distribution_falls_back(self, paper_db, paper_tree):
        """Non-additive distributions cannot be evaluated incrementally."""
        assert not getattr(ExplicitDistribution([1.0]), "supports_incremental", False)

    def test_contribution_cache_reuse(self, paper_example, paper_tree):
        variables, chains = _search_inputs(paper_example, paper_tree)
        evaluator = IncrementalEvaluator(
            paper_example, paper_tree, variables, chains, UniformDistribution()
        )
        levels = tuple(1 if len(chains[v]) > 1 else 0 for v in variables)
        first = evaluator.loi(levels)
        misses = evaluator.cache_misses
        assert evaluator.loi(levels) == first
        assert evaluator.cache_misses == misses  # second pass is all hits
        assert evaluator.cache_hits > 0


class TestTreeMemoization:
    def test_ancestors_cached_after_freeze(self):
        tree = tree_from_categories({"A": {"B": ["x", "y"]}, "C": ["z"]})
        first = tree.ancestors("x")
        assert tree.ancestors("x") is first  # memoized tuple identity
        assert first == ("x", "B", "A", "*")

    def test_leaves_under_cached_after_freeze(self):
        tree = tree_from_categories({"A": {"B": ["x", "y"]}, "C": ["z"]})
        assert sorted(tree.leaves_under("A")) == ["x", "y"]
        # Second call is served from the memo and yields the same labels.
        assert sorted(tree.leaves_under("A")) == ["x", "y"]
        assert list(tree.leaves_under("z")) == ["z"]
