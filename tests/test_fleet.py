"""The remote executor: lease arbitration, the fleet worker, bit-identity.

Three layers, cheapest first:

* :class:`RemoteBackend` in-process (no HTTP): the lease state machine —
  claim/heartbeat/complete, expiry -> requeue with bounded attempts,
  stale deliveries refused, rendezvous routing, typed request errors.
* The wire codecs the claim descriptor rides on:
  ``ExperimentSettings.to_payload``/``from_payload`` and
  ``config_to_payload``/``config_from_payload`` (strict inverses).
* ``FleetWorker`` against a live ``--executor remote`` service over
  localhost HTTP: results bit-identical to the thread tier, the
  ``worker`` field in job status, the ``fleet`` stats section, and a
  claimant that goes silent (a SIGKILLed worker, simulated by claiming
  and never heartbeating) losing its lease to a real worker.
"""

import threading
import time

import pytest

from repro.batch.jobs import (
    config_from_payload,
    config_to_payload,
    job_from_spec,
)
from repro.batch.optimizer import run_job_payload
from repro.core.optimizer import OptimizerConfig
from repro.errors import LeaseLostError, RequestError
from repro.examples_data import running_example_db, running_example_tree
from repro.experiments.settings import FAST_SETTINGS, ExperimentSettings
from repro.io.json_io import database_to_json, tree_to_json
from repro.service import JobService, ServiceClient, make_server
from repro.service.fleet import RemoteBackend
from repro.service.protocol import CLAIM_JOB_SCHEMA, validate_payload
from repro.service.worker import FleetWorker, default_worker_id
from repro.store.hashing import job_content_hash

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


def inline_spec(threshold=2, n_rows=2, **extra) -> dict:
    spec = {
        "database": database_to_json(running_example_db()),
        "tree": tree_to_json(running_example_tree()),
        "query": QUERY,
        "threshold": threshold,
        "n_rows": n_rows,
    }
    spec.update(extra)
    return spec


def example_job(threshold=2, **extra):
    return job_from_spec(
        inline_spec(threshold, **extra),
        default_rows=FAST_SETTINGS.kexample_rows,
    )


def run_in_thread(backend, job, job_id):
    """Drive backend.run on a thread; returns a result box + the thread."""
    box = {}

    def target():
        box["result"] = backend.run(job, FAST_SETTINGS, job_id=job_id)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return box, thread


def claim_until(backend, worker_id, timeout=5.0):
    """Poll claim until a descriptor arrives (run() registers async)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        descriptor = backend.claim(worker_id)["job"]
        if descriptor is not None:
            return descriptor
        time.sleep(0.01)
    raise AssertionError(f"no claimable job within {timeout}s")


def rebuild_as_worker(descriptor):
    """Exactly FleetWorker's rebuild path, minus the HTTP."""
    import dataclasses

    settings = ExperimentSettings.from_payload(descriptor["settings"])
    config = config_from_payload(descriptor["config"])
    job = job_from_spec(
        descriptor["spec"],
        default_rows=settings.kexample_rows,
        base_config=config,
    )
    if job.config is None:
        job = dataclasses.replace(job, config=config)
    return job, settings


class TestLeaseStateMachine:
    """RemoteBackend in-process: the claim/heartbeat/complete contract."""

    def test_claim_run_complete_round_trip(self):
        backend = RemoteBackend(lease_seconds=5.0)
        box, thread = run_in_thread(backend, example_job(), "job-000001")
        try:
            descriptor = claim_until(backend, "w1")
            problems = validate_payload(
                descriptor, CLAIM_JOB_SCHEMA, "claim.job"
            )
            assert not problems, "\n".join(problems)
            assert descriptor["id"] == "job-000001"
            assert descriptor["attempt"] == 1
            job, settings = rebuild_as_worker(descriptor)
            assert job_content_hash(job, settings) == (
                descriptor["content_hash"]
            )
            beat = backend.heartbeat("w1", "job-000001")
            assert beat["ok"] is True
            payload = run_job_payload(job, settings, None)
            assert backend.complete("w1", "job-000001", payload) == {
                "ok": True
            }
            thread.join(timeout=10)
            assert box["result"].error is None
            assert box["result"].found
            assert backend.worker_of("job-000001") == "w1"
            stats = backend.fleet_stats()
            assert stats["workers"]["w1"]["completed"] == 1
            assert stats["lease_requeues"] == 0
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_idle_claim_and_request_validation(self):
        backend = RemoteBackend(lease_seconds=5.0)
        try:
            assert backend.claim("w1") == {"job": None}
            with pytest.raises(RequestError):
                backend.claim("")
            with pytest.raises(RequestError):
                backend.claim(None)
            with pytest.raises(RequestError):
                backend.heartbeat("w1", "")
            with pytest.raises(RequestError):
                backend.complete("w1", "job-1", "not a dict")
        finally:
            backend.shutdown()

    def test_unclaimed_job_rejects_heartbeat_and_complete(self):
        backend = RemoteBackend(lease_seconds=5.0)
        try:
            with pytest.raises(LeaseLostError):
                backend.heartbeat("w1", "job-000001")
            with pytest.raises(LeaseLostError):
                backend.complete("w1", "job-000001", {"error": "x"})
        finally:
            backend.shutdown()

    def test_expired_lease_requeues_and_stale_delivery_is_refused(self):
        backend = RemoteBackend(lease_seconds=0.2, max_attempts=3)
        box, thread = run_in_thread(backend, example_job(), "job-000001")
        try:
            first = claim_until(backend, "w1")
            assert first["attempt"] == 1
            # w1 goes silent; the run loop requeues after the lease
            # window and w2 claims the second attempt.
            second = claim_until(backend, "w2", timeout=5.0)
            assert second["id"] == first["id"]
            assert second["attempt"] == 2
            with pytest.raises(LeaseLostError):
                backend.complete("w1", "job-000001", {"error": "late"})
            job, settings = rebuild_as_worker(second)
            payload = run_job_payload(job, settings, None)
            # w2's lease may also have expired while the search ran
            # (0.2 s window): heartbeat-or-requeue is timing, but the
            # terminal result must come from *some* live claimant.
            try:
                backend.complete("w2", "job-000001", payload)
            except LeaseLostError:
                third = claim_until(backend, "w2", timeout=5.0)
                backend.complete("w2", "job-000001", payload)
                assert third["attempt"] == 3
            thread.join(timeout=10)
            assert box["result"].error is None
            stats = backend.fleet_stats()
            assert stats["lease_requeues"] >= 1
            assert stats["workers"]["w1"]["leases_lost"] == 1
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_attempts_exhausted_fails_visibly(self):
        backend = RemoteBackend(lease_seconds=0.15, max_attempts=2)
        box, thread = run_in_thread(backend, example_job(), "job-000001")
        try:
            claim_until(backend, "w1")
            # Both attempts burn out with no delivery.
            claim_until(backend, "w1", timeout=5.0)
            thread.join(timeout=10)
            result = box["result"]
            assert result.error is not None
            assert "lease lost 2 time(s)" in result.error
            assert "max_attempts=2" in result.error
            assert backend.fleet_stats()["lease_requeues"] == 2
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_shutdown_fails_waiting_jobs(self):
        backend = RemoteBackend(lease_seconds=5.0)
        box, thread = run_in_thread(backend, example_job(), "job-000001")
        time.sleep(0.1)  # let run() register the entry
        backend.shutdown()
        thread.join(timeout=10)
        assert "shut down" in box["result"].error

    def test_rendezvous_routing_is_deterministic_and_conserving(self):
        backend = RemoteBackend(lease_seconds=30.0)
        try:
            live = ["w1", "w2", "w3"]
            owner = backend._preferred_worker("some-content-hash", live)
            assert owner in live
            for _ in range(3):
                assert backend._preferred_worker(
                    "some-content-hash", live
                ) == owner
            # Different hashes spread across the fleet (not all one
            # worker for any plausible hash set).
            owners = {
                backend._preferred_worker(f"hash-{i}", live)
                for i in range(32)
            }
            assert len(owners) > 1
            # Work conservation: with one pending job, whichever worker
            # asks first gets it, preferred or not.
            box, thread = run_in_thread(
                backend, example_job(), "job-000001"
            )
            descriptor = claim_until(backend, "unpreferred-worker")
            assert descriptor["id"] == "job-000001"
            backend.complete(
                "unpreferred-worker", "job-000001",
                {"error": "synthetic"},
            )
            thread.join(timeout=10)
        finally:
            backend.shutdown()


class TestWireCodecs:
    """The claim descriptor's settings/config payloads are strict inverses."""

    def test_settings_round_trip(self):
        payload = FAST_SETTINGS.to_payload()
        assert ExperimentSettings.from_payload(payload) == FAST_SETTINGS
        with pytest.raises(TypeError):
            ExperimentSettings.from_payload({**payload, "bogus": 1})

    def test_config_round_trip_covers_every_switch(self):
        config = OptimizerConfig(
            sort_abstractions=False,
            incremental=False,
            max_candidates=7,
            max_seconds=1.5,
            engine="sqlite",
            trace=True,
        )
        assert config_from_payload(config_to_payload(config)) == config

    def test_config_payload_rejects_unknown_fields(self):
        payload = config_to_payload(OptimizerConfig())
        with pytest.raises(TypeError, match="bogus"):
            config_from_payload({**payload, "bogus": 1})
        bad_nested = config_to_payload(OptimizerConfig())
        bad_nested["privacy"] = {**bad_nested["privacy"], "bogus": 1}
        with pytest.raises(TypeError, match="PrivacyConfig"):
            config_from_payload(bad_nested)

    def test_descriptor_hash_survives_hand_built_configs(self):
        # A config the spec grammar cannot express must still round
        # trip: the descriptor ships it whole.
        import dataclasses

        job = dataclasses.replace(
            example_job(),
            config=OptimizerConfig(prune_dominated=False, engine="sqlite"),
        )
        backend = RemoteBackend(lease_seconds=5.0)
        box, thread = run_in_thread(backend, job, "job-000001")
        try:
            descriptor = claim_until(backend, "w1")
            rebuilt, settings = rebuild_as_worker(descriptor)
            assert rebuilt.config.prune_dominated is False
            assert rebuilt.config.engine == "sqlite"
            assert job_content_hash(rebuilt, settings) == (
                descriptor["content_hash"]
            )
            backend.complete(
                "w1", "job-000001",
                run_job_payload(rebuilt, settings, None),
            )
            thread.join(timeout=10)
            assert box["result"].error is None
        finally:
            backend.shutdown()
            thread.join(timeout=5)


@pytest.fixture
def remote_http_service():
    """A remote-executor JobService served over localhost HTTP."""

    def factory(lease_seconds=10.0, lease_attempts=3, worker_threads=2):
        service = JobService(
            worker_threads=worker_threads,
            max_queue=16,
            executor="remote",
            lease_seconds=lease_seconds,
            lease_attempts=lease_attempts,
        ).start()
        server = make_server(service, "127.0.0.1", 0, quiet=True)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        made.append((service, server))
        return ServiceClient(f"http://{host}:{port}")

    made = []
    yield factory
    for service, server in made:
        server.shutdown()
        server.server_close()
        service.shutdown()


def start_fleet_worker(base_url, worker_id, **kwargs):
    """A FleetWorker on a daemon thread; returns (worker, thread, box)."""
    kwargs.setdefault("poll_seconds", 0.05)
    kwargs.setdefault("idle_exit", 3.0)
    worker = FleetWorker(base_url, worker_id=worker_id, **kwargs)
    box = {}

    def target():
        box["summary"] = worker.run()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return worker, thread, box


class TestFleetEndToEnd:
    """FleetWorker against a live remote-executor service."""

    def test_fleet_matches_thread_tier_bit_for_bit(
        self, remote_http_service
    ):
        specs = [inline_spec(threshold=t, tag=f"t{t}") for t in (2, 3, 4)]

        # Thread-tier baseline first (fresh caches per service either way).
        baseline_service = JobService(
            worker_threads=2, max_queue=16, executor="thread"
        ).start()
        baseline_server = make_server(
            baseline_service, "127.0.0.1", 0, quiet=True
        )
        threading.Thread(
            target=baseline_server.serve_forever, daemon=True
        ).start()
        host, port = baseline_server.server_address[:2]
        baseline_client = ServiceClient(f"http://{host}:{port}")
        try:
            baseline = baseline_client.wait_all(
                baseline_client.submit_many(specs), timeout=120
            )
        finally:
            baseline_server.shutdown()
            baseline_server.server_close()
            baseline_service.shutdown()

        client = remote_http_service()
        workers = [
            start_fleet_worker(client.base_url, f"fleet-w{i}")
            for i in (1, 2)
        ]
        payloads = client.wait_all(client.submit_many(specs), timeout=120)
        for _, thread, _ in workers:
            thread.join(timeout=30)

        def normalized(payload):
            # The volatile tier (timing, cache/session reuse, traces)
            # legitimately differs by which worker a job landed on;
            # everything else must be bit-identical.
            clean = {
                k: v for k, v in payload.items()
                if k not in ("id", "seconds", "trace", "session_reused",
                             "cache_hit")
            }
            # Likewise the stats that just count cache warmth: a job's
            # row-option hits/misses depend on whether its session was
            # already warm on the worker it landed on, not on the answer.
            clean["stats"] = {
                k: v for k, v in payload["stats"].items()
                if k not in ("elapsed_seconds", "row_option_cache_hits",
                             "row_option_cache_misses")
            }
            return clean

        for via_fleet, via_thread in zip(payloads, baseline):
            assert via_fleet["error"] is None
            assert normalized(via_fleet) == normalized(via_thread)

        # The status rows name the completing worker; stats carry the
        # fleet section with both workers seen.
        jobs = client.list_jobs()
        assert all(
            j["worker"] in ("fleet-w1", "fleet-w2") for j in jobs
        )
        fleet = client.stats()["fleet"]
        assert set(fleet["workers"]) >= {"fleet-w1", "fleet-w2"}
        assert fleet["lease_requeues"] == 0
        done = [box["summary"]["jobs_done"] for _, _, box in workers]
        assert sum(done) == len(specs)

    def test_silent_claimant_loses_lease_to_live_worker(
        self, remote_http_service
    ):
        client = remote_http_service(lease_seconds=0.5, worker_threads=1)
        job_id = client.submit(inline_spec(tag="requeue"))

        # A zombie claims the job and never heartbeats (a SIGKILLed
        # worker looks exactly like this from the service's side).
        deadline = time.monotonic() + 10
        descriptor = None
        while descriptor is None and time.monotonic() < deadline:
            descriptor = client.worker_claim("zombie").get("job")
            if descriptor is None:
                time.sleep(0.02)
        assert descriptor is not None
        assert descriptor["id"] == job_id

        worker, thread, box = start_fleet_worker(
            client.base_url, "survivor", idle_exit=2.0
        )
        payload = client.wait(job_id, timeout=60)
        thread.join(timeout=30)
        assert payload["error"] is None
        assert payload["found"]
        assert client.status(job_id)["worker"] == "survivor"
        fleet = client.stats()["fleet"]
        assert fleet["lease_requeues"] >= 1
        assert fleet["workers"]["zombie"]["leases_lost"] >= 1
        # The zombie's late delivery is refused, typed.
        with pytest.raises(LeaseLostError):
            client.worker_complete("zombie", job_id, {"error": "late"})

    def test_worker_reports_version_skew_instead_of_wrong_results(
        self, remote_http_service
    ):
        client = remote_http_service(lease_seconds=5.0, worker_threads=1)
        job_id = client.submit(inline_spec(tag="skew"))
        deadline = time.monotonic() + 10
        descriptor = None
        while descriptor is None and time.monotonic() < deadline:
            descriptor = client.worker_claim("skewed").get("job")
            if descriptor is None:
                time.sleep(0.02)
        # Corrupt the claim the way a mismatched code version would:
        # the rebuilt job no longer hashes to the service's hash.
        descriptor["content_hash"] = "0" * 64
        worker = FleetWorker(client.base_url, worker_id="skewed")
        payload = worker._build_and_run(descriptor)
        assert payload is not None
        assert "rebuilt a different job" in payload["error"]
        client.worker_complete("skewed", job_id, payload)
        status = client.wait(job_id, timeout=30)
        assert "rebuilt a different job" in status["error"]

    def test_default_worker_id_is_host_and_pid(self):
        import os
        import socket

        assert default_worker_id() == (
            f"{socket.gethostname()}-{os.getpid()}"
        )
