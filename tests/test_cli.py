"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.csv_io import database_to_csv_dir
from repro.io.json_io import database_to_json, tree_to_json
from repro.examples_data import running_example_db, running_example_tree

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


@pytest.fixture
def workspace(tmp_path):
    db = running_example_db()
    database_to_csv_dir(db, tmp_path / "data")
    (tmp_path / "db.json").write_text(json.dumps(database_to_json(db)))
    (tmp_path / "tree.json").write_text(
        json.dumps(tree_to_json(running_example_tree()))
    )
    return tmp_path


class TestOptimize:
    def test_optimize_from_csv(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
            "--output", str(workspace / "result.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "privacy             : 2" in out
        result = json.loads((workspace / "result.json").read_text())
        assert result["privacy"] == 2

    def test_optimize_from_json_db(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "db.json"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
        ])
        assert code == 0

    def test_unsatisfiable_threshold_exit_code(self, workspace):
        code = main([
            "optimize",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "999999",
            "--max-seconds", "10",
        ])
        assert code == 1


class TestBatchOptimize:
    def test_cross_product_of_queries_and_thresholds(self, tmp_path, capsys):
        code = main([
            "batch-optimize",
            "--queries", "TPCH-Q3",
            "--thresholds", "2", "3",
            "--workers", "1",
            "--max-candidates", "200",
            "--max-seconds", "10",
            "--output", str(tmp_path / "batch.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TPCH-Q3 k=2" in out
        assert "TPCH-Q3 k=3" in out
        assert "2 jobs" in out
        results = json.loads((tmp_path / "batch.json").read_text())
        assert len(results) == 2
        assert {r["threshold"] for r in results} == {2, 3}
        assert all(r["error"] is None for r in results)

    def test_jobs_file(self, tmp_path, capsys):
        (tmp_path / "jobs.json").write_text(json.dumps([
            {"query_name": "TPCH-Q3", "threshold": 2, "tag": "t1"},
        ]))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
            "--max-candidates", "200",
            "--max-seconds", "10",
        ])
        assert code == 0
        assert "t1:" in capsys.readouterr().out

    def test_failed_job_sets_exit_code(self, capsys):
        code = main([
            "batch-optimize",
            "--queries", "NO-SUCH-QUERY",
            "--thresholds", "2",
            "--workers", "1",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestOtherCommands:
    def test_privacy_identity(self, workspace, capsys):
        code = main([
            "privacy",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
        ])
        assert code == 0
        assert "privacy: 1" in capsys.readouterr().out

    def test_attack_lists_cims(self, workspace, capsys):
        code = main([
            "attack",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 CIM query" in out
        assert "Hobbies" in out

    def test_evaluate(self, workspace, capsys):
        code = main([
            "evaluate",
            "--database", str(workspace / "data"),
            "--query", "Q(id) :- Person(id, n, a)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(2 rows)" in out

    def test_show_tree(self, workspace, capsys):
        code = main(["show-tree", "--tree", str(workspace / "tree.json")])
        assert code == 0
        assert "Facebook" in capsys.readouterr().out

    def test_privacy_with_abstraction_file(self, workspace, capsys):
        (workspace / "abs.json").write_text(json.dumps({
            "assignment": [
                {"row": 0, "occurrence": 0, "target": "Facebook"},
                {"row": 1, "occurrence": 0, "target": "LinkedIn"},
            ]
        }))
        code = main([
            "privacy",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--abstraction", str(workspace / "abs.json"),
        ])
        assert code == 0
        assert "privacy: 2" in capsys.readouterr().out
