"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.csv_io import database_to_csv_dir
from repro.io.json_io import database_to_json, tree_to_json
from repro.examples_data import running_example_db, running_example_tree

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


@pytest.fixture
def workspace(tmp_path):
    db = running_example_db()
    database_to_csv_dir(db, tmp_path / "data")
    (tmp_path / "db.json").write_text(json.dumps(database_to_json(db)))
    (tmp_path / "tree.json").write_text(
        json.dumps(tree_to_json(running_example_tree()))
    )
    return tmp_path


class TestOptimize:
    def test_optimize_from_csv(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
            "--output", str(workspace / "result.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "privacy             : 2" in out
        result = json.loads((workspace / "result.json").read_text())
        assert result["privacy"] == 2

    def test_optimize_from_json_db(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "db.json"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
        ])
        assert code == 0

    def test_unsatisfiable_threshold_exit_code(self, workspace):
        code = main([
            "optimize",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "999999",
            "--max-seconds", "10",
        ])
        assert code == 1


class TestBatchOptimize:
    def test_cross_product_of_queries_and_thresholds(self, tmp_path, capsys):
        code = main([
            "batch-optimize",
            "--queries", "TPCH-Q3",
            "--thresholds", "2", "3",
            "--workers", "1",
            "--max-candidates", "200",
            "--max-seconds", "10",
            "--output", str(tmp_path / "batch.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TPCH-Q3 k=2" in out
        assert "TPCH-Q3 k=3" in out
        assert "2 jobs" in out
        results = json.loads((tmp_path / "batch.json").read_text())
        assert len(results) == 2
        assert {r["threshold"] for r in results} == {2, 3}
        assert all(r["error"] is None for r in results)

    def test_jobs_file(self, tmp_path, capsys):
        (tmp_path / "jobs.json").write_text(json.dumps([
            {"query_name": "TPCH-Q3", "threshold": 2, "tag": "t1"},
        ]))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
            "--max-candidates", "200",
            "--max-seconds", "10",
        ])
        assert code == 0
        assert "t1:" in capsys.readouterr().out

    def test_failed_job_sets_exit_code(self, capsys):
        code = main([
            "batch-optimize",
            "--queries", "NO-SUCH-QUERY",
            "--thresholds", "2",
            "--workers", "1",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestJobsFileValidation:
    def test_unknown_spec_key_exits_2_naming_it(self, tmp_path, capsys):
        """A typo like 'treshold' must not silently run a default job."""
        (tmp_path / "jobs.json").write_text(json.dumps([
            {"query_name": "TPCH-Q3", "treshold": 2},
        ]))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "treshold" in err
        assert "job 0" in err

    def test_missing_required_keys_exit_2(self, tmp_path, capsys):
        (tmp_path / "jobs.json").write_text(json.dumps([{"threshold": 2}]))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
        ])
        assert code == 2
        assert "query_name" in capsys.readouterr().err

    def test_non_list_jobs_file_exits_2(self, tmp_path, capsys):
        (tmp_path / "jobs.json").write_text(json.dumps({"query_name": "x"}))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
        ])
        assert code == 2
        assert "list" in capsys.readouterr().err

    def test_per_spec_budgets_build_per_job_config(self, tmp_path, capsys):
        """--jobs specs can set max_candidates/max_seconds per job."""
        (tmp_path / "jobs.json").write_text(json.dumps([
            {"query_name": "TPCH-Q3", "threshold": 2,
             "max_candidates": 1, "tag": "tight"},
        ]))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
            "--max-seconds", "10",
            "--output", str(tmp_path / "out.json"),
        ])
        capsys.readouterr()
        assert code == 0
        payload = json.loads((tmp_path / "out.json").read_text())[0]
        assert payload["stats"]["candidates_scanned"] <= 2
        # The global --max-seconds override is inherited by the spec config.
        assert payload["error"] is None

    def test_output_includes_session_reused_and_stats(self, tmp_path, capsys):
        code = main([
            "batch-optimize",
            "--queries", "TPCH-Q3",
            "--thresholds", "2", "3",
            "--workers", "1",
            "--max-candidates", "200",
            "--max-seconds", "10",
            "--output", str(tmp_path / "batch.json"),
        ])
        capsys.readouterr()
        assert code == 0
        results = json.loads((tmp_path / "batch.json").read_text())
        assert all("session_reused" in r for r in results)
        for r in results:
            assert r["stats"]["candidates_scanned"] > 0
            assert "row_option_cache_hits" in r["stats"]

    def test_inline_spec_in_jobs_file(self, workspace, tmp_path, capsys):
        """batch-optimize --jobs accepts inline-context specs too."""
        (tmp_path / "jobs.json").write_text(json.dumps([{
            "database": json.loads((workspace / "db.json").read_text()),
            "tree": json.loads((workspace / "tree.json").read_text()),
            "query": QUERY,
            "threshold": 2,
            "tag": "inline",
        }]))
        code = main([
            "batch-optimize",
            "--jobs", str(tmp_path / "jobs.json"),
            "--workers", "1",
        ])
        assert code == 0
        assert "inline: privacy=2" in capsys.readouterr().out


class TestLoaderErrors:
    """CLI loaders map I/O and JSON failures to exit code 2, no tracebacks."""

    def test_missing_database_file(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "nope.json"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "database" in err

    def test_malformed_database_json(self, workspace, capsys):
        (workspace / "bad.json").write_text("{not json")
        code = main([
            "optimize",
            "--database", str(workspace / "bad.json"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
        ])
        assert code == 2
        assert "malformed database JSON" in capsys.readouterr().err

    def test_missing_tree_file(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "db.json"),
            "--tree", str(workspace / "no_tree.json"),
            "--query", QUERY,
            "--threshold", "2",
        ])
        assert code == 2
        assert "tree" in capsys.readouterr().err

    def test_malformed_tree_structure(self, workspace, capsys):
        (workspace / "bad_tree.json").write_text(json.dumps({"nolabel": 1}))
        code = main([
            "optimize",
            "--database", str(workspace / "db.json"),
            "--tree", str(workspace / "bad_tree.json"),
            "--query", QUERY,
            "--threshold", "2",
        ])
        assert code == 2
        assert "malformed tree JSON" in capsys.readouterr().err

    def test_missing_kexample_file(self, workspace, capsys):
        code = main([
            "optimize",
            "--database", str(workspace / "db.json"),
            "--tree", str(workspace / "tree.json"),
            "--kexample", str(workspace / "no_example.json"),
            "--threshold", "2",
        ])
        assert code == 2
        assert "K-example" in capsys.readouterr().err

    def test_serve_port_in_use_exits_2(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
            code = main(["serve", "--port", str(port)])
        assert code == 2
        assert "cannot bind" in capsys.readouterr().err

    def test_unreachable_service_exits_2(self, capsys):
        code = main([
            "poll",
            "--server", "http://127.0.0.1:1",  # nothing listens here
            "--stats",
        ])
        assert code == 2
        assert "cannot reach job service" in capsys.readouterr().err

    @pytest.mark.parametrize("workers", ["0", "-2", "two"])
    def test_serve_rejects_bad_worker_count(self, workers, capsys):
        # Argparse validation: exit 2 before any service starts, with an
        # error naming the flag (a bad count used to surface only as a
        # service whose queue never drains).
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "0", "--workers", workers])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert "must be >= 1" in err or "positive integer" in err

    def test_serve_rejects_unknown_executor(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "0", "--executor", "mpi"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--executor" in err
        assert "thread" in err and "process" in err

    def test_worker_with_no_service_exits_2(self, capsys):
        code = main([
            "worker",
            "--server", "http://127.0.0.1:1",  # nothing listens here
            "--startup-timeout", "0.2",
        ])
        assert code == 2
        assert "did not become healthy" in capsys.readouterr().err

    def test_scenarios_remote_requires_fleet_port(self, tmp_path, capsys):
        code = main([
            "scenarios", "run", "--preset", "smoke",
            "--executor", "remote",
            "--output", str(tmp_path / "snap.json"),
        ])
        assert code == 2
        assert "fleet_port" in capsys.readouterr().err


class TestOtherCommands:
    def test_privacy_identity(self, workspace, capsys):
        code = main([
            "privacy",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
        ])
        assert code == 0
        assert "privacy: 1" in capsys.readouterr().out

    def test_attack_lists_cims(self, workspace, capsys):
        code = main([
            "attack",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 CIM query" in out
        assert "Hobbies" in out

    def test_evaluate(self, workspace, capsys):
        code = main([
            "evaluate",
            "--database", str(workspace / "data"),
            "--query", "Q(id) :- Person(id, n, a)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(2 rows)" in out

    def test_show_tree(self, workspace, capsys):
        code = main(["show-tree", "--tree", str(workspace / "tree.json")])
        assert code == 0
        assert "Facebook" in capsys.readouterr().out

    def test_privacy_with_abstraction_file(self, workspace, capsys):
        (workspace / "abs.json").write_text(json.dumps({
            "assignment": [
                {"row": 0, "occurrence": 0, "target": "Facebook"},
                {"row": 1, "occurrence": 0, "target": "LinkedIn"},
            ]
        }))
        code = main([
            "privacy",
            "--database", str(workspace / "data"),
            "--tree", str(workspace / "tree.json"),
            "--query", QUERY,
            "--abstraction", str(workspace / "abs.json"),
        ])
        assert code == 0
        assert "privacy: 2" in capsys.readouterr().out
