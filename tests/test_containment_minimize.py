"""Tests for CQ containment (Chandra-Merlin) and minimization."""

from repro.query.ast import Variable
from repro.query.containment import (
    find_homomorphism,
    is_contained_in,
    is_equivalent,
    is_strictly_contained_in,
)
from repro.query.join_graph import is_connected, join_graph
from repro.query.minimize import is_minimal, minimize_cq
from repro.query.parser import parse_cq, parse_ucq


class TestHomomorphism:
    def test_identity_homomorphism(self):
        q = parse_cq("Q(x) :- R(x, y)")
        assert find_homomorphism(q, q) is not None

    def test_variable_to_constant(self):
        general = parse_cq("Q(x) :- R(x, y)")
        specific = parse_cq("Q(x) :- R(x, 'a')")
        hom = find_homomorphism(general, specific)
        assert hom is not None

    def test_no_homomorphism_to_wrong_constant(self):
        q1 = parse_cq("Q(x) :- R(x, 'a')")
        q2 = parse_cq("Q(x) :- R(x, 'b')")
        assert find_homomorphism(q1, q2) is None

    def test_head_must_map(self):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(y) :- R(x, y)")
        # Q1's head variable is the first R column; Q2's is the second.
        hom = find_homomorphism(q1, q2)
        assert hom is None

    def test_mismatched_head_arity(self):
        q1 = parse_cq("Q(x, y) :- R(x, y)")
        q2 = parse_cq("Q(x) :- R(x, y)")
        assert find_homomorphism(q1, q2) is None

    def test_returned_mapping_is_usable(self):
        general = parse_cq("Q(x) :- R(x, y)")
        specific = parse_cq("Q(a) :- R(a, 'c')")
        hom = find_homomorphism(general, specific)
        assert hom is not None
        assert hom[Variable("x")] == Variable("a")


class TestContainment:
    def test_paper_qreal_contained_in_qgeneral(self, paper_queries):
        assert is_contained_in(paper_queries["real"], paper_queries["general"])
        assert not is_contained_in(paper_queries["general"], paper_queries["real"])

    def test_paper_qreal_vs_qfalse(self, paper_queries):
        assert not is_contained_in(paper_queries["real"], paper_queries["false1"])
        assert not is_contained_in(paper_queries["false1"], paper_queries["real"])

    def test_strict_containment(self, paper_queries):
        assert is_strictly_contained_in(
            paper_queries["real"], paper_queries["general"]
        )
        assert not is_strictly_contained_in(
            paper_queries["general"], paper_queries["real"]
        )

    def test_equivalence_up_to_renaming(self):
        q1 = parse_cq("Q(x) :- R(x, y), S(y)")
        q2 = parse_cq("Q(a) :- R(a, b), S(b)")
        assert is_equivalent(q1, q2)

    def test_redundant_atom_preserves_equivalence(self):
        lean = parse_cq("Q(x) :- R(x, y)")
        redundant = parse_cq("Q(x) :- R(x, y), R(x, z)")
        assert is_equivalent(lean, redundant)

    def test_more_atoms_usually_more_specific(self):
        two = parse_cq("Q(x) :- R(x, y), S(y)")
        one = parse_cq("Q(x) :- R(x, y)")
        assert is_strictly_contained_in(two, one)

    def test_self_containment_reflexive(self):
        q = parse_cq("Q(x) :- R(x, y), S(y, x)")
        assert is_contained_in(q, q)

    def test_cyclic_query(self):
        cycle = parse_cq("Q(x) :- E(x, y), E(y, z), E(z, x)")
        path = parse_cq("Q(x) :- E(x, y), E(y, z)")
        assert is_contained_in(cycle, path)
        assert not is_contained_in(path, cycle)


class TestMinimize:
    def test_redundant_atom_removed(self):
        q = parse_cq("Q(x) :- R(x, y), R(x, z)")
        core = minimize_cq(q)
        assert len(core.body) == 1
        assert is_equivalent(core, q)

    def test_minimal_query_unchanged(self):
        q = parse_cq("Q(x) :- R(x, y), S(y)")
        assert minimize_cq(q) == q
        assert is_minimal(q)

    def test_constant_atom_not_redundant(self):
        q = parse_cq("Q(x) :- R(x, y), R(x, 'a')")
        core = minimize_cq(q)
        # R(x, 'a') is more specific; R(x, y) folds into it.
        assert len(core.body) == 1
        assert core.body[0].constants()

    def test_head_binding_atom_kept(self):
        q = parse_cq("Q(x, w) :- R(x, y), S(w)")
        assert len(minimize_cq(q).body) == 2

    def test_triangle_is_minimal(self):
        q = parse_cq("Q(x) :- E(x, y), E(y, z), E(z, x)")
        assert is_minimal(q)

    def test_path_folds_into_shorter_path_when_headless(self):
        q = parse_cq("Q(x) :- E(x, y), E(y, z), E(z, w)")
        core = minimize_cq(q)
        assert is_equivalent(core, q)
        assert len(core.body) == 3  # the 3-path does not fold (x is head)


class TestJoinGraph:
    def test_connected_chain(self):
        assert is_connected(parse_cq("Q(x) :- R(x, y), S(y, z), T(z)"))

    def test_disconnected(self):
        assert not is_connected(parse_cq("Q(x) :- R(x), S(y)"))

    def test_constants_do_not_connect(self):
        # Shared constants are not join edges (Definition in Section 3.3).
        assert not is_connected(parse_cq("Q(x) :- R(x, 'a'), S('a', y)"))

    def test_single_atom_connected(self):
        assert is_connected(parse_cq("Q(x) :- R(x)"))

    def test_join_graph_edges(self):
        graph = join_graph(parse_cq("Q(x) :- R(x, y), S(y), T(x)"))
        assert set(graph.edges()) == {(0, 1), (0, 2)}

    def test_ucq_connected_iff_all_disjuncts(self):
        good = parse_ucq("Q(x) :- R(x, y), S(y); Q(z) :- T(z)")
        bad = parse_ucq("Q(x) :- R(x, y), S(y); Q(z) :- T(z), U(w)")
        assert is_connected(good)
        assert not is_connected(bad)
