"""Cross-cutting property-based tests on randomly generated instances.

Hypothesis generates small random databases, queries, and trees; the
properties below are the paper's structural invariants:

* the original K-example is always a concretization of its abstraction
  (Definition 3.3);
* |C| obeys the product formula and its bounds (Proposition 3.5);
* uniform LOI is ln |C| and is monotone under coarser abstraction;
* privacy is invariant under the Algorithm 1 optimization switches;
* containment is a preorder compatible with canonicalization.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstraction.builders import balanced_tree
from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.function import AbstractionFunction
from repro.core.loi import loss_of_information
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.provenance.builder import build_kexample
from repro.provenance.kexample import KExample, KExampleRow
from repro.query.ast import CQ, Atom, Variable
from repro.query.containment import is_contained_in, is_equivalent
from repro.query.parser import parse_cq


# -- instance generators -------------------------------------------------------

@st.composite
def small_databases(draw):
    """A 2-relation database with values from a small shared pool."""
    db = KDatabase(Schema.from_dict({"R": ["a", "b"], "S": ["x", "y"]}))
    n_r = draw(st.integers(min_value=2, max_value=5))
    n_s = draw(st.integers(min_value=2, max_value=5))
    values = st.integers(min_value=0, max_value=6)
    for i in range(n_r):
        db.insert("R", (draw(values), draw(values)), f"r{i}")
    for i in range(n_s):
        db.insert("S", (draw(values), draw(values)), f"s{i}")
    return db


@st.composite
def database_with_example(draw):
    db = draw(small_databases())
    annotations = sorted(db.annotations())
    r_anns = [a for a in annotations if a.startswith("r")]
    s_anns = [a for a in annotations if a.startswith("s")]
    rows = []
    for i in range(draw(st.integers(min_value=1, max_value=2))):
        r = draw(st.sampled_from(r_anns))
        s = draw(st.sampled_from(s_anns))
        output = (db.resolve(r).values[0],)
        rows.append(KExampleRow(output, [r, s]))
    example = KExample(rows, db.registry)
    height = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=5))
    tree = balanced_tree(annotations, height=height, seed=seed)
    return db, example, tree


@st.composite
def abstractions(draw):
    db, example, tree = draw(database_with_example())
    targets = {}
    for var in sorted(example.variables()):
        chain = tree.ancestors(var)
        level = draw(st.integers(min_value=0, max_value=len(chain) - 1))
        if level:
            targets[var] = chain[level]
    function = AbstractionFunction.uniform(tree, example, targets)
    return db, example, tree, function


# -- properties ---------------------------------------------------------------

class TestAbstractionProperties:
    @settings(max_examples=60, deadline=None)
    @given(abstractions())
    def test_original_is_a_concretization(self, instance):
        db, example, tree, function = instance
        abstracted = function.apply(example)
        engine = ConcretizationEngine(tree, db.registry)
        assert example in set(engine.concretizations(abstracted))

    @settings(max_examples=60, deadline=None)
    @given(abstractions())
    def test_count_product_formula(self, instance):
        db, example, tree, function = instance
        abstracted = function.apply(example)
        engine = ConcretizationEngine(tree, db.registry)
        count = engine.count(abstracted)
        assert count == len(list(engine.concretizations(abstracted)))
        # Proposition 3.5(2): bounds.
        n_abstracted = abstracted.num_abstracted()
        assert 1 <= count <= len(tree.leaves()) ** n_abstracted

    @settings(max_examples=60, deadline=None)
    @given(abstractions())
    def test_uniform_loi_is_log_count(self, instance):
        db, example, tree, function = instance
        abstracted = function.apply(example)
        engine = ConcretizationEngine(tree, db.registry)
        assert math.isclose(
            loss_of_information(abstracted, tree),
            math.log(engine.count(abstracted)),
        )

    @settings(max_examples=40, deadline=None)
    @given(abstractions())
    def test_loi_monotone_under_raising(self, instance):
        db, example, tree, function = instance
        abstracted = function.apply(example)
        base_loi = loss_of_information(abstracted, tree)
        # Raise every abstracted variable to the root.
        targets = {
            v: tree.root.label
            for v in example.variables()
        }
        coarser = AbstractionFunction.uniform(tree, example, targets)
        coarser_loi = loss_of_information(coarser.apply(example), tree)
        assert coarser_loi >= base_loi - 1e-12


class TestPrivacyProperties:
    @settings(max_examples=20, deadline=None)
    @given(abstractions())
    def test_privacy_invariant_under_switches(self, instance):
        db, example, tree, function = instance
        abstracted = function.apply(example)
        if ConcretizationEngine(tree, db.registry).count(abstracted) > 200:
            return  # keep the monolithic reference cheap
        reference = PrivacyComputer(
            tree, db.registry,
            PrivacyConfig(row_by_row=False, connectivity_filter=False,
                          cache_queries=False, cache_connectivity=False),
        ).privacy(abstracted)
        optimized = PrivacyComputer(tree, db.registry).privacy(abstracted)
        assert optimized == reference

    @settings(max_examples=30, deadline=None)
    @given(database_with_example())
    def test_identity_abstraction_admits_some_query_or_none(self, instance):
        db, example, tree = instance
        computer = PrivacyComputer(tree, db.registry)
        identity = AbstractionFunction.identity(tree, example).apply(example)
        privacy = computer.privacy(identity)
        assert privacy >= 0


class TestContainmentProperties:
    QUERIES = [
        parse_cq("Q(x) :- R(x, y), S(y, z)"),
        parse_cq("Q(x) :- R(x, y), S(y, 5)"),
        parse_cq("Q(x) :- R(x, y)"),
        parse_cq("Q(x) :- R(x, 3)"),
        parse_cq("Q(x) :- R(x, x)"),
        parse_cq("Q(x) :- R(x, y), R(y, x)"),
    ]

    @given(st.sampled_from(QUERIES))
    def test_reflexive(self, q):
        assert is_contained_in(q, q)

    @given(st.sampled_from(QUERIES), st.sampled_from(QUERIES),
           st.sampled_from(QUERIES))
    def test_transitive(self, q1, q2, q3):
        if is_contained_in(q1, q2) and is_contained_in(q2, q3):
            assert is_contained_in(q1, q3)

    @given(st.sampled_from(QUERIES), st.sampled_from(QUERIES))
    def test_equivalence_implies_equal_canonical_for_cores(self, q1, q2):
        # For the minimized queries in this pool, equivalence coincides
        # with isomorphism, hence equal canonical keys.
        from repro.query.minimize import minimize_cq

        c1, c2 = minimize_cq(q1), minimize_cq(q2)
        if is_equivalent(c1, c2):
            assert c1.canonical() == c2.canonical()


class TestEvaluationProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_databases())
    def test_provenance_degree_matches_body(self, db):
        """Every monomial's degree equals the number of body atoms."""
        from repro.query.evaluator import evaluate_cq

        query = parse_cq("Q(a) :- R(a, b), S(b, y)")
        for poly in evaluate_cq(query, db).values():
            for monomial in poly.monomials():
                assert monomial.degree() == 2

    @settings(max_examples=40, deadline=None)
    @given(small_databases())
    def test_built_examples_are_real_derivations(self, db):
        from repro.errors import EvaluationError

        query = parse_cq("Q(a) :- R(a, b), S(b, y)")
        try:
            example = build_kexample(query, db, n_rows=1)
        except EvaluationError:
            return  # the random instance has no join results
        row = example.rows[0]
        tuples = [example.tuple_of(a) for a in row.occurrences]
        relations = sorted(t.relation for t in tuples)
        assert relations == ["R", "S"]
