"""Per-rule analyzer tests over the fixture tree in tests/fixtures/lint/.

Each rule gets a positive fixture (the rule fires, at known locations),
a negative fixture (the sanctioned shapes stay clean), and a suppressed
fixture (an `# repro: allow[...]` comment silences the finding without
tripping the unused-suppression check).
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.suppress import UNUSED_SUPPRESSION_RULE

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def findings_in(report, filename):
    return [f for f in report.findings if f.path.endswith(filename)]


class TestDeterminismRule:
    @pytest.fixture(scope="class")
    def report(self):
        # The fixture package has its own hash root; without the
        # override the engine would look for the repro.* roots, find
        # none, and conservatively treat every module as hash-feeding.
        return analyze_paths(
            [FIXTURES / "rep001"], hash_roots=("pkg.hashing",)
        )

    def test_every_banned_call_in_the_feeder_fires(self, report):
        feeder = findings_in(report, "feeder.py")
        assert [f.rule for f in feeder] == ["REP001"] * 6
        assert sorted(f.line for f in feeder) == [12, 13, 14, 15, 16, 17]

    def test_messages_name_the_resolved_call(self, report):
        messages = " | ".join(f.message for f in findings_in(report, "feeder.py"))
        assert "time.time()" in messages
        assert "datetime.datetime.now()" in messages
        assert "random.random()" in messages
        assert "random.Random() without a seed" in messages
        assert "os.urandom()" in messages
        assert "id() leaks a CPython object address" in messages

    def test_module_outside_the_import_closure_is_exempt(self, report):
        assert findings_in(report, "bystander.py") == []

    def test_sanctioned_patterns_and_suppression_stay_clean(self, report):
        # random.Random(seed) and clock.perf_counter() in sanctioned()
        # are allowed; the allow[REP001] on line 24 is used, so no
        # REP000 appears either.
        assert not any(f.line >= 21 for f in findings_in(report, "feeder.py"))
        assert not any(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )

    def test_missing_roots_fall_back_to_checking_everything(self):
        # Analyzed alone, the bystander is not reachable from any
        # configured root — the conservative mode flags it anyway.
        report = analyze_paths([FIXTURES / "rep001" / "pkg" / "bystander.py"])
        assert [f.rule for f in report.findings] == ["REP001"]
        assert report.findings[0].line == 7


class TestPayloadParityRule:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES / "rep002"])

    def test_dropped_fields_fire_at_their_key_lines(self, report):
        drift = [
            f for f in findings_in(report, "payload_bad.py")
            if "DriftingResult" in f.message
        ]
        assert {f.line for f in drift} == {17, 18}
        assert any("'cache_hit'" in f.message for f in drift)
        assert any("'session_reused'" in f.message for f in drift)
        assert all("silently dropped" in f.message for f in drift)

    def test_companion_object_fields_are_exempt(self, report):
        # "tag" is valued from self.job.tag — spec-side data the
        # receiver reconstructs, not payload state.
        assert not any("'tag'" in f.message for f in report.findings)

    def test_missing_from_payload_fires_once(self, report):
        one_way = [
            f for f in findings_in(report, "payload_bad.py")
            if "OneWayTicket" in f.message
        ]
        assert len(one_way) == 1
        assert "no from_payload" in one_way[0].message

    def test_lossless_class_and_suppressed_drop_stay_clean(self, report):
        assert findings_in(report, "payload_ok.py") == []
        assert findings_in(report, "payload_suppressed.py") == []
        assert all(f.rule == "REP002" for f in report.findings)


class TestLockDisciplineRule:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES / "rep003"])

    def test_every_io_shape_under_the_lock_fires(self, report):
        leaky = findings_in(report, "locked_io.py")
        assert [f.rule for f in leaky] == ["REP003"] * 5
        assert sorted(f.line for f in leaky) == [18, 19, 20, 22, 23]
        messages = " | ".join(f.message for f in leaky)
        assert "calls into the store/cache layer" in messages
        assert "sqlite3.connect()" in messages
        assert "open() performs file I/O" in messages
        assert "urllib.request.urlopen() performs network I/O" in messages
        assert "time.sleep()" in messages

    def test_findings_point_back_at_the_lock_line(self, report):
        assert all(
            "(line 16)" in f.message
            for f in findings_in(report, "locked_io.py")
        )

    def test_io_outside_the_lock_and_nested_defs_are_clean(self, report):
        assert findings_in(report, "clean.py") == []

    def test_stores_own_connection_lock_is_sanctioned(self, report):
        assert findings_in(report, "own_lock.py") == []

    def test_suppressed_store_read_is_silenced_without_rep000(self, report):
        assert not any(f.line == 29 for f in findings_in(report, "locked_io.py"))
        assert not any(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )


class TestExceptionHygieneRule:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES / "rep004"])

    def test_bad_handlers_fire(self, report):
        bad = findings_in(report, "handlers_bad.py")
        assert [f.rule for f in bad] == ["REP004"] * 4
        assert sorted(f.line for f in bad) == [15, 22, 29, 36]

    def test_bare_except_and_swallows_are_distinguished(self, report):
        bad = {f.line: f.message for f in findings_in(report, "handlers_bad.py")}
        assert "bare `except:`" in bad[15]
        assert "except ReproError" in bad[22]
        assert "ServiceError" in bad[29]  # guarded member of the tuple
        assert "except Exception" in bad[36]

    def test_real_handling_is_not_flagged(self, report):
        # Conversion with `raise ... from`, counting + re-raise, logging
        # with a fallback return, and narrow third-party tolerance are
        # all legitimate handler bodies.
        assert findings_in(report, "handlers_ok.py") == []

    def test_suppressed_best_effort_swallow_is_silenced(self, report):
        assert findings_in(report, "handlers_suppressed.py") == []
        assert not any(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )


class TestSeedPlumbingRule:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES / "rep005"])

    def test_literal_and_private_name_defaults_fire(self, report):
        bad = findings_in(report, "seeds_bad.py")
        assert [f.rule for f in bad] == ["REP005"] * 4
        assert sorted(f.line for f in bad) == [6, 10, 15, 18]
        messages = " | ".join(f.message for f in bad)
        assert "sample_rows(seed=0)" in messages
        assert "shuffle_questions(seed=42)" in messages
        assert "__init__(seed=1)" in messages
        assert "run(seed=MY_SEED)" in messages

    def test_sanctioned_defaults_are_clean(self, report):
        # DEFAULT_SEED by name, None, no default, a computed default,
        # and parameters merely *containing* "seed" are all fine.
        assert findings_in(report, "seeds_ok.py") == []

    def test_suppressed_paper_seed_is_silenced(self, report):
        assert findings_in(report, "seeds_suppressed.py") == []
        assert not any(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )


class TestEngineDisciplineRule:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES / "rep006"])

    def test_matching_and_relation_iteration_fire(self, report):
        bad = findings_in(report, "app.py")
        assert [f.rule for f in bad] == ["REP006"] * 4
        assert sorted(f.line for f in bad) == [7, 12, 17, 23]
        messages = " | ".join(f.message for f in bad)
        assert ".matching()" in messages
        assert "KDatabase.scan" in messages

    def test_scan_len_and_schema_access_are_clean(self, report):
        assert findings_in(report, "clean.py") == []

    def test_engine_and_db_layer_modules_are_exempt(self, report):
        assert findings_in(report, "engine/inner.py") == []
        assert findings_in(report, "db/inner.py") == []

    def test_suppressed_raw_read_is_silenced(self, report):
        assert findings_in(report, "suppressed.py") == []
        assert not any(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )


class TestObsDisciplineRule:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES / "rep007"])

    def test_direct_aliased_and_from_imported_clock_reads_fire(self, report):
        bad = findings_in(report, "app.py")
        assert [f.rule for f in bad] == ["REP007"] * 6
        assert sorted(f.line for f in bad) == [9, 11, 15, 19, 23, 23]
        messages = " | ".join(f.message for f in bad)
        assert "time.perf_counter()" in messages
        assert "time.monotonic()" in messages
        assert "time.perf_counter_ns()" in messages
        assert "repro.obs.clock" in messages

    def test_clock_aliases_wall_clock_and_sleep_are_clean(self, report):
        assert findings_in(report, "clean.py") == []

    def test_obs_package_and_common_helper_are_exempt(self, report):
        assert findings_in(report, "obs/inner.py") == []
        assert findings_in(report, "_common.py") == []

    def test_suppressed_clock_read_is_silenced(self, report):
        assert findings_in(report, "suppressed.py") == []
        assert not any(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )


class TestUnusedSuppressions:
    def test_unused_allow_is_reported_and_used_allow_is_not(self):
        report = analyze_paths([FIXTURES / "suppress"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == UNUSED_SUPPRESSION_RULE
        assert finding.path.endswith("unused.py")
        assert finding.line == 5
        assert "unused suppression" in finding.message
        assert "REP001" in finding.message

    def test_rep000_itself_cannot_be_suppressed(self, tmp_path):
        target = tmp_path / "meta.py"
        target.write_text(
            "def f(x):\n"
            "    return x  # repro: allow[REP001, REP000]\n"
        )
        report = analyze_paths([target])
        assert report.findings  # the allow[REP000] does not silence REP000
        assert all(
            f.rule == UNUSED_SUPPRESSION_RULE for f in report.findings
        )
