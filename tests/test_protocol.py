"""Protocol-conformance suite for the v1 wire surface.

Walks the machine-readable route catalog (``GET /v1/``) against a live
server and holds every response — success bodies *and* error envelopes —
to the schemas the catalog documents (:mod:`repro.service.protocol`).
Runs over both local executor tiers, so the contract is asserted
independent of how jobs execute; the remote tier's worker endpoints are
exercised for their *error* contract here (``not_remote`` on local
tiers) and end-to-end in tests/test_fleet.py.

Also pins the deprecation story: legacy unversioned paths answer with
identical bodies plus ``Deprecation``/``Link`` successor headers, and
the fleet endpoints exist only under ``/v1/``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    JobNotFoundError,
    LeaseLostError,
    NotRemoteError,
    RequestError,
    ResultNotReadyError,
    ServiceError,
)
from repro.examples_data import running_example_db, running_example_tree
from repro.io.json_io import database_to_json, tree_to_json
from repro.service import (
    LOCAL_EXECUTOR_NAMES,
    JobService,
    ServiceClient,
    make_server,
)
from repro.service import protocol

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


def inline_spec(threshold=2, n_rows=2, **extra) -> dict:
    spec = {
        "database": database_to_json(running_example_db()),
        "tree": tree_to_json(running_example_tree()),
        "query": QUERY,
        "threshold": threshold,
        "n_rows": n_rows,
    }
    spec.update(extra)
    return spec


@pytest.fixture(params=LOCAL_EXECUTOR_NAMES)
def live(request):
    """(client, base_url) against a served JobService per local tier."""
    service = JobService(
        worker_threads=1, max_queue=8, executor=request.param
    ).start()
    server = make_server(service, "127.0.0.1", 0, quiet=True)
    import threading

    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    yield ServiceClient(base), base
    server.shutdown()
    server.server_close()
    service.shutdown()


def fetch(base: str, method: str, path: str, payload=None):
    """Raw request: (status, headers, parsed-or-text body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            status, headers, raw = resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as exc:
        status, headers, raw = exc.code, exc.headers, exc.read()
    text = raw.decode()
    try:
        return status, headers, json.loads(text)
    except json.JSONDecodeError:
        return status, headers, text


def assert_valid(payload, schema, where):
    problems = protocol.validate_payload(payload, schema, where)
    assert not problems, "\n".join(problems)


def assert_error(body, code, where="error"):
    problems = protocol.validate_error_envelope(body, where)
    assert not problems, "\n".join(problems)
    assert body["error"]["code"] == code


class TestCatalog:
    """``GET /v1/`` must describe the surface completely and honestly."""

    def test_catalog_matches_module_contract(self, live):
        client, _ = live
        catalog = client.catalog()
        assert_valid(catalog, protocol.find_route("catalog").success, "catalog")
        assert catalog["protocol"] == protocol.PROTOCOL
        assert catalog["prefix"] == protocol.API_PREFIX
        assert catalog == protocol.catalog_payload()

    def test_every_route_is_catalogued_once(self, live):
        client, _ = live
        routes = client.catalog()["routes"]
        names = [r["name"] for r in routes]
        assert names == [r.name for r in protocol.ROUTES]
        assert len(set(names)) == len(names)
        for route in routes:
            assert route["path"].startswith(protocol.API_PREFIX)
            for code in route["errors"]:
                assert code in protocol.ERROR_CODES

    def test_routes_round_trip_through_the_catalog(self, live):
        # A client can re-materialize the server's exact contract from
        # GET /v1/ alone: every catalog entry rebuilds the Route it
        # came from, bit for bit.
        client, _ = live
        rebuilt = [
            protocol.Route.from_payload(entry)
            for entry in client.catalog()["routes"]
        ]
        assert rebuilt == list(protocol.ROUTES)

    def test_error_code_tables_are_consistent(self):
        # Every code the handler can emit is documented, and every code
        # the client maps back exists.
        for _, code in protocol.CODE_FOR_EXCEPTION:
            assert code in protocol.ERROR_CODES
        for code, exc_type in protocol.EXCEPTION_FOR_CODE.items():
            assert code in protocol.ERROR_CODES
            assert issubclass(exc_type, ServiceError) or issubclass(
                exc_type, Exception
            )


class TestSuccessBodies:
    """Live success responses validate against their documented schema."""

    def test_get_routes_validate(self, live):
        client, base = live
        for name in ("health", "stats"):
            route = protocol.find_route(name)
            status, _, body = fetch(
                base, "GET", protocol.API_PREFIX + route.path
            )
            assert status == 200
            assert_valid(body, route.success, name)

    def test_metrics_is_prometheus_text(self, live):
        _, base = live
        status, headers, body = fetch(base, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_service" in body

    def test_job_lifecycle_bodies_validate(self, live):
        client, base = live
        job_id = client.submit(inline_spec(tag="conform"))
        payload = client.wait(job_id, timeout=60)
        assert_valid(
            payload, protocol.find_route("job_result").success, "result"
        )
        status_body = client.status(job_id)
        assert_valid(
            status_body,
            protocol.find_route("job_status").success,
            "status",
        )
        listing = fetch(base, "GET", "/v1/jobs")[2]
        assert_valid(
            listing, protocol.find_route("list_jobs").success, "jobs"
        )
        for row in listing["jobs"]:
            assert_valid(
                row, protocol.find_route("job_status").success, "jobs[]"
            )
        cancel = fetch(base, "POST", f"/v1/jobs/{job_id}/cancel", {})[2]
        assert_valid(
            cancel, protocol.find_route("job_cancel").success, "cancel"
        )


class TestErrorEnvelopes:
    """Every failure, on every route, is one envelope shape."""

    def test_unknown_job_404(self, live):
        _, base = live
        status, _, body = fetch(base, "GET", "/v1/jobs/job-999999")
        assert status == 404
        assert_error(body, "unknown_job")

    def test_result_not_ready_409_carries_state(self, live):
        client, base = live
        # worker_threads=1 and a queue lets us catch a queued job: pause
        # nothing, just submit two and read the second immediately.
        ids = [client.submit(inline_spec(tag=f"nr{i}")) for i in (1, 2)]
        status, _, body = fetch(
            base, "GET", f"/v1/jobs/{ids[1]}/result"
        )
        if status == 200:  # it can legitimately finish first
            client.wait_all(ids, timeout=60)
            return
        assert status == 409
        assert_error(body, "result_not_ready")
        assert body["error"]["detail"]["state"] in (
            "queued", "running"
        )
        client.wait_all(ids, timeout=60)

    def test_malformed_json_body_400(self, live):
        _, base = live
        request = urllib.request.Request(
            base + "/v1/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert_error(json.loads(excinfo.value.read()), "invalid_request")

    def test_bad_submit_shape_400(self, live):
        _, base = live
        status, _, body = fetch(base, "POST", "/v1/jobs", "not a list")
        assert status == 400
        assert_error(body, "invalid_request")

    def test_bad_spec_400_names_the_key(self, live):
        _, base = live
        status, _, body = fetch(
            base, "POST", "/v1/jobs", [{"treshold": 2}]
        )
        assert status == 400
        assert_error(body, "invalid_job_spec")
        assert "treshold" in body["error"]["message"]

    def test_unknown_path_404(self, live):
        _, base = live
        status, _, body = fetch(base, "GET", "/v1/nonsense")
        assert status == 404
        assert_error(body, "unknown_path")

    def test_worker_endpoints_answer_not_remote_on_local_tiers(self, live):
        _, base = live
        for path, payload in (
            ("/v1/workers/claim", {"worker": "w1"}),
            ("/v1/workers/heartbeat", {"worker": "w1", "id": "job-1"}),
            (
                "/v1/workers/complete",
                {"worker": "w1", "id": "job-1", "payload": {}},
            ),
        ):
            status, _, body = fetch(base, "POST", path, payload)
            assert status == 409, path
            assert_error(body, "not_remote", path)

    def test_client_raises_typed_exceptions(self, live):
        client, _ = live
        with pytest.raises(JobNotFoundError):
            client.status("job-999999")
        from repro.errors import JobSpecError

        with pytest.raises(JobSpecError):
            client.submit_many(["not", "specs"])
        with pytest.raises(NotRemoteError):
            client.worker_claim("w1")
        with pytest.raises(NotRemoteError):
            client.worker_heartbeat("w1", "job-1")
        with pytest.raises(NotRemoteError):
            client.worker_complete("w1", "job-1", {})

    def test_every_documented_route_error_is_typed_clientside(self):
        # Any error a route documents must map to a typed exception (or
        # at least an HTTP-status-bearing ServiceError via the generic
        # codes) so no documented failure is unlabeled in Python.
        generic = {"unknown_path", "service_unavailable", "internal"}
        for route in protocol.ROUTES:
            for code in route.errors:
                assert (
                    code in protocol.EXCEPTION_FOR_CODE or code in generic
                ), f"{route.name}: {code}"


class TestDeprecatedLegacyPaths:
    """Unversioned paths keep working for one release, with warnings."""

    LEGACY = (
        ("GET", "/healthz", None),
        ("GET", "/stats", None),
        ("GET", "/jobs", None),
        ("GET", "/metrics", None),
    )

    def test_legacy_paths_answer_with_deprecation_headers(self, live):
        _, base = live
        for method, path, payload in self.LEGACY:
            status, headers, body = fetch(base, method, path, payload)
            assert status == 200, path
            assert headers.get("Deprecation") == "true", path
            assert headers.get("Link") == (
                f"<{protocol.API_PREFIX}{path}>; rel=\"successor-version\""
            ), path
            v1 = fetch(base, method, protocol.API_PREFIX + path, payload)
            assert v1[1].get("Deprecation") is None
            # /stats (uptime) and /metrics (request counters) legitimately
            # move between two calls; the rest must be bit-identical.
            if path not in ("/stats", "/metrics"):
                assert body == v1[2], path

    def test_legacy_errors_carry_the_envelope_too(self, live):
        _, base = live
        status, headers, body = fetch(base, "GET", "/jobs/job-999999")
        assert status == 404
        assert headers.get("Deprecation") == "true"
        assert_error(body, "unknown_job")

    def test_worker_endpoints_are_v1_only(self, live):
        _, base = live
        status, _, body = fetch(
            base, "POST", "/workers/claim", {"worker": "w1"}
        )
        assert status == 404
        assert_error(body, "unknown_path")

    def test_legacy_root_is_not_the_catalog(self, live):
        _, base = live
        status, _, _ = fetch(base, "GET", "/")
        assert status == 404
