"""Tests for Algorithm 1: privacy computation."""

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.errors import OptimizationError
from repro.query.containment import is_equivalent
from repro.examples_data import Q_FALSE_1, Q_FALSE_2, Q_REAL


def _abstract(tree, example, targets):
    return AbstractionFunction.uniform(tree, example, targets).apply(example)


@pytest.fixture
def computer(paper_tree, paper_db):
    return PrivacyComputer(paper_tree, paper_db.registry)


class TestPaperExamples:
    def test_raw_example_privacy_is_1(self, computer, paper_tree, paper_example):
        """The unabstracted K-example reveals Q_real."""
        identity = _abstract(paper_tree, paper_example, {})
        cims = computer.cim_queries(identity)
        assert len(cims) == 1
        (only,) = cims
        assert is_equivalent(only, Q_REAL)

    def test_abs1_privacy_is_2(self, computer, paper_tree, paper_example):
        """Example 3.13: Ex_abs1 has exactly the CIM queries Q_real, Q_false_1."""
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        cims = computer.cim_queries(abstracted)
        assert len(cims) == 2
        assert any(is_equivalent(q, Q_REAL) for q in cims)
        assert any(is_equivalent(q, Q_FALSE_1) for q in cims)

    def test_abs2_privacy_is_2(self, computer, paper_tree, paper_example):
        """Example 3.15: Ex_abs2 has CIM queries Q_real and Q_false_2."""
        abstracted = _abstract(
            paper_tree, paper_example, {"i1": "WikiLeaks", "i2": "Facebook"}
        )
        cims = computer.cim_queries(abstracted)
        assert len(cims) == 2
        assert any(is_equivalent(q, Q_REAL) for q in cims)
        assert any(is_equivalent(q, Q_FALSE_2) for q in cims)

    def test_abs3_fails_threshold_2(self, computer, paper_tree, paper_example):
        """Example 4.2: Ex_abs3's only CIM query is Q_real -> returns -1."""
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        assert computer.compute(abstracted, threshold=2) == -1
        assert computer.privacy(abstracted) == 1

    def test_compute_returns_count_when_met(
        self, computer, paper_tree, paper_example
    ):
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        assert computer.compute(abstracted, threshold=2) == 2


class TestConfigEquivalence:
    """All four optimization switches must not change the result."""

    CONFIGS = [
        PrivacyConfig(),
        PrivacyConfig(row_by_row=False),
        PrivacyConfig(connectivity_filter=False),
        PrivacyConfig(cache_queries=False, cache_connectivity=False),
        PrivacyConfig(
            row_by_row=False,
            connectivity_filter=False,
            cache_queries=False,
            cache_connectivity=False,
        ),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize(
        "targets",
        [
            {"h1": "Facebook", "h2": "LinkedIn"},
            {"i1": "WikiLeaks", "i2": "Facebook"},
            {"i1": "WikiLeaks"},
            {"h1": "Social Network"},
        ],
    )
    def test_privacy_invariant_under_config(
        self, paper_tree, paper_db, paper_example, config, targets
    ):
        reference = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = _abstract(paper_tree, paper_example, targets)
        expected = reference.privacy(abstracted)
        actual = PrivacyComputer(paper_tree, paper_db.registry, config).privacy(
            abstracted
        )
        assert actual == expected


class TestMechanics:
    def test_caching_hits_on_repeat(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        computer.privacy(abstracted)
        misses_after_first = computer.stats.query_cache_misses
        computer.privacy(abstracted)
        assert computer.stats.query_cache_hits > 0
        assert computer.stats.query_cache_misses == misses_after_first

    def test_connectivity_filter_prunes(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        computer.privacy(abstracted)
        # Figure 6: c1 and c4 are disconnected and must be pruned.
        assert computer.stats.concretizations_pruned_disconnected >= 2

    def test_budget_guard(self, paper_tree, paper_db, paper_example):
        config = PrivacyConfig(max_concretizations=2)
        computer = PrivacyComputer(paper_tree, paper_db.registry, config)
        abstracted = _abstract(
            paper_tree, paper_example,
            {v: "*" for v in ("h1", "h2", "i1", "i2")},
        )
        with pytest.raises(OptimizationError):
            computer.privacy(abstracted)

    def test_single_row_privacy(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        single = paper_example.prefix(1)
        abstracted = _abstract(paper_tree, single, {"h1": "Facebook"})
        privacy = computer.privacy(abstracted)
        assert privacy >= 1

    def test_threshold_zero_never_negative(
        self, computer, paper_tree, paper_example
    ):
        abstracted = _abstract(paper_tree, paper_example, {})
        assert computer.compute(abstracted, threshold=0) >= 0
