"""Tests for Algorithm 1: privacy computation."""

import random

import pytest

from repro.abstraction.builders import balanced_tree
from repro.abstraction.function import AbstractionFunction
from repro.core.privacy import PrivacyComputer, PrivacyConfig, PrivacySession
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.errors import OptimizationError
from repro.provenance.kexample import KExample, KExampleRow
from repro.query.containment import is_equivalent
from repro.examples_data import Q_FALSE_1, Q_FALSE_2, Q_REAL


def _abstract(tree, example, targets):
    return AbstractionFunction.uniform(tree, example, targets).apply(example)


@pytest.fixture
def computer(paper_tree, paper_db):
    return PrivacyComputer(paper_tree, paper_db.registry)


class TestPaperExamples:
    def test_raw_example_privacy_is_1(self, computer, paper_tree, paper_example):
        """The unabstracted K-example reveals Q_real."""
        identity = _abstract(paper_tree, paper_example, {})
        cims = computer.cim_queries(identity)
        assert len(cims) == 1
        (only,) = cims
        assert is_equivalent(only, Q_REAL)

    def test_abs1_privacy_is_2(self, computer, paper_tree, paper_example):
        """Example 3.13: Ex_abs1 has exactly the CIM queries Q_real, Q_false_1."""
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        cims = computer.cim_queries(abstracted)
        assert len(cims) == 2
        assert any(is_equivalent(q, Q_REAL) for q in cims)
        assert any(is_equivalent(q, Q_FALSE_1) for q in cims)

    def test_abs2_privacy_is_2(self, computer, paper_tree, paper_example):
        """Example 3.15: Ex_abs2 has CIM queries Q_real and Q_false_2."""
        abstracted = _abstract(
            paper_tree, paper_example, {"i1": "WikiLeaks", "i2": "Facebook"}
        )
        cims = computer.cim_queries(abstracted)
        assert len(cims) == 2
        assert any(is_equivalent(q, Q_REAL) for q in cims)
        assert any(is_equivalent(q, Q_FALSE_2) for q in cims)

    def test_abs3_fails_threshold_2(self, computer, paper_tree, paper_example):
        """Example 4.2: Ex_abs3's only CIM query is Q_real -> returns -1."""
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        assert computer.compute(abstracted, threshold=2) == -1
        assert computer.privacy(abstracted) == 1

    def test_compute_returns_count_when_met(
        self, computer, paper_tree, paper_example
    ):
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        assert computer.compute(abstracted, threshold=2) == 2


class TestConfigEquivalence:
    """All four optimization switches must not change the result."""

    CONFIGS = [
        PrivacyConfig(),
        PrivacyConfig(row_by_row=False),
        PrivacyConfig(connectivity_filter=False),
        PrivacyConfig(cache_queries=False, cache_connectivity=False),
        PrivacyConfig(
            row_by_row=False,
            connectivity_filter=False,
            cache_queries=False,
            cache_connectivity=False,
        ),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize(
        "targets",
        [
            {"h1": "Facebook", "h2": "LinkedIn"},
            {"i1": "WikiLeaks", "i2": "Facebook"},
            {"i1": "WikiLeaks"},
            {"h1": "Social Network"},
        ],
    )
    def test_privacy_invariant_under_config(
        self, paper_tree, paper_db, paper_example, config, targets
    ):
        reference = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = _abstract(paper_tree, paper_example, targets)
        expected = reference.privacy(abstracted)
        actual = PrivacyComputer(paper_tree, paper_db.registry, config).privacy(
            abstracted
        )
        assert actual == expected


class TestMechanics:
    def test_caching_hits_on_repeat(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        computer.privacy(abstracted)
        misses_after_first = computer.stats.query_cache_misses
        computer.privacy(abstracted)
        assert computer.stats.query_cache_hits > 0
        assert computer.stats.query_cache_misses == misses_after_first

    def test_connectivity_filter_prunes(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        computer.privacy(abstracted)
        # Figure 6: c1 and c4 are disconnected and must be pruned.
        assert computer.stats.concretizations_pruned_disconnected >= 2

    def test_budget_guard(self, paper_tree, paper_db, paper_example):
        config = PrivacyConfig(max_concretizations=2)
        computer = PrivacyComputer(paper_tree, paper_db.registry, config)
        abstracted = _abstract(
            paper_tree, paper_example,
            {v: "*" for v in ("h1", "h2", "i1", "i2")},
        )
        with pytest.raises(OptimizationError):
            computer.privacy(abstracted)

    def test_single_row_privacy(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        single = paper_example.prefix(1)
        abstracted = _abstract(paper_tree, single, {"h1": "Facebook"})
        privacy = computer.privacy(abstracted)
        assert privacy >= 1

    def test_threshold_zero_never_negative(
        self, computer, paper_tree, paper_example
    ):
        abstracted = _abstract(paper_tree, paper_example, {})
        assert computer.compute(abstracted, threshold=0) >= 0


def _random_instance(seed: int):
    """A random database, K-example, and abstraction tree (kept small:
    Algorithm 1 is exponential in the row count)."""
    rng = random.Random(seed)
    db = KDatabase(Schema.from_dict({"R": ["a", "b"], "S": ["b", "c"]}))
    n_r, n_s = rng.randint(3, 5), rng.randint(3, 5)
    for i in range(n_r):
        db.insert("R", (i, rng.randint(0, 3)), f"r{i}")
    for j in range(n_s):
        db.insert("S", (rng.randint(0, 3), j), f"s{j}")
    annotations = [f"r{i}" for i in range(n_r)] + [f"s{j}" for j in range(n_s)]

    rows = []
    for _ in range(rng.randint(2, 3)):
        k = rng.randint(2, 3)
        rows.append(KExampleRow((rng.randint(0, 9),), rng.sample(annotations, k)))
    example = KExample(rows, db.registry)

    tree = balanced_tree(annotations, height=rng.randint(2, 3), seed=seed)
    return db, example, tree


def _random_abstraction(example, tree, rng):
    """Abstract a random subset of the example's variables to random
    ancestors."""
    targets = {}
    for var in sorted(example.variables()):
        if var in tree.labels() and tree.is_leaf(var) and rng.random() < 0.6:
            chain = tree.ancestors(var)
            if len(chain) > 1:
                targets[var] = chain[rng.randrange(1, len(chain))]
    return _abstract(tree, example, targets)


class TestRowByRowEquivalence:
    """Row-by-row with GoodConc must agree with the monolithic path.

    Regression for the intermediate CIM gate: inclusion-minimal query
    counts are *not* monotone as rows are added (a later row can kill a
    small query, promoting the larger queries it dominated), so pruning
    on an intermediate prefix's CIM count could wrongly return -1 for
    examples whose full CIM count meets the threshold.  Only the
    connected-query count shrinks monotonically and may gate early.
    """

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_privacy_equivalence(self, seed):
        db, example, tree = _random_instance(seed)
        rng = random.Random(seed + 5000)
        row_by_row = PrivacyComputer(tree, db.registry, PrivacyConfig())
        monolithic = PrivacyComputer(
            tree, db.registry, PrivacyConfig(row_by_row=False)
        )
        for _ in range(3):
            abstracted = _random_abstraction(example, tree, rng)
            assert row_by_row.privacy(abstracted) == monolithic.privacy(
                abstracted
            )

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_threshold_equivalence(self, seed):
        """compute() must agree at every threshold, not just threshold 0 —
        this is where the dropped intermediate CIM gate used to diverge."""
        db, example, tree = _random_instance(seed)
        rng = random.Random(seed + 6000)
        row_by_row = PrivacyComputer(tree, db.registry, PrivacyConfig())
        monolithic = PrivacyComputer(
            tree, db.registry, PrivacyConfig(row_by_row=False)
        )
        abstracted = _random_abstraction(example, tree, rng)
        for threshold in range(0, 5):
            assert row_by_row.compute(abstracted, threshold) == (
                monolithic.compute(abstracted, threshold)
            ), f"threshold {threshold}"

    def test_paper_example_thresholds(self, paper_tree, paper_db, paper_example):
        row_by_row = PrivacyComputer(paper_tree, paper_db.registry)
        monolithic = PrivacyComputer(
            paper_tree, paper_db.registry, PrivacyConfig(row_by_row=False)
        )
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        for threshold in range(0, 5):
            assert row_by_row.compute(abstracted, threshold) == (
                monolithic.compute(abstracted, threshold)
            )


class TestPrivacySession:
    def test_private_session_by_default(self, paper_tree, paper_db):
        a = PrivacyComputer(paper_tree, paper_db.registry)
        b = PrivacyComputer(paper_tree, paper_db.registry)
        assert a.session is not b.session
        assert a.session.computers_attached == 1

    def test_shared_session_reuses_row_options(
        self, paper_tree, paper_db, paper_example
    ):
        session = PrivacySession(paper_tree, paper_db.registry)
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        first = PrivacyComputer(paper_tree, paper_db.registry, session=session)
        warm_value = first.privacy(abstracted)
        assert first.stats.row_option_cache_misses > 0

        second = PrivacyComputer(paper_tree, paper_db.registry, session=session)
        assert session.computers_attached == 2
        assert second.privacy(abstracted) == warm_value
        # Every row option and prefix query is served from the warm caches.
        assert second.stats.row_option_cache_misses == 0
        assert second.stats.row_option_cache_hits > 0
        assert second.stats.consistency_calls == 0
        assert second.stats.concretizations_seen == 0

    def test_shared_session_is_bit_identical(
        self, paper_tree, paper_db, paper_example
    ):
        """Cached answers must equal fresh recomputation for every
        abstraction and threshold the paper's examples exercise."""
        session = PrivacySession(paper_tree, paper_db.registry)
        targets_list = [
            {"h1": "Facebook", "h2": "LinkedIn"},
            {"i1": "WikiLeaks", "i2": "Facebook"},
            {"i1": "WikiLeaks"},
            {"h1": "Social Network"},
        ]
        shared = PrivacyComputer(paper_tree, paper_db.registry, session=session)
        for targets in targets_list:
            abstracted = _abstract(paper_tree, paper_example, targets)
            fresh = PrivacyComputer(paper_tree, paper_db.registry)
            for threshold in range(0, 4):
                assert shared.compute(abstracted, threshold) == (
                    fresh.compute(abstracted, threshold)
                )

    def test_incompatible_session_rejected(self, paper_tree, paper_db):
        session = PrivacySession(paper_tree, paper_db.registry)
        with pytest.raises(OptimizationError):
            PrivacyComputer(
                paper_tree, paper_db.registry,
                PrivacyConfig(connectivity_filter=False),
                session=session,
            )

    def test_cache_consultation_switches_may_differ(self, paper_tree, paper_db):
        """row_by_row / cache_queries change which caches are consulted,
        not what a cached entry means, so they don't block sharing."""
        session = PrivacySession(paper_tree, paper_db.registry)
        PrivacyComputer(
            paper_tree, paper_db.registry,
            PrivacyConfig(row_by_row=False), session=session,
        )
        PrivacyComputer(
            paper_tree, paper_db.registry,
            PrivacyConfig(cache_queries=False), session=session,
        )
        assert session.computers_attached == 2

    def test_cache_sizes_grow(self, paper_tree, paper_db, paper_example):
        session = PrivacySession(paper_tree, paper_db.registry)
        assert all(size == 0 for size in session.cache_sizes().values())
        computer = PrivacyComputer(paper_tree, paper_db.registry, session=session)
        computer.privacy(
            _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        )
        sizes = session.cache_sizes()
        assert sizes["row_options"] > 0
        assert sizes["prefix_queries"] > 0
        assert sizes["connectivity"] > 0
        assert sizes["connected_queries"] > 0
        assert sizes["minimal_sets"] > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_minimal_keys_match_reference(self, seed):
        """The session-cached minimality scan must agree with the uncached
        reference implementation on every connected-query set."""
        from repro.core.privacy import _minimal_queries

        db, example, tree = _random_instance(seed)
        rng = random.Random(seed + 8000)
        computer = PrivacyComputer(tree, db.registry)
        for _ in range(3):
            abstracted = _random_abstraction(example, tree, rng)
            connected = computer._connected_queries_full(abstracted)
            keys = computer._minimal_keys(connected)
            reference = _minimal_queries(frozenset(connected.values()))
            assert keys == frozenset(q.canonical() for q in reference)

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_shared_vs_fresh(self, seed):
        db, example, tree = _random_instance(seed)
        rng = random.Random(seed + 7000)
        session = PrivacySession(tree, db.registry)
        shared = PrivacyComputer(tree, db.registry, session=session)
        for _ in range(4):
            abstracted = _random_abstraction(example, tree, rng)
            fresh = PrivacyComputer(tree, db.registry)
            assert shared.privacy(abstracted) == fresh.privacy(abstracted)
