"""Tests for the relational substrate: schemas, tuples, K-databases."""

import pytest

from repro.db.database import AnnotationRegistry, KDatabase
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Tuple
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["a", "b"], "S": ["x"]})


class TestRelationSchema:
    def test_attributes_and_arity(self):
        rel = RelationSchema("R", ["a", "b"])
        assert rel.arity == 2
        assert rel.attributes == ("a", "b")

    def test_position_lookup(self):
        rel = RelationSchema("R", ["a", "b"])
        assert rel.position("b") == 1

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"]).position("z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_equality(self):
        assert RelationSchema("R", ["a"]) == RelationSchema("R", ["a"])
        assert RelationSchema("R", ["a"]) != RelationSchema("R", ["b"])


class TestSchema:
    def test_from_dict(self, schema):
        assert "R" in schema
        assert schema.relation("R").arity == 2
        assert set(schema.relation_names()) == {"R", "S"}

    def test_duplicate_relation_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", ["z"]))

    def test_unknown_relation(self, schema):
        with pytest.raises(SchemaError):
            schema.relation("T")

    def test_iteration(self, schema):
        assert len(list(schema)) == 2


class TestTuple:
    def test_fields(self):
        tup = Tuple("R", (1, "x"), "t1")
        assert tup.relation == "R"
        assert tup.values == (1, "x")
        assert tup.annotation == "t1"
        assert tup.arity == 2
        assert tup[0] == 1

    def test_value_set(self):
        assert Tuple("R", (1, 1, 2), "t").value_set() == frozenset({1, 2})

    def test_equality_includes_annotation(self):
        assert Tuple("R", (1,), "t1") != Tuple("R", (1,), "t2")
        assert Tuple("R", (1,), "t1") == Tuple("R", (1,), "t1")

    def test_repr(self):
        assert repr(Tuple("R", (1,), "t1")) == "t1: R(1)"


class TestKDatabase:
    def test_insert_and_resolve(self, schema):
        db = KDatabase(schema)
        tup = db.insert("R", (1, 2), "t1")
        assert db.resolve("t1") == tup
        assert db.total_tuples() == 1

    def test_auto_annotation(self, schema):
        db = KDatabase(schema)
        t1 = db.insert("R", (1, 2))
        t2 = db.insert("R", (3, 4))
        assert t1.annotation != t2.annotation

    def test_duplicate_annotation_rejected(self, schema):
        db = KDatabase(schema)
        db.insert("R", (1, 2), "t1")
        with pytest.raises(SchemaError):
            db.insert("R", (3, 4), "t1")

    def test_arity_mismatch_rejected(self, schema):
        db = KDatabase(schema)
        with pytest.raises(SchemaError):
            db.insert("R", (1,), "t1")

    def test_unknown_relation_rejected(self, schema):
        db = KDatabase(schema)
        with pytest.raises(SchemaError):
            db.insert("T", (1,), "t1")

    def test_annotations_and_tuples(self, schema):
        db = KDatabase(schema)
        db.insert("R", (1, 2), "t1")
        db.insert("S", (9,), "t2")
        assert db.annotations() == frozenset({"t1", "t2"})
        assert {t.annotation for t in db.tuples()} == {"t1", "t2"}

    def test_matching_with_bindings(self, schema):
        db = KDatabase(schema)
        db.insert("R", (1, 2), "t1")
        db.insert("R", (1, 3), "t2")
        db.insert("R", (2, 3), "t3")
        rel = db.relation("R")
        assert {t.annotation for t in rel.matching({0: 1})} == {"t1", "t2"}
        assert {t.annotation for t in rel.matching({0: 1, 1: 3})} == {"t2"}
        assert {t.annotation for t in rel.matching({})} == {"t1", "t2", "t3"}
        assert list(rel.matching({0: 99})) == []

    def test_relation_rejects_foreign_tuple(self, schema):
        db = KDatabase(schema)
        with pytest.raises(SchemaError):
            db.relation("R").add(Tuple("S", (1,), "t9"))


class TestAnnotationRegistry:
    def test_register_and_resolve(self):
        reg = AnnotationRegistry()
        tup = Tuple("R", (1,), "t1")
        reg.register(tup)
        assert reg.resolve("t1") == tup
        assert "t1" in reg
        assert reg.resolve_or_none("zz") is None

    def test_conflicting_registration_rejected(self):
        reg = AnnotationRegistry()
        reg.register(Tuple("R", (1,), "t1"))
        with pytest.raises(SchemaError):
            reg.register(Tuple("R", (2,), "t1"))

    def test_idempotent_registration(self):
        reg = AnnotationRegistry()
        tup = Tuple("R", (1,), "t1")
        reg.register(tup)
        reg.register(tup)  # same tuple: fine
        assert len(reg) == 1

    def test_unknown_annotation(self):
        with pytest.raises(SchemaError):
            AnnotationRegistry().resolve("nope")
