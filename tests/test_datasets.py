"""Tests for the TPC-H / IMDB generators and the query workload."""

import pytest

from repro.datasets.imdb import IMDB_SCHEMA, generate_imdb
from repro.datasets.queries import (
    IMDB_QUERIES,
    TPCH_QUERIES,
    all_queries,
    get_query,
    join_variants,
    query_stats,
)
from repro.datasets.tpch import TPCH_SCHEMA, generate_tpch
from repro.datasets.trees import imdb_ontology_tree, tpch_lineitem_tree
from repro.errors import ReproError
from repro.provenance.builder import build_kexample
from repro.query.evaluator import evaluate_cq
from repro.query.join_graph import is_connected


class TestTPCHGenerator:
    def test_deterministic(self):
        db1 = generate_tpch(scale=0.01, seed=3)
        db2 = generate_tpch(scale=0.01, seed=3)
        assert db1.total_tuples() == db2.total_tuples()
        assert db1.annotations() == db2.annotations()

    def test_seed_changes_content(self):
        db1 = generate_tpch(scale=0.01, seed=1)
        db2 = generate_tpch(scale=0.01, seed=2)
        values1 = sorted(t.values for t in db1.relation("lineitem"))
        values2 = sorted(t.values for t in db2.relation("lineitem"))
        assert values1 != values2

    def test_scale_grows_tables(self):
        small = generate_tpch(scale=0.01, seed=0)
        large = generate_tpch(scale=0.05, seed=0)
        assert large.total_tuples() > small.total_tuples()

    def test_reference_integrity(self, tpch_db):
        nation_keys = {t.values[0] for t in tpch_db.relation("nation")}
        for supplier in tpch_db.relation("supplier"):
            assert supplier.values[2] in nation_keys
        order_keys = {t.values[0] for t in tpch_db.relation("orders")}
        for lineitem in tpch_db.relation("lineitem"):
            assert lineitem.values[0] in order_keys

    def test_abstractly_tagged(self, tpch_db):
        annotations = [t.annotation for t in tpch_db.tuples()]
        assert len(annotations) == len(set(annotations))

    def test_fixed_dimension_tables(self, tpch_db):
        assert len(tpch_db.relation("region")) == 5
        assert len(tpch_db.relation("nation")) == 25


class TestIMDBGenerator:
    def test_deterministic(self):
        db1 = generate_imdb(seed=4)
        db2 = generate_imdb(seed=4)
        assert db1.annotations() == db2.annotations()

    def test_anchors_exist(self, imdb_db):
        names = {t.values[1] for t in imdb_db.relation("person")}
        assert "Kevin Bacon" in names
        assert "Tom Cruise" in names

    def test_cast_edges_reference_real_entities(self, imdb_db):
        people = {t.values[0] for t in imdb_db.relation("person")}
        movies = {t.values[0] for t in imdb_db.relation("movie")}
        for edge in imdb_db.relation("casts"):
            assert edge.values[0] in people
            assert edge.values[1] in movies

    def test_no_duplicate_cast_edges(self, imdb_db):
        pairs = [t.values for t in imdb_db.relation("casts")]
        assert len(pairs) == len(set(pairs))


class TestWorkloadQueries:
    def test_table6_counts(self):
        """Table 6 of the paper: atoms per query (joins = atoms - 1)."""
        expected_atoms = {
            "TPCH-Q3": 3, "TPCH-Q4": 2, "TPCH-Q5": 7, "TPCH-Q7": 6,
            "TPCH-Q9": 6, "TPCH-Q10": 4, "TPCH-Q21": 6,
            "IMDB-Q1": 3, "IMDB-Q2": 6, "IMDB-Q3": 5, "IMDB-Q4": 7,
            "IMDB-Q5": 4, "IMDB-Q6": 5, "IMDB-Q7": 7,
        }
        stats = query_stats()
        for name, atoms in expected_atoms.items():
            assert stats[name][0] == atoms, name

    def test_q21_triple_self_join(self):
        q21 = get_query("TPCH-Q21")
        assert q21.relations().count("lineitem") == 3

    def test_all_queries_connected(self):
        for name, query in all_queries().items():
            assert is_connected(query), name

    def test_unknown_query_rejected(self):
        with pytest.raises(ReproError):
            get_query("TPCH-Q99")

    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    def test_tpch_queries_have_results(self, tpch_db, name):
        example = build_kexample(get_query(name), tpch_db, n_rows=2)
        assert len(example) == 2
        assert example.is_connected()

    @pytest.mark.parametrize("name", sorted(IMDB_QUERIES))
    def test_imdb_queries_have_results(self, imdb_db, name):
        example = build_kexample(get_query(name), imdb_db, n_rows=2)
        assert len(example) == 2
        assert example.is_connected()

    def test_imdb_q1_semantics(self, imdb_db):
        """Every IMDB-Q1 answer is a person cast in a 1995 movie."""
        results = evaluate_cq(get_query("IMDB-Q1"), imdb_db)
        assert results
        year_1995_movies = {
            t.values[0] for t in imdb_db.relation("movie") if t.values[2] == 1995
        }
        for poly in results.values():
            for monomial in poly.monomials():
                movie_anns = [
                    v for v in monomial.variables() if v.startswith("m")
                ]
                assert any(
                    imdb_db.resolve(ann).values[0] in year_1995_movies
                    for ann in movie_anns
                )


class TestJoinVariants:
    @pytest.mark.parametrize(
        "name",
        ["TPCH-Q5", "TPCH-Q7", "TPCH-Q9", "TPCH-Q21", "IMDB-Q2", "IMDB-Q4", "IMDB-Q7"],
    )
    def test_variants_are_connected_and_grow(self, name):
        variants = join_variants(name)
        assert variants
        joins = [j for j, _ in variants]
        assert joins == sorted(joins)
        for n_joins, query in variants:
            assert is_connected(query), (name, n_joins)
            assert query.num_joins() == n_joins

    def test_full_query_is_last_variant(self):
        variants = join_variants("TPCH-Q7")
        _, last = variants[-1]
        assert len(last.body) == len(get_query("TPCH-Q7").body)

    def test_too_few_joins_rejected(self):
        with pytest.raises(ReproError):
            join_variants("TPCH-Q4", min_joins=3)


class TestDatasetTrees:
    def test_lineitem_tree_covers_lineitems_only(self, tpch_db):
        tree = tpch_lineitem_tree(tpch_db, n_leaves=50, height=4, seed=0)
        for leaf in tree.leaves():
            assert leaf.startswith("l")

    def test_lineitem_tree_must_include(self, tpch_db):
        example = build_kexample(get_query("TPCH-Q3"), tpch_db, n_rows=2)
        lineitem_vars = [v for v in example.variables() if v.startswith("l")]
        tree = tpch_lineitem_tree(
            tpch_db, n_leaves=30, height=4, must_include=lineitem_vars
        )
        assert set(lineitem_vars) <= set(tree.leaves())

    def test_imdb_ontology_structure(self, imdb_db):
        tree = imdb_ontology_tree(imdb_db)
        # root -> category -> decade -> year -> annotation (genres are one
        # level shallower: root -> Genres -> type -> annotation).
        assert tree.height() == 4
        labels = tree.labels()
        assert "People" in labels
        assert "Movies" in labels
        assert "Genres" in labels
        # Every database annotation is a leaf.
        assert set(tree.leaves()) == set(imdb_db.annotations())

    def test_imdb_ontology_compatible(self, imdb_db):
        tree = imdb_ontology_tree(imdb_db)
        assert tree.is_compatible_with_annotations(imdb_db.annotations())
