"""Tests for the persistent job store and content-addressed result cache.

Covers the store subsystem's contracts end to end: canonical content
hashing (including stability across processes), the SQLite
:class:`JobStore` (records, results, gc retention, reopen), the
:class:`ResultCache` (hit/miss, error skipping, payload fidelity), the
lossless :meth:`BatchJobResult.to_payload`/``from_payload`` round trip,
and service durability — cache hits within one process, restart recovery
of queued/running jobs, and bit-identical results across restarts.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.batch import (
    BatchJobResult,
    BatchOptimizer,
    job_from_spec,
    job_to_spec,
    run_job,
)
from repro.core.optimizer import OptimizerConfig, OptimizerStats
from repro.examples_data import running_example_db, running_example_tree
from repro.experiments.settings import DEFAULT_SETTINGS, FAST_SETTINGS
from repro.io.json_io import database_to_json, tree_to_json
from repro.service.server import JobService
from repro.service.state import JOB_DONE, JOB_FAILED, JOB_QUEUED, JOB_RUNNING
from repro.store import (
    JobStore,
    ResultCache,
    job_content_hash,
    spec_content_hash,
)

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


def inline_spec(threshold=2, n_rows=2, **extra):
    """An inline-context job spec over the paper's running example."""
    spec = {
        "database": database_to_json(running_example_db()),
        "tree": tree_to_json(running_example_tree()),
        "query": QUERY,
        "threshold": threshold,
        "n_rows": n_rows,
    }
    spec.update(extra)
    return spec


def payload_modulo_cache_hit(payload: dict) -> dict:
    """A result payload with the (expected) cache_hit marker removed.

    A cached answer must be bit-identical to the fresh one in every
    field *except* the ``cache_hit`` audit flag itself.
    """
    return {k: v for k, v in payload.items() if k != "cache_hit"}


class TestHashing:
    def test_equal_specs_hash_equally(self):
        job_a = job_from_spec(inline_spec())
        job_b = job_from_spec(inline_spec())
        assert job_content_hash(job_a, FAST_SETTINGS) == \
            job_content_hash(job_b, FAST_SETTINGS)

    @pytest.mark.parametrize("variant", [
        {"threshold": 3},
        {"n_rows": 3},
        {"max_candidates": 7},
        {"max_seconds": 1.5},
        {"query": QUERY.replace("name", "nm")},
    ])
    def test_changed_inputs_change_the_hash(self, variant):
        base = job_content_hash(job_from_spec(inline_spec()), FAST_SETTINGS)
        other = job_content_hash(
            job_from_spec(inline_spec(**variant)), FAST_SETTINGS
        )
        assert other != base, variant

    def test_tag_does_not_change_the_hash(self):
        base = job_content_hash(job_from_spec(inline_spec()), FAST_SETTINGS)
        tagged = job_content_hash(
            job_from_spec(inline_spec(tag="x")), FAST_SETTINGS
        )
        assert tagged == base

    def test_named_job_hash_depends_on_settings(self):
        # The settings shape a named workload's generated database, so
        # they are part of the named-context identity...
        spec = {"query_name": "TPCH-Q3", "threshold": 2,
                "max_candidates": 100, "max_seconds": 10.0}
        job = job_from_spec(spec)
        assert job_content_hash(job, FAST_SETTINGS) != \
            job_content_hash(job, DEFAULT_SETTINGS)

    def test_result_irrelevant_settings_do_not_change_named_hash(self):
        # Pool sizes and sweep lists cannot change one job's result, so
        # flipping them must not invalidate the persistent cache.
        import dataclasses

        spec = {"query_name": "TPCH-Q3", "threshold": 2,
                "max_candidates": 100, "max_seconds": 10.0}
        job = job_from_spec(spec)
        tweaked = dataclasses.replace(
            FAST_SETTINGS, batch_workers=8, thresholds=(9, 10),
            plotted_queries=("TPCH-Q3",),
        )
        assert job_content_hash(job, tweaked) == \
            job_content_hash(job, FAST_SETTINGS)

    def test_inline_job_hash_ignores_settings(self):
        # ...while an inline context is self-describing: with an explicit
        # per-job config, the profile cannot change the result.
        job = job_from_spec(inline_spec(max_candidates=100, max_seconds=10.0))
        assert job_content_hash(job, FAST_SETTINGS) == \
            job_content_hash(job, DEFAULT_SETTINGS)

    def test_default_config_resolves_through_settings(self):
        # job.config=None means the settings budgets: hash like a job
        # that spells those budgets out, unlike one with other budgets.
        implicit = job_from_spec(inline_spec())
        explicit = job_from_spec(inline_spec(
            max_candidates=FAST_SETTINGS.max_candidates,
            max_seconds=FAST_SETTINGS.max_seconds,
        ))
        assert job_content_hash(implicit, FAST_SETTINGS) == \
            job_content_hash(explicit, FAST_SETTINGS)
        assert job_content_hash(implicit, FAST_SETTINGS) != \
            job_content_hash(implicit, DEFAULT_SETTINGS)

    def test_inline_content_hash_is_memoized_and_pickle_safe(self):
        import pickle

        job = job_from_spec(inline_spec())
        first = job.context.content_hash()
        assert job.context.__dict__["_content_hash"] == first
        assert job.context.content_hash() is first  # served from the memo
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.context.content_hash() == first

    def test_spec_content_hash_matches_job_hash(self):
        spec = inline_spec()
        job = job_from_spec(spec, base_config=OptimizerConfig(
            max_candidates=FAST_SETTINGS.max_candidates,
            max_seconds=FAST_SETTINGS.max_seconds,
        ))
        assert spec_content_hash(spec, FAST_SETTINGS) == \
            job_content_hash(job, FAST_SETTINGS)

    def test_canonical_json_fast_and_slow_paths_agree(self):
        # The one-pass serializer must emit the same text as the deep
        # jsonable() rebuild for every input the fast path accepts.
        import json as _json

        from repro.core.optimizer import OptimizerConfig as OC
        from repro.store import canonical_json
        from repro.store.hashing import jsonable

        for value in (
            {"b": [1, 2.5, None, "x"], "a": {"nested": [True, False]}},
            OC(max_candidates=5, max_seconds=1.0),
            FAST_SETTINGS,
            {"s": frozenset({3, 1, 2})},
        ):
            assert canonical_json(value) == _json.dumps(
                jsonable(value), sort_keys=True, separators=(",", ":")
            )

    def test_hash_is_stable_across_processes(self, tmp_path):
        """The same spec must hash identically in a fresh interpreter."""
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(inline_spec()))
        script = (
            "import json, sys\n"
            "from repro.store import spec_content_hash\n"
            "from repro.experiments.settings import FAST_SETTINGS\n"
            f"spec = json.load(open({str(spec_path)!r}))\n"
            "print(spec_content_hash(spec, FAST_SETTINGS))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={**os.environ, "PYTHONPATH": str(
                Path(__file__).resolve().parent.parent / "src"
            )},
        )
        assert out.stdout.strip() == \
            spec_content_hash(inline_spec(), FAST_SETTINGS)


class TestJobToSpec:
    def test_round_trips_named_and_inline(self):
        base = OptimizerConfig(max_candidates=500, max_seconds=12.0)
        for spec in (
            {"query_name": "TPCH-Q3", "threshold": 2, "n_leaves": 40,
             "tag": "named", "max_candidates": 9},
            inline_spec(tag="inl", max_seconds=3.0),
        ):
            job = job_from_spec(spec, base_config=base)
            rebuilt = job_from_spec(job_to_spec(job), base_config=base)
            assert rebuilt == job

    def test_kexample_spec_round_trips(self):
        from repro.io.json_io import kexample_to_json
        from repro.provenance.builder import build_kexample
        from repro.query.parser import parse_cq

        example = build_kexample(
            parse_cq(QUERY), running_example_db(), n_rows=2
        )
        spec = inline_spec()
        del spec["query"]
        spec["kexample"] = kexample_to_json(example)
        job = job_from_spec(spec)
        assert job_from_spec(job_to_spec(job)) == job


class TestBatchJobResultRoundTrip:
    def test_real_result_round_trips_bit_identically(self):
        result = run_job(job_from_spec(inline_spec(tag="rt")), FAST_SETTINGS)
        assert result.ok and result.found
        assert result.stats.candidates_scanned > 0  # counters present
        payload = result.to_payload()
        rebuilt = BatchJobResult.from_payload(payload, result.job)
        assert rebuilt.to_payload() == payload
        assert rebuilt.stats == result.stats
        assert rebuilt.session_reused == result.session_reused
        assert rebuilt.cache_hit == result.cache_hit

    def test_payload_survives_json_text(self):
        result = run_job(job_from_spec(inline_spec()), FAST_SETTINGS)
        payload = json.loads(json.dumps(result.to_payload()))
        assert BatchJobResult.from_payload(
            payload, result.job
        ).to_payload() == payload

    def test_unbounded_loi_round_trips_through_null(self):
        job = job_from_spec(inline_spec())
        result = BatchJobResult(job=job, found=False)
        payload = result.to_payload()
        assert payload["loi"] is None  # JSON has no Infinity
        rebuilt = BatchJobResult.from_payload(payload, job)
        assert rebuilt.loi == float("inf")
        assert rebuilt.to_payload() == payload

    def test_counters_survive_explicitly(self):
        job = job_from_spec(inline_spec())
        stats = OptimizerStats(
            candidates_scanned=7, privacy_computations=3,
            delta_evaluations=5, row_option_cache_hits=11,
        )
        result = BatchJobResult(
            job=job, found=True, loi=1.5, privacy=2, stats=stats,
            session_reused=True, cache_hit=True,
        )
        rebuilt = BatchJobResult.from_payload(result.to_payload(), job)
        assert rebuilt.stats == stats
        assert rebuilt.session_reused is True
        assert rebuilt.cache_hit is True

    def test_unknown_stats_counters_are_ignored(self):
        # A payload written by a newer code version must still load.
        job = job_from_spec(inline_spec())
        payload = BatchJobResult(job=job).to_payload()
        payload["stats"]["counter_from_the_future"] = 9
        rebuilt = BatchJobResult.from_payload(payload, job)
        assert rebuilt.stats == OptimizerStats()


class TestJobStore:
    def test_non_sqlite_file_is_a_clean_error(self, tmp_path):
        from repro.errors import ServiceError

        path = tmp_path / "not-a-db.txt"
        path.write_text("this is not a sqlite file, not even close")
        with pytest.raises(ServiceError, match="cannot open job store"):
            JobStore(str(path))

    def test_records_round_trip_and_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        store = JobStore(path)
        spec = {"query_name": "TPCH-Q3", "threshold": 2}
        store.record_job("job-000001", 1, "hash-a", spec, JOB_QUEUED,
                         submitted_at=100.0)
        store.update_job("job-000001", JOB_RUNNING, started_at=101.0)
        store.close()

        store = JobStore(path)
        stored = store.get_job("job-000001")
        assert stored.spec == spec
        assert stored.state == JOB_RUNNING
        assert stored.submitted_at == 100.0
        assert stored.started_at == 101.0
        assert store.max_seq() == 1
        assert store.get_job("job-999999") is None

    def test_list_jobs_orders_and_filters(self):
        store = JobStore(":memory:")
        for seq in (2, 1, 3):
            store.record_job(f"job-{seq:06d}", seq, "h", {}, JOB_QUEUED)
        store.update_job("job-000002", JOB_DONE)
        assert [j.seq for j in store.list_jobs()] == [1, 2, 3]
        assert [j.seq for j in store.list_jobs(state=JOB_QUEUED)] == [1, 3]

    def test_lease_columns_round_trip_and_survive_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        store = JobStore(path)
        store.record_job("job-000001", 1, "h", {}, JOB_QUEUED)
        store.set_lease("job-000001", "worker-a", 1234.5, 2)
        stored = store.get_job("job-000001")
        assert stored.lease_worker == "worker-a"
        assert stored.lease_expires_at == 1234.5
        assert stored.attempts == 2
        store.close()

        store = JobStore(path)
        stored = store.get_job("job-000001")
        assert stored.lease_worker == "worker-a"
        assert stored.attempts == 2
        # Clearing drops the live lease but keeps the attempt history
        # (audit: how many claims this job burned).
        store.clear_lease("job-000001")
        stored = store.get_job("job-000001")
        assert stored.lease_worker is None
        assert stored.lease_expires_at is None
        assert stored.attempts == 2

    def test_pre_lease_schema_is_migrated_on_open(self, tmp_path):
        # A store created before the fleet columns existed must gain
        # them transparently on open (ALTER TABLE migration).
        import sqlite3

        path = str(tmp_path / "old.db")
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE jobs (
                job_id TEXT PRIMARY KEY,
                seq INTEGER NOT NULL,
                content_hash TEXT NOT NULL,
                spec TEXT NOT NULL,
                state TEXT NOT NULL,
                error TEXT,
                submitted_at REAL NOT NULL,
                started_at REAL,
                finished_at REAL
            );
            CREATE TABLE results (
                content_hash TEXT PRIMARY KEY,
                payload TEXT NOT NULL,
                created_at REAL NOT NULL,
                last_used_at REAL NOT NULL,
                hits INTEGER NOT NULL DEFAULT 0
            );
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT);
            INSERT INTO jobs VALUES
                ('job-000001', 1, 'h', '{}', 'queued', NULL, 1.0,
                 NULL, NULL);
            """
        )
        conn.commit()
        conn.close()

        store = JobStore(path)
        stored = store.get_job("job-000001")
        assert stored.lease_worker is None
        assert stored.attempts == 0
        store.set_lease("job-000001", "w", 9.0, 1)
        assert store.get_job("job-000001").lease_worker == "w"
        store.close()

    def test_first_result_write_wins(self):
        store = JobStore(":memory:")
        assert store.save_result("h", {"value": 1}) is True
        assert store.save_result("h", {"value": 2}) is False
        assert store.load_result("h") == {"value": 1}
        assert store.result_count() == 1

    def test_load_result_bumps_hit_counters(self):
        store = JobStore(":memory:")
        store.save_result("h", {"value": 1})
        store.load_result("h")
        store.load_result("h")
        row = store._conn.execute(
            "SELECT hits FROM results WHERE content_hash='h'"
        ).fetchone()
        assert row[0] == 2

    def test_peek_result_leaves_usage_counters_alone(self):
        store = JobStore(":memory:")
        store.save_result("h", {"value": 1})
        assert store.peek_result("h") == {"value": 1}
        assert store.peek_result("missing") is None
        row = store._conn.execute(
            "SELECT hits FROM results WHERE content_hash='h'"
        ).fetchone()
        assert row[0] == 0

    def test_gc_keep_results_retains_most_recently_used(self):
        store = JobStore(":memory:")
        for name in ("a", "b", "c"):
            store.save_result(name, {"name": name})
        store.load_result("a")  # refresh a's last_used_at
        counts = store.gc(keep_results=2)
        assert counts["results_deleted"] == 1
        assert store.load_result("a") is not None
        assert store.load_result("b") is None  # the oldest fell out

    def test_gc_age_window_and_terminal_jobs(self):
        store = JobStore(":memory:")
        store.save_result("old", {"v": 1})
        store._conn.execute(
            "UPDATE results SET last_used_at = 0 WHERE content_hash='old'"
        )
        store.record_job("job-000001", 1, "old", {}, JOB_DONE)
        store.update_job("job-000001", JOB_DONE, finished_at=0.0)
        store.record_job("job-000002", 2, "h2", {}, JOB_QUEUED,
                         submitted_at=0.0)
        counts = store.gc(max_age_days=1.0)
        assert counts == {"results_deleted": 1, "jobs_deleted": 1}
        # Queued records are the recovery set: age never deletes them.
        assert store.get_job("job-000002") is not None
        assert store.get_job("job-000001") is None

    def test_gc_drop_terminal_jobs_spares_pending(self):
        store = JobStore(":memory:")
        store.record_job("job-000001", 1, "h", {}, JOB_DONE)
        store.record_job("job-000002", 2, "h", {}, JOB_QUEUED)
        store.record_job("job-000003", 3, "h", {}, JOB_FAILED)
        counts = store.gc(drop_terminal_jobs=True)
        assert counts["jobs_deleted"] == 2
        assert [j.job_id for j in store.list_jobs()] == ["job-000002"]


class TestResultCache:
    def test_miss_then_hit_is_payload_identical(self):
        cache = ResultCache(JobStore(":memory:"))
        job = job_from_spec(inline_spec())
        assert cache.lookup(job, FAST_SETTINGS) is None
        fresh = run_job(job, FAST_SETTINGS)
        assert cache.store_result(job, FAST_SETTINGS, fresh)
        hit = cache.lookup(job, FAST_SETTINGS)
        assert hit.cache_hit is True
        assert payload_modulo_cache_hit(hit.to_payload()) == \
            payload_modulo_cache_hit(fresh.to_payload())

    def test_errors_and_cache_hits_are_not_stored(self):
        cache = ResultCache(JobStore(":memory:"))
        job = job_from_spec(inline_spec())
        errored = BatchJobResult(job=job, error="boom")
        assert cache.store_result(job, FAST_SETTINGS, errored) is None
        already_cached = BatchJobResult(job=job, found=True, cache_hit=True)
        assert cache.store_result(job, FAST_SETTINGS, already_cached) is None
        assert cache.store.result_count() == 0

    def test_wall_clock_tripped_results_are_not_stored(self):
        # How far a search gets in max_seconds depends on the machine;
        # caching a cut-short run would freeze a slow host's best-so-far
        # as the canonical answer for every reader of the store.  The
        # optimizer reports the cut exactly via stopped_by_wall_clock.
        cache = ResultCache(JobStore(":memory:"))
        job = job_from_spec(inline_spec(max_seconds=2.0))
        tripped = BatchJobResult(
            job=job, found=False,
            stats=OptimizerStats(
                elapsed_seconds=2.5, stopped_by_wall_clock=True,
            ),
        )
        assert cache.store_result(job, FAST_SETTINGS, tripped) is None
        assert cache.store.result_count() == 0
        # ...while a search that *completed* — even one that brushed the
        # budget without the break firing — is cached, as is a
        # max_candidates-limited not-found (both deterministic).
        finished = BatchJobResult(
            job=job, found=True, loi=1.0, privacy=2,
            stats=OptimizerStats(elapsed_seconds=2.1),
        )
        assert cache.store_result(job, FAST_SETTINGS, finished)
        capped = job_from_spec(inline_spec(max_candidates=1))
        not_found = BatchJobResult(
            job=capped, found=False,
            stats=OptimizerStats(candidates_scanned=1, elapsed_seconds=0.1),
        )
        assert cache.store_result(capped, FAST_SETTINGS, not_found)
        assert cache.store.result_count() == 2

    def test_wall_clock_flag_is_set_by_a_real_tripped_search(self):
        from repro.core.optimizer import find_optimal_abstraction
        from repro.examples_data import Q_REAL
        from repro.provenance.builder import build_kexample

        example = build_kexample(Q_REAL, running_example_db(), n_rows=2)
        tripped = find_optimal_abstraction(
            example, running_example_tree(), 2,
            config=OptimizerConfig(max_seconds=0.0),
        )
        assert tripped.stats.stopped_by_wall_clock is True
        complete = find_optimal_abstraction(
            example, running_example_tree(), 2,
        )
        assert complete.stats.stopped_by_wall_clock is False

    def test_corrupt_stored_payload_degrades_to_a_miss(self, tmp_path):
        # run_job's "never raises" contract sits on top of lookup(): a
        # damaged row must recompute, not crash the batch.
        path = str(tmp_path / "store.db")
        job = job_from_spec(inline_spec())
        fresh = run_job(job, FAST_SETTINGS, path)
        store = JobStore(path)
        store._conn.execute("UPDATE results SET payload = '{truncated'")
        store._conn.commit()
        store.close()
        recomputed = run_job(job, FAST_SETTINGS, path)
        assert recomputed.ok
        assert recomputed.cache_hit is False
        # Two *fresh* runs agree on the search outcome (timing and
        # warm-session audit fields legitimately differ).
        for key in ("found", "privacy", "loi", "edges_used",
                    "variable_targets"):
            assert recomputed.to_payload()[key] == fresh.to_payload()[key]

    def test_run_job_consults_the_store(self, tmp_path):
        path = str(tmp_path / "store.db")
        job = job_from_spec(inline_spec())
        cold = run_job(job, FAST_SETTINGS, path)
        assert cold.cache_hit is False
        warm = run_job(job, FAST_SETTINGS, path)
        assert warm.cache_hit is True
        assert payload_modulo_cache_hit(warm.to_payload()) == \
            payload_modulo_cache_hit(cold.to_payload())

    def test_run_job_degrades_when_store_cannot_open(self):
        # run_job never raises: an unopenable store means "run uncached".
        job = job_from_spec(inline_spec())
        result = run_job(job, FAST_SETTINGS, "/nonexistent-dir/x.db")
        assert result.ok and result.found
        assert result.cache_hit is False

    def test_batch_optimizer_rejects_bad_store_path_up_front(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="cannot open job store"):
            BatchOptimizer(FAST_SETTINGS, max_workers=1,
                           store_path="/nonexistent-dir/x.db")

    def test_batch_optimizer_counts_cache_hits(self, tmp_path):
        path = str(tmp_path / "store.db")
        jobs = [job_from_spec(inline_spec(tag="x")),
                job_from_spec(inline_spec(tag="y"))]
        optimizer = BatchOptimizer(FAST_SETTINGS, max_workers=1,
                                   store_path=path)
        first = optimizer.run(jobs)
        # Tags differ but content does not: the second job of the *same*
        # batch already hits the store.
        assert first.stats.cache_hits == 1
        second = optimizer.run(jobs)
        assert second.stats.cache_hits == 2
        assert second.stats.candidates_scanned == 0  # no search ran
        for a, b in zip(first.results, second.results):
            assert payload_modulo_cache_hit(a.to_payload()) == \
                payload_modulo_cache_hit(b.to_payload())


@pytest.fixture(params=("thread", "process"))
def make_service(request):
    """A store-backed ``JobService`` factory, parameterized by executor.

    Durability must be indistinguishable across the execution tiers, so
    every test below runs once per backend.  Created services are shut
    down at teardown (the process backend owns a worker pool).
    """
    services = []

    def factory(path, **kwargs):
        kwargs.setdefault("worker_threads", 0)
        kwargs.setdefault("max_queue", 16)
        kwargs.setdefault("executor", request.param)
        service = JobService(store=JobStore(path), **kwargs)
        services.append(service)
        return service

    yield factory
    for service in services:
        service.shutdown()


def drain(service):
    while service.run_next():
        pass


class TestServiceDurability:
    """The acceptance loop: dedup within a process and across restarts.

    ``make_service`` is parameterized over both executor backends.
    """

    def test_same_job_twice_runs_the_optimizer_once(self, tmp_path, make_service):
        service = make_service(str(tmp_path / "store.db"))
        ids = service.submit_specs([inline_spec(), inline_spec()])
        drain(service)
        _, first = service.result_payload(ids[0])
        _, second = service.result_payload(ids[1])
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        # Bit-identical payload (the cache_hit marker aside) — including
        # `seconds`, which proves no second search produced it.
        assert payload_modulo_cache_hit({**first, "id": ""}) == \
            payload_modulo_cache_hit({**second, "id": ""})
        stats = service.stats_payload()
        assert stats["cache_hits"] == 1
        assert stats["results_stored"] == 1

    def test_results_survive_a_restart(self, tmp_path, make_service):
        path = str(tmp_path / "store.db")
        service = make_service(path)
        ids = service.submit_specs([inline_spec(tag="persist")])
        drain(service)
        _, before = service.result_payload(ids[0])

        revived = make_service(path)
        assert revived.stats_payload()["jobs_recovered"] == 1
        code, after = revived.result_payload(ids[0])
        assert code == 200
        assert after == before  # bit-identical across the restart

        # ...and a content-identical resubmission is a cache hit.
        new_ids = revived.submit_specs([inline_spec(tag="resubmit")])
        drain(revived)
        _, resubmitted = revived.result_payload(new_ids[0])
        assert resubmitted["cache_hit"] is True
        assert payload_modulo_cache_hit({**before, "id": "", "tag": ""}) == \
            payload_modulo_cache_hit({**resubmitted, "id": "", "tag": ""})

    def test_queued_and_running_jobs_requeue_on_restart(self, tmp_path, make_service):
        path = str(tmp_path / "store.db")
        service = make_service(path)
        ids = service.submit_specs([inline_spec(), inline_spec(threshold=3)])
        # Simulate dying mid-run: first job marked running, never finished.
        service._store.update_job(ids[0], JOB_RUNNING, started_at=1.0)

        revived = make_service(path)
        stats = revived.stats_payload()
        assert stats["jobs_requeued"] == 2
        assert stats["queue_depth"] == 2
        assert revived.status_payload(ids[0])["state"] == JOB_QUEUED
        # The dead process's start timestamp is cleared in the store too.
        assert revived._store.get_job(ids[0]).started_at is None
        drain(revived)
        for job_id in ids:
            code, payload = revived.result_payload(job_id)
            assert code == 200
            assert payload["state"] == JOB_DONE
            assert payload["found"]

    def test_unfaithful_requeue_fails_visibly(self, tmp_path, make_service):
        # A queued job whose rebuilt form no longer hashes to the
        # submitted content hash (config beyond spec budgets, or the
        # service restarted under different settings) must fail loudly,
        # not silently re-run as different work.
        import dataclasses

        from repro.core.privacy import PrivacyConfig

        path = str(tmp_path / "store.db")
        service = make_service(path)
        job = job_from_spec(inline_spec())
        custom = dataclasses.replace(
            job, config=OptimizerConfig(
                max_candidates=50, max_seconds=5.0,
                privacy=PrivacyConfig(connectivity_filter=False),
            ),
        )
        job_id = service.submit(custom)

        revived = make_service(path)
        payload = revived.status_payload(job_id)
        assert payload["state"] == JOB_FAILED
        assert "cannot re-run faithfully" in payload["error"]
        assert revived.stats_payload()["jobs_requeued"] == 0
        # Durable: the store row is terminal, not forever-queued.
        assert revived._store.get_job(job_id).state == JOB_FAILED

    def test_job_ids_continue_after_restart(self, tmp_path, make_service):
        path = str(tmp_path / "store.db")
        service = make_service(path)
        ids = service.submit_specs([inline_spec()])
        assert ids == ["job-000001"]
        revived = make_service(path)
        assert revived.submit_specs([inline_spec(threshold=3)]) == \
            ["job-000002"]

    def test_cancellation_is_durable(self, tmp_path, make_service):
        path = str(tmp_path / "store.db")
        service = make_service(path)
        ids = service.submit_specs([inline_spec()])
        assert service.cancel(ids[0]) is True
        revived = make_service(path)
        assert revived.status_payload(ids[0])["state"] == "cancelled"
        assert revived.stats_payload()["jobs_requeued"] == 0

    def test_unparseable_stored_spec_becomes_visible_failure(self, tmp_path, make_service):
        path = str(tmp_path / "store.db")
        store = JobStore(path)
        store.record_job(
            "job-000001", 1, "h", {"nonsense": True}, JOB_QUEUED
        )
        store.close()
        revived = make_service(path)
        payload = revived.status_payload("job-000001")
        assert payload["state"] == JOB_FAILED
        assert "unrecoverable" in payload["error"]
        stats = revived.stats_payload()
        assert stats["jobs_requeued"] == 0
        # Rebuilt (listable, just not runnable) still counts as recovered.
        assert stats["jobs_recovered"] == 1
        # The failure is pushed back to the store: the row must not stay
        # 'queued' forever (ungarbage-collectable, re-reported per boot).
        assert revived._store.get_job("job-000001").state == JOB_FAILED
        assert revived._store.gc(drop_terminal_jobs=True)["jobs_deleted"] == 1

    def test_failed_jobs_keep_their_error_across_restart(self, tmp_path, make_service):
        path = str(tmp_path / "store.db")
        service = make_service(path)
        ids = service.submit_specs([
            {"query_name": "NO-SUCH-QUERY", "threshold": 2},
        ])
        drain(service)
        assert service.status_payload(ids[0])["state"] == JOB_FAILED

        revived = make_service(path)
        code, payload = revived.result_payload(ids[0])
        assert code == 200
        assert payload["state"] == JOB_FAILED
        assert "NO-SUCH-QUERY" in payload["error"]
        # Errored searches are never cached: a resubmission retries.
        assert revived.stats_payload()["results_stored"] == 0
