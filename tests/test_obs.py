"""The observability layer: spans, metrics, trace files, and the two
hard constraints on top of them — bit-neutrality (tracing must never
move a content or result hash) and a true no-op when disabled."""

from __future__ import annotations

import json
import threading

import pytest

from repro.batch import BatchJob, run_job
from repro.core.optimizer import OptimizerConfig
from repro.experiments.settings import FAST_SETTINGS
from repro.obs import metrics, spans
from repro.obs.trace import (
    TraceError,
    TraceWriter,
    format_record,
    format_summary,
    read_trace,
    summarize,
    trace_record,
)
from repro.scenarios.snapshot import result_hash
from repro.store.hashing import job_content_hash


# -- spans -----------------------------------------------------------------


class TestTracer:
    def test_nesting_is_recorded_via_parent_indices(self):
        tracer = spans.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        names = [(r["name"], r["parent"]) for r in tracer.records]
        assert names == [("outer", -1), ("inner", 0), ("sibling", 0)]

    def test_records_are_in_start_order_with_relative_times(self):
        tracer = spans.Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        starts = [r["start"] for r in tracer.records]
        assert starts == sorted(starts)
        assert all(s >= 0.0 for s in starts)
        assert all(r["seconds"] >= 0.0 for r in tracer.records)

    def test_span_attrs_and_exception_exit_still_record(self):
        tracer = spans.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase", engine="naive"):
                raise RuntimeError("boom")
        (record,) = tracer.records
        assert record["attrs"] == {"engine": "naive"}
        assert record["seconds"] >= 0.0

    def test_aggregate_accumulates_count_and_seconds(self):
        tracer = spans.Tracer()
        timer = tracer.aggregate("hot", op="x")
        for _ in range(5):
            with timer:
                pass
        (record,) = tracer.records
        assert record["count"] == 5
        assert record["attrs"] == {"op": "x"}

    def test_aggregates_with_distinct_attrs_get_distinct_records(self):
        tracer = spans.Tracer()
        tracer.add("io", 0.25, op="read")
        tracer.add("io", 0.5, op="write")
        tracer.add("io", 0.25, op="read")
        by_op = {r["attrs"]["op"]: r for r in tracer.records}
        assert by_op["read"]["count"] == 2
        assert by_op["read"]["seconds"] == pytest.approx(0.5)
        assert by_op["write"]["count"] == 1

    def test_payload_round_trips_through_json(self):
        tracer = spans.Tracer()
        with tracer.span("outer", k=2):
            tracer.add("inner", 0.125)
        payload = tracer.to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert spans.Tracer.from_payload(payload).to_payload() == payload

    def test_module_helpers_are_noops_without_an_active_tracer(self):
        assert spans.current() is None
        assert spans.span("anything") is spans.NO_SPAN
        assert spans.aggregate("anything") is spans.NO_SPAN

    def test_activate_installs_and_restores_the_ambient_tracer(self):
        tracer = spans.Tracer()
        with spans.activate(tracer):
            assert spans.current() is tracer
            with spans.span("seen"):
                pass
            with spans.activate(None):
                assert spans.current() is None
                assert spans.span("shielded") is spans.NO_SPAN
        assert spans.current() is None
        assert [r["name"] for r in tracer.records] == ["seen"]


# -- metrics ---------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_render_prometheus_text(self):
        registry = metrics.MetricsRegistry()
        jobs = registry.counter("jobs_total", "Jobs.", labelnames=("state",))
        depth = registry.gauge("queue_depth", "Depth.")
        lat = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        jobs.inc(state="done")
        jobs.inc(2, state="failed")
        depth.set(3)
        lat.observe(0.05)
        lat.observe(5.0)
        text = registry.render()
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{state="done"} 1' in text
        assert 'jobs_total{state="failed"} 2' in text
        assert 'queue_depth 3' in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert 'latency_seconds_count 2' in text

    def test_every_exposition_line_is_well_formed(self):
        registry = metrics.MetricsRegistry()
        c = registry.counter("c_total", 'Help with "quotes" and \\ slash.',
                             labelnames=("k",))
        c.inc(k='va"l\nue\\')
        for line in registry.render().splitlines():
            assert line.startswith(("# HELP", "# TYPE")) or (
                " " in line and not line.endswith(" ")
            )

    def test_conflicting_reregistration_raises_idempotent_passes(self):
        registry = metrics.MetricsRegistry()
        first = registry.counter("x_total", "X.")
        assert registry.counter("x_total", "X.") is first
        with pytest.raises(metrics.MetricsError):
            registry.counter("x_total", "X.", labelnames=("state",))
        with pytest.raises(metrics.MetricsError):
            registry.gauge("x_total", "X.")
        with pytest.raises(metrics.MetricsError):
            registry.counter("bad name", "X.")

    def test_render_many_concatenates_disjoint_registries(self):
        a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        a.counter("a_total", "A.").inc()
        b.gauge("b_now", "B.").set(1)
        text = metrics.render_many([a, b])
        assert "a_total 1" in text and "b_now 1" in text


# -- trace files -----------------------------------------------------------


class TestTraceFiles:
    def _write(self, path, n=2):
        with TraceWriter(path) as writer:
            for i in range(n):
                tracer = spans.Tracer()
                with tracer.span("search", threshold=i):
                    tracer.add("scoring", 0.25)
                writer.write(trace_record(
                    tracer.to_payload(), label=f"job-{i}",
                    query="IMDB-Q1", threshold=i, seconds=0.5,
                ))
        return path

    def test_writer_reader_round_trip(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl")
        records = read_trace(path)
        assert len(records) == 2
        assert records[0]["label"] == "job-0"
        assert [s["name"] for s in records[0]["spans"]] == [
            "search", "scoring",
        ]

    def test_summary_folds_phases_across_records(self, tmp_path):
        records = read_trace(self._write(tmp_path / "t.jsonl", n=3))
        summary = summarize(records)
        assert summary.records == 3
        assert summary.phases["scoring"].jobs == 3
        assert summary.phases["scoring"].seconds == pytest.approx(0.75)
        text = format_summary(summary)
        assert "scoring" in text and "search" in text

    def test_format_record_shows_the_span_tree(self, tmp_path):
        record = read_trace(self._write(tmp_path / "t.jsonl"))[0]
        text = format_record(record)
        assert "job-0" in text
        assert "search" in text and "scoring" in text

    def test_invalid_schema_and_empty_file_raise(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "something-else", "spans": []}\n')
        with pytest.raises(TraceError):
            read_trace(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError):
            read_trace(empty)

    def test_forward_parent_reference_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({
            "schema": "repro-trace-v1", "label": "x",
            "spans": [{"name": "a", "start": 0.0, "seconds": 0.0,
                       "parent": 1, "count": 1}],
        }) + "\n")
        with pytest.raises(TraceError):
            read_trace(bad)

    def test_writer_is_thread_safe(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = trace_record([], label="x")
        with TraceWriter(path) as writer:
            threads = [
                threading.Thread(
                    target=lambda: [writer.write(record) for _ in range(20)]
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(read_trace(path)) == 80


# -- traced jobs end to end ------------------------------------------------


def _job(trace: bool) -> BatchJob:
    return BatchJob(
        "IMDB-Q1", 2,
        config=OptimizerConfig(
            max_candidates=FAST_SETTINGS.max_candidates,
            max_seconds=FAST_SETTINGS.max_seconds,
            trace=trace,
        ),
    )


class TestTracedJobs:
    def test_traced_run_attaches_spans_and_round_trips(self):
        result = run_job(_job(trace=True), FAST_SETTINGS)
        assert result.ok
        assert result.trace, "traced run must carry span records"
        names = {r["name"] for r in result.trace}
        assert {"context_build", "session_build", "search"} <= names
        payload = result.to_payload()
        rebuilt = type(result).from_payload(
            json.loads(json.dumps(payload)), result.job
        )
        assert rebuilt.trace == result.trace

    def test_untraced_run_has_no_trace(self):
        result = run_job(_job(trace=False), FAST_SETTINGS)
        assert result.ok
        assert result.trace is None

    def test_tracing_is_bit_neutral(self):
        traced = run_job(_job(trace=True), FAST_SETTINGS)
        plain = run_job(_job(trace=False), FAST_SETTINGS)
        assert job_content_hash(_job(True), FAST_SETTINGS) == \
            job_content_hash(_job(False), FAST_SETTINGS)
        assert result_hash(traced.to_payload()) == \
            result_hash(plain.to_payload())


# -- the service's /metrics and the store_errors counter -------------------


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_service_metrics_and_traces_on_both_tiers(executor, tmp_path):
    from repro.service.server import JobService
    from repro.store import JobStore

    trace_path = tmp_path / "trace.jsonl"
    service = JobService(
        settings=FAST_SETTINGS,
        worker_threads=0,
        store=JobStore(str(tmp_path / "store.sqlite")),
        executor=executor,
        trace=True,
        trace_path=str(trace_path),
    )
    try:
        service.submit(BatchJob("IMDB-Q1", 2))
        assert service.run_next()
        text = service.metrics_text()
        # Validity: every non-comment line is `name{labels} value`.
        for line in text.splitlines():
            assert line.startswith("# ") or " " in line
        assert 'repro_service_jobs_completed_total{state="done"} 1' in text
        assert f'executor="{executor}"' in text
        assert "repro_service_phase_seconds_bucket" in text
        # Cardinality: phase labels are the fixed span taxonomy, not
        # per-job values.
        phases = {
            line.split('phase="')[1].split('"')[0]
            for line in text.splitlines() if 'phase="' in line
        }
        assert phases <= {
            "context_build", "session_build", "search", "store_io",
            "candidate_scoring", "privacy_check", "materialize",
            "cache_lookup", "engine_evaluate",
        }
    finally:
        service.shutdown()
    records = read_trace(trace_path)
    assert len(records) == 1
    assert records[0]["query"] == "IMDB-Q1"


def test_store_errors_are_counted_and_stats_stay_up(tmp_path):
    from repro.service.server import JobService
    from repro.store import JobStore

    store = JobStore(str(tmp_path / "store.sqlite"))
    service = JobService(
        settings=FAST_SETTINGS, worker_threads=0, store=store,
    )
    try:
        before = service.stats_payload()
        assert before["store_errors"] == 0
        # Break the store out from under the service: every persistence
        # call now fails, and each must degrade-and-count, not raise.
        store.close()
        service.submit(BatchJob("IMDB-Q1", 2))
        stats = service.stats_payload()
        assert stats["store_errors"] > 0
        assert stats["jobs_submitted"] == 1
        assert 'repro_service_store_errors_total' in service.metrics_text()
    finally:
        service.shutdown()
