"""Tests for provenance-tracking query evaluation."""

import pytest

from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.errors import EvaluationError
from repro.query.evaluator import derivations, evaluate, evaluate_cq, evaluate_ucq
from repro.query.parser import parse_cq, parse_ucq
from repro.semirings.polynomial import Monomial, Polynomial
from repro.examples_data import Q_REAL


@pytest.fixture
def small_db():
    db = KDatabase(Schema.from_dict({"R": ["a", "b"], "S": ["b", "c"]}))
    db.insert("R", (1, 2), "r1")
    db.insert("R", (1, 3), "r2")
    db.insert("S", (2, 9), "s1")
    db.insert("S", (3, 9), "s2")
    return db


class TestEvaluateCQ:
    def test_paper_example_provenance(self, paper_db):
        result = evaluate_cq(Q_REAL, paper_db)
        assert result[(1,)] == Polynomial({Monomial.of("p1", "h1", "i1"): 1})
        assert result[(2,)] == Polynomial({Monomial.of("p2", "h2", "i2"): 1})
        assert set(result) == {(1,), (2,)}

    def test_join_provenance(self, small_db):
        result = evaluate_cq(parse_cq("Q(a, c) :- R(a, b), S(b, c)"), small_db)
        assert result[(1, 9)] == (
            Polynomial({Monomial.of("r1", "s1"): 1})
            + Polynomial({Monomial.of("r2", "s2"): 1})
        )

    def test_projection_sums_derivations(self, small_db):
        result = evaluate_cq(parse_cq("Q(a) :- R(a, b), S(b, c)"), small_db)
        poly = result[(1,)]
        assert poly.coefficient(Monomial.of("r1", "s1")) == 1
        assert poly.coefficient(Monomial.of("r2", "s2")) == 1

    def test_coefficient_from_duplicate_values(self):
        db = KDatabase(Schema.from_dict({"R": ["a"]}))
        db.insert("R", (1,), "r1")
        db.insert("R", (1,), "r2")  # same value, distinct annotation
        result = evaluate_cq(parse_cq("Q(x) :- R(x)"), db)
        poly = result[(1,)]
        assert poly.coefficient(Monomial.of("r1")) == 1
        assert poly.coefficient(Monomial.of("r2")) == 1

    def test_self_join_exponent(self, small_db):
        # x joined with itself through two atoms mapping to the same tuple.
        result = evaluate_cq(parse_cq("Q(a) :- R(a, b), R(a, c)"), small_db)
        poly = result[(1,)]
        assert poly.coefficient(Monomial({"r1": 2})) == 1
        assert poly.coefficient(Monomial({"r1": 1, "r2": 1})) == 2

    def test_constant_selection(self, small_db):
        result = evaluate_cq(parse_cq("Q(a) :- R(a, 2)"), small_db)
        assert set(result) == {(1,)}
        assert result[(1,)] == Polynomial({Monomial.of("r1"): 1})

    def test_empty_result(self, small_db):
        assert evaluate_cq(parse_cq("Q(a) :- R(a, 99)"), small_db) == {}

    def test_repeated_variable_in_atom(self):
        db = KDatabase(Schema.from_dict({"R": ["a", "b"]}))
        db.insert("R", (1, 1), "eq")
        db.insert("R", (1, 2), "ne")
        result = evaluate_cq(parse_cq("Q(x) :- R(x, x)"), db)
        assert set(result) == {(1,)}
        assert result[(1,)] == Polynomial({Monomial.of("eq"): 1})

    def test_constant_in_head(self, small_db):
        result = evaluate_cq(parse_cq("Q('tag', a) :- R(a, b)"), small_db)
        assert ("tag", 1) in result

    def test_unknown_relation_rejected(self, small_db):
        with pytest.raises(EvaluationError):
            evaluate_cq(parse_cq("Q(x) :- T(x)"), small_db)

    def test_arity_mismatch_rejected(self, small_db):
        with pytest.raises(EvaluationError):
            evaluate_cq(parse_cq("Q(x) :- R(x)"), small_db)


class TestDerivations:
    def test_derivation_images_and_monomial(self, small_db):
        query = parse_cq("Q(a, c) :- R(a, b), S(b, c)")
        derivs = list(derivations(query, small_db))
        assert len(derivs) == 2
        by_monomial = {d.monomial(): d for d in derivs}
        assert Monomial.of("r1", "s1") in by_monomial
        d = by_monomial[Monomial.of("r1", "s1")]
        assert d.output() == (1, 9)
        assert [t.annotation for t in d.images] == ["r1", "s1"]

    def test_bindings_exposed(self, small_db):
        query = parse_cq("Q(a) :- R(a, b)")
        derivation = next(iter(derivations(query, small_db)))
        assert set(v.name for v in derivation.bindings) == {"a", "b"}


class TestEvaluateUCQ:
    def test_union_adds_provenance(self, small_db):
        ucq = parse_ucq("Q(b) :- R(a, b); Q(b) :- S(b, c)")
        result = evaluate_ucq(ucq, small_db)
        poly = result[(2,)]
        assert poly.coefficient(Monomial.of("r1")) == 1
        assert poly.coefficient(Monomial.of("s1")) == 1

    def test_evaluate_dispatches(self, small_db):
        cq = parse_cq("Q(a) :- R(a, b)")
        assert evaluate(cq, small_db) == evaluate_cq(cq, small_db)
        ucq = parse_ucq("Q(a) :- R(a, b); Q(b) :- S(b, c)")
        assert evaluate(ucq, small_db) == evaluate_ucq(ucq, small_db)
