"""The analyzer's own acceptance gate: src/repro must lint clean.

This runs the full rule suite over the installed package in-process —
the same check CI's static-analysis job runs via `repro lint` — so a
determinism leak, payload drift, lock violation, swallowed error, or
seed-default regression fails tier-1 immediately, with the findings in
the assertion message.
"""

from pathlib import Path

import repro
from repro.analysis import analyze_paths
from repro.analysis.suppress import scan_suppressions

PACKAGE = Path(repro.__file__).parent


def test_package_lints_clean():
    report = analyze_paths([PACKAGE])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repro lint found violations in src/repro:\n{rendered}"


def test_self_lint_covers_the_whole_package():
    report = analyze_paths([PACKAGE])
    assert report.files_checked >= 80
    assert report.rules_run == [
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        "REP007",
    ]


def test_no_payload_or_lock_suppressions_in_the_tree():
    # REP001 allows exist (the job store's operational timestamps are
    # documented exceptions), but payload parity and lock discipline
    # must hold without escape hatches anywhere in the package.
    offenders = []
    for path in sorted(PACKAGE.rglob("*.py")):
        index = scan_suppressions(path.read_text())
        for (line, rule) in index.by_line:
            if rule in ("REP002", "REP003"):
                offenders.append(f"{path}:{line}: allow[{rule}]")
    assert not offenders, "\n".join(offenders)
