"""Tests for JSON/CSV serialization and the renderers."""

import json

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.core.optimizer import find_optimal_abstraction
from repro.errors import SchemaError
from repro.io.csv_io import database_from_csv_dir, database_to_csv_dir
from repro.io.json_io import (
    abstraction_from_json,
    abstraction_to_json,
    database_from_json,
    database_to_json,
    dumps,
    kexample_from_json,
    kexample_to_json,
    result_to_json,
    tree_from_json,
    tree_to_json,
)
from repro.render import render_kexample, render_query, render_result, render_tree
from repro.examples_data import Q_REAL


class TestDatabaseJson:
    def test_round_trip(self, paper_db):
        data = database_to_json(paper_db)
        restored = database_from_json(data)
        assert restored.annotations() == paper_db.annotations()
        assert restored.resolve("h1").values == paper_db.resolve("h1").values

    def test_json_serializable(self, paper_db):
        text = json.dumps(database_to_json(paper_db))
        assert "h1" in text

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            database_from_json({"tuples": []})


class TestTreeJson:
    def test_round_trip(self, paper_tree):
        data = tree_to_json(paper_tree)
        restored = tree_from_json(data)
        assert restored.labels() == paper_tree.labels()
        assert set(restored.leaves()) == set(paper_tree.leaves())
        assert restored.ancestors("h1") == paper_tree.ancestors("h1")

    def test_restored_tree_is_frozen(self, paper_tree):
        restored = tree_from_json(tree_to_json(paper_tree))
        assert restored.leaf_count("Facebook") == 5


class TestKExampleJson:
    def test_round_trip(self, paper_db, paper_example):
        data = kexample_to_json(paper_example)
        restored = kexample_from_json(data, paper_db)
        assert restored == paper_example

    def test_preserves_multiplicity(self, paper_db):
        from repro.provenance.kexample import KExample, KExampleRow

        example = KExample(
            [KExampleRow((1,), ["h1", "h1", "p1"])], paper_db.registry
        )
        restored = kexample_from_json(kexample_to_json(example), paper_db)
        assert restored.rows[0].occurrences == ("h1", "h1", "p1")


class TestAbstractionJson:
    def test_round_trip(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        data = abstraction_to_json(function)
        restored = abstraction_from_json(data, paper_tree, paper_example)
        assert restored.assignment == function.assignment

    def test_result_to_json(self, paper_tree, paper_example):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        data = result_to_json(result)
        assert data["found"] is True
        assert data["privacy"] == 2
        assert "abstraction" in data
        json.dumps(data)  # must be serializable

    def test_dumps_stable(self, paper_tree, paper_example):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=1)
        assert dumps(result_to_json(result)) == dumps(result_to_json(result))


class TestCsv:
    def test_round_trip(self, paper_db, tmp_path):
        database_to_csv_dir(paper_db, tmp_path)
        restored = database_from_csv_dir(tmp_path)
        assert restored.annotations() == paper_db.annotations()
        assert restored.resolve("p1").values == (1, "James T", 27)

    def test_numeric_parsing(self, paper_db, tmp_path):
        database_to_csv_dir(paper_db, tmp_path)
        restored = database_from_csv_dir(tmp_path)
        pid, name, age = restored.resolve("p2").values
        assert isinstance(pid, int)
        assert isinstance(name, str)
        assert isinstance(age, int)

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            database_from_csv_dir(tmp_path)

    def test_missing_annotation_column_rejected(self, tmp_path):
        (tmp_path / "R.csv").write_text("a,b\n1,2\n")
        with pytest.raises(SchemaError):
            database_from_csv_dir(tmp_path)

    def test_column_count_mismatch_rejected(self, tmp_path):
        (tmp_path / "R.csv").write_text("_annotation,a\nt1,1,2\n")
        with pytest.raises(SchemaError):
            database_from_csv_dir(tmp_path)


class TestRender:
    def test_render_tree(self, paper_tree, paper_example):
        art = render_tree(paper_tree, highlight=paper_example.variables())
        assert "Social Network" in art
        assert "h1 *" in art

    def test_render_tree_elides_children(self, paper_tree):
        art = render_tree(paper_tree, max_children=2)
        assert "more)" in art

    def test_render_kexample(self, paper_example):
        text = render_kexample(paper_example)
        assert "Output" in text
        assert "h1*i1*p1" in text

    def test_render_query_reparsable(self):
        from repro.query.parser import parse_cq

        text = render_query(Q_REAL)
        assert parse_cq(text) == Q_REAL

    def test_render_result(self, paper_tree, paper_example):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        text = render_result(result)
        assert "privacy             : 2" in text
        assert "Facebook" in text

    def test_render_unfound_result(self, paper_tree, paper_example):
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=10**6
        )
        assert "no abstraction" in render_result(result)
