"""Tests for the batch optimizer (repro.batch)."""

import pytest

from repro.batch import BatchJob, BatchOptimizer, InlineContext, InlineJob, run_batch
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.errors import OptimizationError
from repro.experiments.runner import prepare_context, run_sweep
from repro.experiments.settings import ExperimentSettings

TINY = ExperimentSettings(
    tree_leaves=40,
    tpch_scale=0.015,
    imdb_people=60,
    imdb_movies=40,
    max_candidates=300,
    max_seconds=10.0,
)


class TestSerial:
    def test_results_in_job_order(self):
        jobs = [
            BatchJob("TPCH-Q3", 2, tag="a"),
            BatchJob("TPCH-Q3", 3, tag="b"),
        ]
        batch = run_batch(jobs, TINY, max_workers=1)
        assert [r.job.tag for r in batch.results] == ["a", "b"]
        assert batch.stats.jobs_total == 2
        assert batch.stats.jobs_failed == 0
        assert batch.stats.workers == 1
        assert batch.stats.candidates_scanned > 0
        assert batch.stats.job_seconds > 0
        assert set(batch.by_tag()) == {"a", "b"}

    def test_matches_direct_search(self):
        batch = run_batch([BatchJob("TPCH-Q3", 2)], TINY, max_workers=1)
        result = batch.results[0]
        assert result.ok

        context = prepare_context("TPCH-Q3", TINY)
        direct = find_optimal_abstraction(
            context.example, context.tree, 2,
            config=OptimizerConfig(
                max_candidates=TINY.max_candidates,
                max_seconds=TINY.max_seconds,
            ),
        )
        assert result.found == direct.found
        assert result.loi == direct.loi
        assert result.privacy == direct.privacy
        assert result.edges_used == direct.edges_used

    def test_function_reconstruction(self):
        batch = run_batch([BatchJob("TPCH-Q3", 2)], TINY, max_workers=1)
        result = batch.results[0]
        assert result.found
        context = prepare_context("TPCH-Q3", TINY)
        function = result.function(context.tree, context.example)
        direct = find_optimal_abstraction(
            context.example, context.tree, 2,
            config=OptimizerConfig(
                max_candidates=TINY.max_candidates,
                max_seconds=TINY.max_seconds,
            ),
        )
        assert function.assignment == direct.function.assignment

    def test_per_job_config_override(self):
        job = BatchJob("TPCH-Q3", 2, config=OptimizerConfig(max_candidates=1))
        batch = run_batch([job], TINY, max_workers=1)
        result = batch.results[0]
        assert result.ok
        assert result.stats.candidates_scanned <= 2

    def test_run_sweep_raises_on_failed_job(self):
        """The figure sweeps must not plot errored jobs as data points."""
        with pytest.raises(OptimizationError, match="NO-SUCH-QUERY"):
            run_sweep([BatchJob("NO-SUCH-QUERY", 2)], TINY)

    def test_failed_job_reported_not_raised(self):
        jobs = [BatchJob("NO-SUCH-QUERY", 2), BatchJob("TPCH-Q3", 2)]
        batch = run_batch(jobs, TINY, max_workers=1)
        failed, ok = batch.results
        assert not failed.ok
        assert "NO-SUCH-QUERY" in failed.error
        assert not failed.found
        assert ok.ok
        assert batch.stats.jobs_failed == 1
        assert batch.stats.jobs_total == 2


class TestParallel:
    def test_parallel_matches_serial(self):
        jobs = [BatchJob("TPCH-Q3", 2), BatchJob("TPCH-Q3", 3)]
        serial = run_batch(jobs, TINY, max_workers=1)
        parallel = run_batch(jobs, TINY, max_workers=2)
        assert parallel.stats.workers == 2
        assert parallel.stats.jobs_failed == 0
        for s, p in zip(serial.results, parallel.results):
            assert (s.found, s.loi, s.privacy, s.edges_used) == (
                p.found, p.loi, p.privacy, p.edges_used
            )
            assert s.variable_targets == p.variable_targets

    def test_pool_capped_by_job_count(self):
        optimizer = BatchOptimizer(TINY, max_workers=8)
        batch = optimizer.run([BatchJob("TPCH-Q3", 2)])
        assert batch.stats.workers == 1  # no pool spawned for one job


class TestSessionSharing:
    """Jobs over one context share a privacy session across thresholds."""

    def test_same_context_jobs_share_session(self):
        # A distinct n_leaves keeps this context cold within the process,
        # so the reuse pattern is deterministic: first job warms, rest hit.
        jobs = [BatchJob("TPCH-Q3", k, n_leaves=37) for k in (2, 3, 4)]
        batch = run_batch(jobs, TINY, max_workers=1)
        assert all(r.ok for r in batch.results)
        assert [r.session_reused for r in batch.results] == [False, True, True]
        assert batch.stats.sessions_reused == 2
        assert batch.stats.row_option_cache_hits > 0

    def test_different_contexts_get_separate_sessions(self):
        jobs = [
            BatchJob("TPCH-Q3", 2, n_leaves=38),
            BatchJob("TPCH-Q10", 2, n_leaves=38),
        ]
        batch = run_batch(jobs, TINY, max_workers=1)
        assert all(r.ok for r in batch.results)
        assert [r.session_reused for r in batch.results] == [False, False]
        assert batch.stats.sessions_reused == 0

    def test_warm_session_results_match_direct_search(self):
        """Cross-threshold sharing must be invisible in the results."""
        thresholds = (2, 3)
        jobs = [BatchJob("TPCH-Q3", k) for k in thresholds]
        batch = run_batch(jobs, TINY, max_workers=1)
        context = prepare_context("TPCH-Q3", TINY)
        for result, threshold in zip(batch.results, thresholds):
            assert result.ok
            direct = find_optimal_abstraction(
                context.example, context.tree, threshold,
                config=OptimizerConfig(
                    max_candidates=TINY.max_candidates,
                    max_seconds=TINY.max_seconds,
                ),
            )
            assert result.found == direct.found
            assert result.loi == direct.loi
            assert result.privacy == direct.privacy
            if direct.found:
                function = result.function(context.tree, context.example)
                assert function.assignment == direct.function.assignment


class TestInlineJobs:
    """User-supplied contexts run through the same workers and caches."""

    QUERY = (
        "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
        " Interests(id, 'Music', s2)"
    )

    def _context(self):
        from repro.examples_data import running_example_db, running_example_tree

        return InlineContext.from_objects(
            running_example_db(), running_example_tree(),
            query=self.QUERY, n_rows=2,
        )

    def test_inline_matches_direct_search(self):
        context = self._context()
        batch = run_batch([InlineJob(context, 2)], TINY, max_workers=1)
        result = batch.results[0]
        assert result.ok and result.found

        built = context.build(TINY)
        direct = find_optimal_abstraction(built.example, built.tree, 2)
        assert result.loi == direct.loi
        assert result.privacy == direct.privacy
        function = result.function(built.tree, built.example)
        assert function.assignment == direct.function.assignment

    def test_inline_jobs_cross_process_boundaries(self):
        """The payload travels with the job, so pools can run it."""
        context = self._context()
        jobs = [InlineJob(context, 2), InlineJob(context, 3)]
        serial = run_batch(jobs, TINY, max_workers=1)
        parallel = run_batch(jobs, TINY, max_workers=2)
        assert parallel.stats.jobs_failed == 0
        for s, p in zip(serial.results, parallel.results):
            assert (s.found, s.loi, s.privacy) == (p.found, p.loi, p.privacy)
            assert s.variable_targets == p.variable_targets

    def test_inline_jobs_share_a_session(self):
        from repro.examples_data import running_example_db, running_example_tree

        # A renamed variable gives the context a process-unique hash, so
        # the warm/cold pattern is deterministic (see TestSessionSharing).
        context = InlineContext.from_objects(
            running_example_db(), running_example_tree(),
            query=self.QUERY.replace("age", "yrs"),
        )
        jobs = [InlineJob(context, k) for k in (2, 3)]
        batch = run_batch(jobs, TINY, max_workers=1)
        assert all(r.ok for r in batch.results)
        assert [r.session_reused for r in batch.results] == [False, True]
        assert batch.stats.sessions_reused == 1


class TestStats:
    def test_aggregation_sums_job_stats(self):
        jobs = [BatchJob("TPCH-Q3", 2), BatchJob("TPCH-Q3", 3)]
        batch = run_batch(jobs, TINY, max_workers=1)
        assert batch.stats.candidates_scanned == sum(
            r.stats.candidates_scanned for r in batch.results
        )
        assert batch.stats.privacy_computations == sum(
            r.stats.privacy_computations for r in batch.results
        )
        assert batch.stats.delta_evaluations == sum(
            r.stats.delta_evaluations for r in batch.results
        )
        assert batch.stats.jobs_found == sum(
            1 for r in batch.results if r.found
        )

    def test_summary_mentions_jobs_and_workers(self):
        batch = run_batch([BatchJob("TPCH-Q3", 2)], TINY, max_workers=1)
        text = batch.stats.summary()
        assert "1 jobs" in text
        assert "1 worker" in text
        assert batch.stats.parallel_speedup > 0
