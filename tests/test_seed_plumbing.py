"""One seed default, plumbed end to end (``repro.seeding``).

Historically the generators defaulted to ``seed=0`` while
``ExperimentSettings`` defaulted to ``seed=1``, so a bare
``generate_tpch()`` and the experiment harness silently produced
*different* databases.  :data:`repro.seeding.DEFAULT_SEED` is now the
single source of truth; these tests pin that every seeded entry point
shares it, and that a settings-level seed actually reaches every
generator the harness calls.
"""

from __future__ import annotations

import dataclasses
import inspect

from repro.abstraction.builders import balanced_tree, tree_over_annotations
from repro.datasets.imdb import generate_imdb
from repro.datasets.tpch import generate_tpch
from repro.datasets.trees import tpch_lineitem_tree
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.io.json_io import database_to_json, tree_to_json
from repro.seeding import DEFAULT_SEED


class TestOneDefaultSeed:
    def test_settings_share_the_module_default(self):
        # The unification kept the settings value (1), so every named
        # workload's content hash under default settings is unchanged.
        assert DEFAULT_SEED == 1
        assert DEFAULT_SETTINGS.seed == DEFAULT_SEED

    def test_every_seeded_signature_defaults_to_it(self):
        from repro.userstudy.simulator import (
            generate_questions,
            run_user_study,
        )

        # run_user_study/generate_questions joined the unification in
        # the repro-lint PR (REP005 flagged their literal seed=0).
        for fn in (generate_tpch, generate_imdb, balanced_tree,
                   tree_over_annotations, tpch_lineitem_tree,
                   generate_questions, run_user_study):
            default = inspect.signature(fn).parameters["seed"].default
            assert default == DEFAULT_SEED, fn.__name__

    def test_userstudy_default_equals_explicit_default_seed(self):
        # A bare generate_questions() must equal the explicit
        # DEFAULT_SEED call (the historical 0-vs-1 trap, userstudy
        # edition).  Question text is deterministic per seed.
        from repro.examples_data import Q_REAL, running_example_db
        from repro.provenance.builder import build_kexample
        from repro.userstudy.simulator import generate_questions

        database = running_example_db()
        example = build_kexample(Q_REAL, database, n_rows=2)
        bare = generate_questions(example, database, n_questions=6)
        pinned = generate_questions(
            example, database, n_questions=6, seed=DEFAULT_SEED
        )
        assert [q.description for q in bare] == [
            q.description for q in pinned
        ]
        assert [q.row_index for q in bare] == [q.row_index for q in pinned]

    def test_bare_generators_match_the_experiment_harness(self):
        from repro.experiments.runner import database_for

        bare = generate_tpch(scale=DEFAULT_SETTINGS.tpch_scale)
        harness = database_for("TPCH-Q3", DEFAULT_SETTINGS)
        assert database_to_json(bare) == database_to_json(harness)

        bare = generate_imdb(n_people=DEFAULT_SETTINGS.imdb_people,
                             n_movies=DEFAULT_SETTINGS.imdb_movies)
        harness = database_for("IMDB-Q1", DEFAULT_SETTINGS)
        assert database_to_json(bare) == database_to_json(harness)


class TestSettingsSeedReachesEveryGenerator:
    def test_databases_follow_the_settings_seed(self):
        from repro.experiments.runner import database_for

        for name in ("TPCH-Q3", "IMDB-Q1"):
            for seed in (3, 4):
                settings = dataclasses.replace(DEFAULT_SETTINGS, seed=seed)
                explicit = (
                    generate_tpch(scale=settings.tpch_scale, seed=seed)
                    if name.startswith("TPCH")
                    else generate_imdb(n_people=settings.imdb_people,
                                       n_movies=settings.imdb_movies,
                                       seed=seed)
                )
                assert database_to_json(database_for(name, settings)) == \
                    database_to_json(explicit), (name, seed)

    def test_tree_follows_the_settings_seed(self):
        from repro.experiments.runner import prepare_context

        settings = dataclasses.replace(
            DEFAULT_SETTINGS, seed=3, tree_leaves=24, tree_height=3,
            tpch_scale=0.01,
        )
        context = prepare_context("TPCH-Q3", settings)
        explicit = tree_over_annotations(
            [t.annotation for t in context.database.tuples()],
            n_leaves=24, height=3, seed=3,
            must_include=sorted(context.example.variables()),
        )
        assert tree_to_json(context.tree) == tree_to_json(explicit)

    def test_different_seed_different_data(self):
        a = generate_tpch(scale=0.01, seed=3)
        b = generate_tpch(scale=0.01, seed=4)
        assert database_to_json(a) != database_to_json(b)
