"""Cross-engine equivalence: every engine is a bit-identical drop-in.

The pluggable engine layer (``repro.engine``) is an *execution* detail:
the naive interpreter and the SQL engines must produce identical output
rows, identical provenance polynomials, identical derivation streams
(order included — K-example construction consumes derivations in order),
identical K-examples, identical content hashes, and byte-identical job
payloads.  These tests pin all of that on the smoke-preset workload
families plus a seeded sweep of random conjunctive queries.
"""

import random

import pytest

from repro.batch.jobs import InlineContext, InlineJob
from repro.batch.optimizer import run_job
from repro.core.optimizer import OptimizerConfig
from repro.datasets.imdb import generate_imdb
from repro.datasets.queries import get_query
from repro.datasets.tpch import generate_tpch
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.engine import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    NaiveEngine,
    SqlEngine,
    available_engines,
    duckdb_available,
    get_engine,
    resolve_engine,
)
from repro.errors import EvaluationError
from repro.experiments.settings import FAST_SETTINGS
from repro.provenance.builder import build_kexample
from repro.query.parser import parse_cq
from repro.store.hashing import job_content_hash

#: The query families the smoke preset exercises, plus the heaviest
#: TPC-H join in the workload catalog.
FAMILIES = ("TPCH-Q3", "TPCH-Q10", "IMDB-Q1")

#: Engines every environment has; duckdb joins via the skipif variants.
ALWAYS_ON = ("naive", "sqlite")

needs_duckdb = pytest.mark.skipif(
    not duckdb_available(), reason="duckdb is not importable here"
)


@pytest.fixture(scope="module")
def databases():
    tpch = generate_tpch(scale=0.02, seed=7)
    imdb = generate_imdb(n_people=60, n_movies=40, seed=7)
    return {"TPCH-Q3": tpch, "TPCH-Q10": tpch, "IMDB-Q1": imdb}


def _engine_pair(name):
    return get_engine("naive"), get_engine(name)


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("name", [n for n in ALWAYS_ON if n != "naive"])
    def test_results_identical_including_order(self, databases, family, name):
        query, db = get_query(family), databases[family]
        naive, other = _engine_pair(name)
        expected = naive.evaluate(query, db)
        actual = other.evaluate(query, db)
        assert list(expected.items()) == list(actual.items())
        assert len(expected) > 0  # a vacuous pass proves nothing

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("name", [n for n in ALWAYS_ON if n != "naive"])
    def test_derivation_streams_identical(self, databases, family, name):
        query, db = get_query(family), databases[family]
        naive, other = _engine_pair(name)
        expected = list(naive.derivations(query, db))
        actual = list(other.derivations(query, db))
        assert len(expected) == len(actual)
        for a, b in zip(expected, actual):
            assert a.output() == b.output()
            assert a.monomial() == b.monomial()
            assert a.images == b.images
            assert a.bindings == b.bindings

    @pytest.mark.parametrize("family", FAMILIES)
    def test_kexamples_identical(self, databases, family):
        query, db = get_query(family), databases[family]
        built = [
            build_kexample(query, db, n_rows=2, engine=name)
            for name in ALWAYS_ON
        ]
        assert all(example == built[0] for example in built[1:])
        assert built[0].verify_against(query, db, engine="sqlite")

    @needs_duckdb
    @pytest.mark.parametrize("family", FAMILIES)
    def test_duckdb_matches_naive(self, databases, family):
        query, db = get_query(family), databases[family]
        naive, duck = _engine_pair("duckdb")
        assert list(naive.evaluate(query, db).items()) == list(
            duck.evaluate(query, db).items()
        )


class TestRandomCQProperty:
    """Seeded random CQs: SQL compilation agrees with the naive search."""

    @staticmethod
    def _random_db(rng):
        db = KDatabase(Schema.from_dict({
            "R": ["a", "b"], "S": ["b", "c"], "T": ["c", "d", "e"],
        }))
        pool = list(range(4)) + ["x", "y"]
        for rel, arity in (("R", 2), ("S", 2), ("T", 3)):
            for i in range(rng.randint(3, 8)):
                values = tuple(rng.choice(pool) for _ in range(arity))
                db.insert(rel, values, f"{rel.lower()}{i}")
        return db

    @staticmethod
    def _random_cq(rng):
        arities = {"R": 2, "S": 2, "T": 3}
        variables = ["v0", "v1", "v2", "v3"]
        atoms = []
        used = set()
        for _ in range(rng.randint(1, 3)):
            rel = rng.choice(list(arities))
            terms = []
            for _ in range(arities[rel]):
                if rng.random() < 0.2:
                    terms.append(str(rng.randint(0, 3)))
                else:
                    var = rng.choice(variables)
                    used.add(var)
                    terms.append(var)
            atoms.append(f"{rel}({', '.join(terms)})")
        head = sorted(used)[: max(1, len(used))] or []
        head_text = ", ".join(head) if head else "'c'"
        return parse_cq(f"Q({head_text}) :- {', '.join(atoms)}")

    def test_thirty_seeded_queries_agree(self):
        rng = random.Random(20260808)
        naive, sql = get_engine("naive"), get_engine("sqlite")
        non_empty = 0
        for _ in range(30):
            db = self._random_db(rng)
            query = self._random_cq(rng)
            expected = naive.evaluate(query, db)
            actual = sql.evaluate(query, db)
            assert list(expected.items()) == list(actual.items())
            non_empty += bool(expected)
        assert non_empty >= 5  # the sweep must exercise real joins


class TestHashAndPayloadParity:
    """The engine never leaks into identity: hashes and payloads match."""

    QUERY = "Q(pn) :- person(p, pn, by, co), casts(p, m), movie(m, t, 1995)"

    @pytest.fixture(scope="class")
    def job_parts(self):
        db = generate_imdb(n_people=60, n_movies=40, seed=7)
        query = self.QUERY
        from repro.abstraction.builders import tree_over_annotations

        example = build_kexample(parse_cq(query), db, n_rows=2)
        tree = tree_over_annotations(
            [t.annotation for t in db.tuples()], n_leaves=16, height=3,
            seed=7, must_include=sorted(example.variables()),
        )
        return db, tree, query

    def _job(self, parts, engine):
        db, tree, query = parts
        context = InlineContext.from_objects(
            db, tree, query=query, n_rows=2, engine=engine
        )
        config = OptimizerConfig(
            max_candidates=200, max_seconds=None, engine=engine
        )
        return InlineJob(context=context, threshold=2, config=config)

    def test_content_hash_is_engine_independent(self, job_parts):
        hashes = {
            job_content_hash(self._job(job_parts, name), FAST_SETTINGS)
            for name in ALWAYS_ON
        }
        assert len(hashes) == 1

    def test_job_payloads_bit_identical(self, job_parts):
        payloads = []
        for name in ALWAYS_ON:
            result = run_job(self._job(job_parts, name), FAST_SETTINGS)
            assert result.error is None
            payload = result.to_payload()
            # Timing is the one legitimately volatile dimension.
            payload.pop("seconds", None)
            payload.pop("session_reused", None)
            if isinstance(payload.get("stats"), dict):
                payload["stats"].pop("elapsed_seconds", None)
            payloads.append(payload)
        assert all(p == payloads[0] for p in payloads[1:])


class TestEngineRegistry:
    def test_engine_names_and_default(self):
        assert DEFAULT_ENGINE == "naive"
        assert set(ENGINE_NAMES) == {"naive", "sqlite", "duckdb"}
        availability = available_engines()
        assert availability["naive"] and availability["sqlite"]

    def test_instances_are_cached_and_typed(self):
        assert get_engine("naive") is get_engine("naive")
        assert isinstance(get_engine("naive"), NaiveEngine)
        assert isinstance(get_engine("sqlite"), SqlEngine)

    def test_unknown_engine_is_a_clean_error(self):
        with pytest.raises(EvaluationError, match="unknown engine 'bogus'"):
            get_engine("bogus")

    def test_resolve_engine_passthrough_and_default(self):
        engine = NaiveEngine()
        assert resolve_engine(engine) is engine
        assert resolve_engine(None).name == DEFAULT_ENGINE
        assert resolve_engine("sqlite").name == "sqlite"

    @pytest.mark.skipif(
        duckdb_available(), reason="duckdb is importable here"
    )
    def test_missing_duckdb_is_a_clean_error(self):
        with pytest.raises(EvaluationError, match="sqlite"):
            get_engine("duckdb")


class TestEngineCli:
    def test_engines_command_lists_all(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ENGINE_NAMES:
            assert name in out
        assert "(default)" in out

    def test_unknown_engine_flag_exits_2(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["scenarios", "run", "--engine", "bogus"])
        assert exc.value.code == 2
        assert "--engine" in capsys.readouterr().err

    @pytest.mark.skipif(
        duckdb_available(), reason="duckdb is importable here"
    )
    def test_unavailable_duckdb_exits_2_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io.json_io import database_to_json, dumps

        db_path = tmp_path / "db.json"
        db = KDatabase(Schema.from_dict({"R": ["a"]}))
        db.insert("R", (1,), "r1")
        db_path.write_text(dumps(database_to_json(db)))
        code = main([
            "evaluate", "--database", str(db_path),
            "--query", "Q(x) :- R(x)", "--engine", "duckdb",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "duckdb" in err
