"""The scenario-matrix harness: matrix, materialization, runner, diff.

Covers the reproducibility contract end to end: the matrix is a pure
function of its axes, materialization is a pure function of
(matrix, seed) — bit-identical content hashes even across interpreter
processes — and two runs of the same (matrix, seed) produce snapshots
that are identical once the volatile trajectory fields are stripped,
with the second run served from the persistent result cache.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ScenarioError
from repro.scenarios import (
    PRESETS,
    SMOKE_MATRIX,
    ScenarioMatrix,
    diff,
    load,
    materialize,
    normalize,
    result_hash,
    run_matrix,
    save,
)
from repro.store import job_content_hash

#: A 2-cell matrix small enough to *search* in a unit test.
TINY = ScenarioMatrix(
    queries=("TPCH-Q3",), scales=("xs",), tree_leaves=(16,),
    tree_heights=(3,), rows=(2,), thresholds=(2,), max_candidates=120,
)
#: A 4-cell matrix for shape/hashing tests (never searched).
SHAPE = ScenarioMatrix(
    queries=("TPCH-Q3", "IMDB-Q1"), scales=("xs",), tree_leaves=(16,),
    tree_heights=(3,), rows=(2,), thresholds=(2, 3), max_candidates=120,
)


class TestScenarioMatrix:
    def test_smoke_preset_is_the_twelve_cell_acceptance_matrix(self):
        cells = SMOKE_MATRIX.cells()
        assert len(cells) == 12
        assert PRESETS["smoke"] is SMOKE_MATRIX
        # Deterministic order: the axis cross product, queries outermost.
        assert cells[0].cell_id == "TPCH-Q3|xs|L24|H3|R2|K2"
        assert cells[-1].cell_id == "IMDB-Q1|xs|L48|H3|R2|K4"

    def test_cell_ids_are_unique(self):
        for preset in PRESETS.values():
            ids = [c.cell_id for c in preset.cells()]
            assert len(ids) == len(set(ids))

    def test_dict_round_trip(self):
        assert ScenarioMatrix.from_dict(SHAPE.to_dict()) == SHAPE

    @pytest.mark.parametrize("data, fragment", [
        ({"colors": ["red"]}, "unknown scenario-matrix key"),
        ({"queries": []}, "non-empty list"),
        ({"queries": "TPCH-Q3"}, "non-empty list"),
        ({"tree_leaves": ["wide"]}, "non-integer"),
        ({"queries": ["NOPE-Q9"]}, "unknown workload query"),
        ({"scales": ["galactic"]}, "unknown scale"),
        ({"thresholds": [0]}, "must be >= 1"),
        ({"max_candidates": 0}, "must be >= 1"),
        ("not a dict", "must be a JSON object"),
    ])
    def test_from_dict_rejects_bad_axes(self, data, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            ScenarioMatrix.from_dict(data)


class TestMaterialize:
    def test_same_seed_same_content_hashes(self):
        from repro.experiments.settings import DEFAULT_SETTINGS

        first = materialize(SHAPE, seed=7)
        second = materialize(SHAPE, seed=7)
        assert [
            job.context.content_hash() for _, job in first
        ] == [job.context.content_hash() for _, job in second]
        assert [
            job_content_hash(job, DEFAULT_SETTINGS) for _, job in first
        ] == [job_content_hash(job, DEFAULT_SETTINGS) for _, job in second]

    def test_different_seed_different_hashes(self):
        first = materialize(SHAPE, seed=7)
        second = materialize(SHAPE, seed=8)
        assert first[0][1].context.content_hash() != \
            second[0][1].context.content_hash()

    def test_cells_differing_only_in_threshold_share_a_context(self):
        # The per-coordinate caches make repeated coordinates free: the
        # K2 and K3 cells of one (query, scale, shape) reuse one
        # InlineContext object, not just an equal one.
        jobs = {cell.cell_id: job for cell, job in materialize(SHAPE, 7)}
        assert jobs["TPCH-Q3|xs|L16|H3|R2|K2"].context is \
            jobs["TPCH-Q3|xs|L16|H3|R2|K3"].context

    def test_content_hashes_are_stable_across_processes(self, tmp_path):
        """Satellite property: same seed => bit-identical cell hashes
        in a completely fresh interpreter."""
        script = (
            "from repro.scenarios import ScenarioMatrix, materialize\n"
            f"matrix = ScenarioMatrix.from_dict({SHAPE.to_dict()!r})\n"
            "for cell, job in materialize(matrix, seed=7):\n"
            "    print(cell.cell_id, job.context.content_hash())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={**os.environ, "PYTHONPATH": str(
                Path(__file__).resolve().parent.parent / "src"
            )},
        )
        here = [
            f"{cell.cell_id} {job.context.content_hash()}"
            for cell, job in materialize(SHAPE, seed=7)
        ]
        assert out.stdout.strip().splitlines() == here


@pytest.fixture(scope="module")
def two_runs(tmp_path_factory):
    """The TINY matrix run twice against one persistent store."""
    root = tmp_path_factory.mktemp("scenarios")
    store = str(root / "store.sqlite")
    first = run_matrix(TINY, seed=7, workers=1, store_path=store)
    second = run_matrix(TINY, seed=7, workers=1, store_path=store)
    return first, second


class TestRunMatrix:
    def test_snapshot_shape(self, two_runs):
        snapshot, _ = two_runs
        assert snapshot["seed"] == 7
        assert snapshot["matrix"] == TINY.to_dict()
        assert len(snapshot["cells"]) == 1
        cell = snapshot["cells"][0]
        assert cell["cell"] == "TPCH-Q3|xs|L16|H3|R2|K2"
        assert cell["found"] is True
        assert cell["result_hash"] == result_hash(cell)
        assert len(cell["content_hash"]) == 64
        assert snapshot["summary"]["cells"] == 1

    def test_second_run_is_served_from_the_result_cache(self, two_runs):
        first, second = two_runs
        assert first["summary"]["cache_hits"] == 0
        assert second["summary"]["cache_hits"] == len(second["cells"])
        # The cached payload restores the original run's timing, so even
        # `seconds` agrees; the full identity check is normalize below.
        assert second["cells"][0]["seconds"] == first["cells"][0]["seconds"]

    def test_runs_are_identical_modulo_volatile_fields(self, two_runs):
        first, second = two_runs
        assert normalize(first) == normalize(second)

    def test_rejects_invalid_matrix_before_running(self):
        with pytest.raises(ScenarioError, match="unknown workload query"):
            run_matrix(ScenarioMatrix(queries=("NOPE-Q9",)), seed=7)


class TestSnapshotDiff:
    def test_identical_snapshots_have_no_findings(self, two_runs):
        first, second = two_runs
        report = diff(first, second)
        assert not report.has_drift
        assert report.compared == len(first["cells"])
        assert report.changed_inputs == []

    def test_result_hash_drift_is_detected(self, two_runs):
        first, _ = two_runs
        drifted = json.loads(json.dumps(first))
        drifted["cells"][0]["result_hash"] = "0" * 64
        report = diff(first, drifted)
        assert report.has_drift
        assert report.drifted[0]["cell"] == first["cells"][0]["cell"]

    def test_changed_inputs_are_not_drift(self, two_runs):
        first, _ = two_runs
        changed = json.loads(json.dumps(first))
        changed["cells"][0]["content_hash"] = "f" * 64
        changed["cells"][0]["result_hash"] = "0" * 64
        report = diff(first, changed)
        assert not report.has_drift
        assert report.changed_inputs == [first["cells"][0]["cell"]]

    def test_added_and_removed_cells_are_reported(self, two_runs):
        first, _ = two_runs
        pruned = json.loads(json.dumps(first))
        pruned["cells"] = []
        assert diff(first, pruned).only_old == \
            [c["cell"] for c in first["cells"]]
        assert diff(pruned, first).only_new == \
            [c["cell"] for c in first["cells"]]

    def test_slowdowns_beyond_tolerance_are_flagged(self, two_runs):
        first, _ = two_runs
        slower = json.loads(json.dumps(first))
        slower["cells"][0]["seconds"] = \
            max(first["cells"][0]["seconds"], 0.01) * 10
        report = diff(first, slower, tolerance=1.5)
        assert [r["cell"] for r in report.regressions] == \
            [first["cells"][0]["cell"]]
        assert not report.has_drift  # perf is trajectory, not identity


class TestScenariosCli:
    def test_run_then_diff_round_trip(self, tmp_path, capsys):
        matrix_file = tmp_path / "matrix.json"
        matrix_file.write_text(json.dumps(TINY.to_dict()))
        store = str(tmp_path / "store.sqlite")
        snaps = [str(tmp_path / f"snap{i}.json") for i in (1, 2)]
        for snap in snaps:
            assert main([
                "scenarios", "run", "--matrix", str(matrix_file),
                "--seed", "7", "--store", store, "--output", snap,
            ]) == 0
        out = capsys.readouterr().out
        assert "(cached)" in out  # the second run hit the store
        assert main(["scenarios", "diff", snaps[0], snaps[1]]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_diff_exits_nonzero_on_injected_drift(self, tmp_path, capsys,
                                                  two_runs):
        first, _ = two_runs
        old, new = str(tmp_path / "old.json"), str(tmp_path / "new.json")
        save(old, first)
        drifted = json.loads(json.dumps(first))
        drifted["cells"][0]["result_hash"] = "0" * 64
        save(new, drifted)
        assert main(["scenarios", "diff", old, new]) == 1
        captured = capsys.readouterr()
        assert "DRIFT" in captured.out
        assert "FAIL" in captured.err

    def test_diff_max_regression_gates_timing(self, tmp_path, capsys,
                                              two_runs):
        first, _ = two_runs
        old, new = str(tmp_path / "old.json"), str(tmp_path / "new.json")
        save(old, first)
        slower = json.loads(json.dumps(first))
        slower["cells"][0]["seconds"] = \
            max(first["cells"][0]["seconds"], 0.01) * 10
        save(new, slower)
        # Report-only by default; fatal once the caller sets the gate.
        assert main(["scenarios", "diff", old, new]) == 0
        capsys.readouterr()
        assert main([
            "scenarios", "diff", old, new, "--max-regression", "2.0",
        ]) == 1
        assert "slower than" in capsys.readouterr().err

    def test_list_prints_cells_without_running(self, capsys):
        assert main(["scenarios", "list", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "TPCH-Q3|xs|L24|H3|R2|K2" in out
        assert "(12 cells" in out

    def test_malformed_snapshot_is_a_cli_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"schema": "repro-scenarios-v1",
                                    "cells": []}))
        assert main(["scenarios", "diff", str(good), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_schema_is_a_cli_error(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"schema": "repro-scenarios-v0",
                                   "cells": []}))
        assert main(["scenarios", "diff", str(old), str(old)]) == 2
        assert "repro-scenarios-v0" in capsys.readouterr().err

    def test_bad_matrix_key_is_a_cli_error(self, tmp_path, capsys):
        matrix_file = tmp_path / "matrix.json"
        matrix_file.write_text(json.dumps({"colors": ["red"]}))
        assert main([
            "scenarios", "list", "--matrix", str(matrix_file),
        ]) == 2
        assert "unknown scenario-matrix key" in capsys.readouterr().err


def test_load_rejects_snapshotless_json(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ScenarioError, match="no 'cells' key"):
        load(str(path))
