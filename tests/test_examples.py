"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"
