"""Tests for the paper's future-work extensions: inferred trees and Lin(X).

Section 4 sketches (semi-)automatic abstraction-tree construction from
attribute values; the Lin(X) discussion proposes completing partial lineage
before running the standard pipeline.  Both are implemented here and
tested against the running example.
"""

import pytest

from repro.abstraction.builders import tree_by_attributes
from repro.core.lineage import complete_lineage, kexamples_from_lineage
from repro.core.privacy import PrivacyComputer
from repro.errors import AbstractionError
from repro.query.containment import is_equivalent
from repro.query.join_graph import is_connected
from repro.semirings.polynomial import Monomial
from repro.examples_data import Q_REAL


class TestTreeByAttributes:
    def test_groups_by_attribute_value(self, paper_db):
        tree = tree_by_attributes(paper_db, {"Hobbies": ["hobby"]})
        dance_node = "rel:Hobbies/hobby=Dance"
        assert dance_node in tree.labels()
        assert set(tree.leaves_under(dance_node)) == {"h1", "h2", "h3"}

    def test_nested_attributes(self, paper_db):
        tree = tree_by_attributes(
            paper_db, {"Hobbies": ["hobby", "source"]}
        )
        node = "rel:Hobbies/hobby=Dance/source=Facebook"
        assert node in tree.labels()
        assert set(tree.leaves_under(node)) == {"h1", "h3"}

    def test_unlisted_relations_are_flat(self, paper_db):
        tree = tree_by_attributes(paper_db, {"Hobbies": ["hobby"]})
        assert set(tree.leaves_under("rel:Person")) == {"p1", "p2"}

    def test_every_annotation_is_a_leaf(self, paper_db):
        tree = tree_by_attributes(paper_db, {"Interests": ["source"]})
        assert set(tree.leaves()) == set(paper_db.annotations())

    def test_compatible_with_database(self, paper_db):
        tree = tree_by_attributes(paper_db, {"Hobbies": ["hobby"]})
        assert tree.is_compatible_with_annotations(paper_db.annotations())

    def test_usable_for_optimization(self, paper_db, paper_example):
        """An inferred tree drives the optimizer end to end."""
        from repro.core.optimizer import find_optimal_abstraction

        tree = tree_by_attributes(
            paper_db,
            {"Hobbies": ["hobby"], "Interests": ["interest"]},
        )
        result = find_optimal_abstraction(paper_example, tree, threshold=2)
        assert result.found
        assert result.privacy >= 2

    def test_requires_kdatabase(self):
        with pytest.raises(AbstractionError):
            tree_by_attributes({"not": "a database"}, {})


class TestLineageCompletion:
    def test_full_lineage_is_its_own_completion(self, paper_db):
        completions = complete_lineage(
            (1,), ["p1", "h1", "i1"], paper_db, max_extra_tuples=0
        )
        assert completions == [Monomial.of("p1", "h1", "i1")]

    def test_partial_lineage_completed(self, paper_db):
        """Publishing only {p1, h1} still recovers monomials covering 1."""
        completions = complete_lineage((1,), ["p1", "h1"], paper_db)
        assert Monomial.of("p1", "h1") in completions  # already connected+covering

    def test_output_coverage_required(self, paper_db):
        # Output value 999 appears nowhere: no completion exists.
        completions = complete_lineage((999,), ["p1"], paper_db, max_extra_tuples=1)
        assert completions == []

    def test_disconnected_lineage_gets_connected(self, paper_db):
        # h1 (person 1) and h3 (person 4) share only 'Dance'... they do
        # share 'Dance', so they are already connected; p1+i6 share nothing.
        completions = complete_lineage((1,), ["p1", "i6"], paper_db)
        for monomial in completions:
            assert "p1" in monomial.variables()
            assert "i6" in monomial.variables()
            assert monomial.degree() >= 3  # needs a bridge tuple

    def test_completions_are_minimal(self, paper_db):
        completions = complete_lineage((1,), ["p1"], paper_db)
        for a in completions:
            for b in completions:
                if a is not b:
                    assert not a.divides(b)

    def test_kexamples_from_lineage_drive_privacy(self, paper_db, paper_tree):
        """The Lin(X) pipeline: complete, then attack with Algorithm 1."""
        rows = [((1,), ["p1", "h1", "i1"]), ((2,), ["p2", "h2", "i2"])]
        examples = kexamples_from_lineage(rows, paper_db, max_extra_tuples=0)
        assert len(examples) == 1
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        from repro.abstraction.function import AbstractionFunction

        identity = AbstractionFunction.identity(
            paper_tree, examples[0]
        ).apply(examples[0])
        cims = computer.cim_queries(identity)
        assert any(is_equivalent(q, Q_REAL) for q in cims)

    def test_unresolvable_lineage_row(self, paper_db):
        rows = [((999,), ["p1"])]
        assert kexamples_from_lineage(rows, paper_db, max_extra_tuples=0) == []

    def test_example_cap(self, paper_db):
        rows = [((1,), ["p1"])]
        examples = kexamples_from_lineage(
            rows, paper_db, max_extra_tuples=2, max_examples=3
        )
        assert 0 < len(examples) <= 3
        for example in examples:
            assert "p1" in example.rows[0].variables()
