"""End-to-end integration tests across modules."""

import math

import pytest

from repro.abstraction.builders import tree_over_annotations
from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.function import AbstractionFunction
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer
from repro.datasets.queries import get_query
from repro.datasets.trees import imdb_ontology_tree
from repro.provenance.builder import build_kexample
from repro.query.containment import is_equivalent
from repro.query.evaluator import evaluate_cq
from repro.examples_data import Q_REAL


class TestPaperPipeline:
    """The full Example 1.1 -> 3.15 pipeline."""

    def test_end_to_end(self, paper_db, paper_tree):
        example = build_kexample(Q_REAL, paper_db, n_rows=2)
        result = find_optimal_abstraction(example, paper_tree, threshold=2)
        assert result.found and result.abstracted is not None

        # The published abstraction is Ex_abs1 of Figure 5.
        occurrences = [row.occurrences for row in result.abstracted.rows]
        assert occurrences == [
            ("Facebook", "i1", "p1"),
            ("LinkedIn", "i2", "p2"),
        ]

        # Verify privacy independently of the optimizer.
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        cims = computer.cim_queries(result.abstracted)
        assert len(cims) == result.privacy == 2
        assert any(is_equivalent(q, Q_REAL) for q in cims)

    def test_every_cim_query_is_consistent_with_a_concretization(
        self, paper_db, paper_tree
    ):
        """Definition 3.9 sanity: each CIM query evaluates, on some
        concretization's provenance tuples, to a superset of the outputs."""
        example = build_kexample(Q_REAL, paper_db, n_rows=2)
        function = AbstractionFunction.uniform(
            paper_tree, example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        abstracted = function.apply(example)
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        engine = ConcretizationEngine(paper_tree, paper_db.registry)

        for query in computer.cim_queries(abstracted):
            witnessed = False
            for concretization in engine.concretizations(abstracted):
                # Build the restricted input database I of the concretization.
                from repro.db.database import KDatabase

                restricted = KDatabase(paper_db.schema)
                seen = set()
                for row in concretization.rows:
                    for ann in row.occurrences:
                        if ann not in seen:
                            seen.add(ann)
                            tup = paper_db.resolve(ann)
                            restricted.insert(tup.relation, tup.values, ann)
                outputs = set(evaluate_cq(query, restricted))
                wanted = {row.output for row in concretization.rows}
                if wanted <= outputs:
                    witnessed = True
                    break
            assert witnessed, f"CIM query not witnessed: {query}"


class TestWorkloadPipeline:
    @pytest.mark.parametrize("name", ["TPCH-Q3", "IMDB-Q1"])
    def test_workload_end_to_end(self, name, tpch_db, imdb_db):
        db = tpch_db if name.startswith("TPCH") else imdb_db
        query = get_query(name)
        example = build_kexample(query, db, n_rows=2)
        tree = tree_over_annotations(
            [t.annotation for t in db.tuples()],
            n_leaves=60, height=4, seed=0,
            must_include=sorted(example.variables()),
        )
        result = find_optimal_abstraction(
            example, tree, threshold=2,
            config=OptimizerConfig(max_candidates=2_000),
        )
        assert result.found
        assert result.privacy >= 2
        assert result.loi > 0  # raw workload examples are identifiable

    def test_imdb_ontology_pipeline(self, imdb_db):
        query = get_query("IMDB-Q6")
        example = build_kexample(query, imdb_db, n_rows=2)
        tree = imdb_ontology_tree(imdb_db)
        result = find_optimal_abstraction(
            example, tree, threshold=2,
            config=OptimizerConfig(max_candidates=2_000),
        )
        assert result.found
        assert result.privacy >= 2


class TestMonotonicity:
    def test_higher_threshold_never_cheaper(self, paper_db, paper_tree):
        """More privacy can only cost more information (Figure 11's law)."""
        example = build_kexample(Q_REAL, paper_db, n_rows=2)
        lois = []
        for threshold in (1, 2, 3):
            result = find_optimal_abstraction(example, paper_tree, threshold)
            if result.found:
                lois.append(result.loi)
        assert lois == sorted(lois)
