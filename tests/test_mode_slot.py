"""The reserved dual ``mode`` slot: rejection today, hash room tomorrow.

The content-hash schema reserves a ``mode`` field for the paper's dual
problem ("max privacy under an LOI cap").  Until a dual job type exists,
``primal`` is the only legal value — an unknown mode must fail loudly at
spec validation *and* at hash time (:data:`repro.store.hashing.KNOWN_MODES`),
because a dual job silently hashed by primal-only code would be filed
(and cached) as a primal result.  The pinned-hash tests at the bottom
prove the reservation is free: primal hashes are bit-identical to the
pre-``KNOWN_MODES`` code.
"""

from __future__ import annotations

import json

import pytest

from repro.batch.jobs import job_from_spec
from repro.cli import main
from repro.core.optimizer import OptimizerConfig
from repro.errors import JobSpecError
from repro.experiments.settings import ExperimentSettings
from repro.store import job_content_hash, spec_content_hash
from repro.store.hashing import KNOWN_MODES

NAMED_SPEC = {"query_name": "TPCH-Q3", "threshold": 2, "n_leaves": 32,
              "tag": "pin-named"}
INLINE_SPEC = {
    "database": {
        "schema": {"Person": ["id", "name"]},
        "relations": {"Person": [
            {"values": [1, "Ann"], "annotation": "p1"},
            {"values": [2, "Bob"], "annotation": "p2"},
        ]},
    },
    "tree": {"label": "root", "children": [
        {"label": "a", "children": [{"label": "p1"}, {"label": "p2"}]},
    ]},
    "query": "Q(id) :- Person(id, n)",
    "threshold": 2,
    "n_rows": 2,
    "max_candidates": 100,
}

#: Every knob pinned so drift in *defaults* can never move these tests.
PINNED = ExperimentSettings(
    tree_leaves=64, tree_height=4, kexample_rows=2, tpch_scale=0.01,
    imdb_people=60, imdb_movies=40, seed=7, max_candidates=500,
    max_seconds=None,
)


def _base_config() -> OptimizerConfig:
    return OptimizerConfig(
        max_candidates=PINNED.max_candidates,
        max_seconds=PINNED.max_seconds,
    )


class TestSpecValidation:
    def test_primal_is_the_only_known_mode_today(self):
        assert KNOWN_MODES == ("primal",)

    @pytest.mark.parametrize("spec", [NAMED_SPEC, INLINE_SPEC])
    def test_explicit_primal_mode_is_accepted_and_hash_neutral(self, spec):
        with_mode = {**spec, "mode": "primal"}
        job_from_spec(with_mode, base_config=_base_config())
        assert spec_content_hash(with_mode, PINNED, default_rows=2) == \
            spec_content_hash(spec, PINNED, default_rows=2)

    @pytest.mark.parametrize("spec", [NAMED_SPEC, INLINE_SPEC])
    def test_unknown_mode_is_rejected_naming_the_field(self, spec):
        with pytest.raises(JobSpecError, match="'mode'") as excinfo:
            job_from_spec({**spec, "mode": "dual"},
                          base_config=_base_config())
        assert "primal" in str(excinfo.value)  # the error lists the menu

    def test_cli_rejects_unknown_mode_with_exit_2(self, tmp_path, capsys):
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(json.dumps([{**NAMED_SPEC, "mode": "dual"}]))
        assert main(["batch-optimize", "--jobs", str(jobs_file)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "'mode'" in err and "dual" in err


class TestHashTimeGuard:
    def test_job_object_with_unknown_mode_cannot_be_hashed(self):
        job = job_from_spec(INLINE_SPEC, base_config=_base_config())

        class DualJob:
            """A future job type this code version does not understand."""
            context = job.context
            threshold = job.threshold
            config = job.config
            mode = "dual"

        with pytest.raises(JobSpecError, match="unknown search mode"):
            job_content_hash(DualJob(), PINNED)


class TestPinnedHashes:
    """Bit-for-bit hash stability across the mode-slot change.

    These digests were captured from the seed revision (before
    ``KNOWN_MODES`` existed).  If one moves, every persistent job store
    in the wild silently loses its cached results — bump
    :data:`repro.store.hashing.HASH_VERSION` instead of editing these.
    """

    def test_named_job_hash_is_stable(self):
        job = job_from_spec(NAMED_SPEC, default_rows=PINNED.kexample_rows,
                            base_config=_base_config())
        assert job_content_hash(job, PINNED) == (
            "c369d9232d6a8a319bbcd25af58919ac"
            "2f484a1c95ae3777156b0b1df32d4557"
        )

    def test_inline_job_hash_is_stable(self):
        job = job_from_spec(INLINE_SPEC, base_config=_base_config())
        assert job_content_hash(job, PINNED) == (
            "552a1522a0646c9e3d6a5b62804b1f76"
            "54a00a243bc46c7a1a49081329f15433"
        )

    def test_inline_context_hash_is_stable(self):
        job = job_from_spec(INLINE_SPEC, base_config=_base_config())
        assert job.context.content_hash() == (
            "94830042d7cd27901e1a08296d749775"
            "3d2f825153f863f4690d0f517d6e3cb5"
        )
