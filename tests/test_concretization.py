"""Tests for concretization counting, enumeration, and connectivity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.function import AbstractionFunction
from repro.core.loi import loss_of_information


@pytest.fixture
def engine(paper_tree, paper_db):
    return ConcretizationEngine(paper_tree, paper_db.registry)


def _abstract(tree, example, targets):
    return AbstractionFunction.uniform(tree, example, targets).apply(example)


class TestCounting:
    def test_identity_has_one_concretization(self, engine, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {})
        assert engine.count(abstracted) == 1

    def test_paper_a1_count_is_15(self, engine, paper_tree, paper_example):
        """Example 3.15: |C(Ex_abs1)| = 5 * 3 = 15."""
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        assert engine.count(abstracted) == 15

    def test_paper_a2_count_is_20(self, engine, paper_tree, paper_example):
        """Example 3.15: |C(Ex_abs2)| = 5 * 4 = 20."""
        abstracted = _abstract(
            paper_tree, paper_example, {"i1": "WikiLeaks", "i2": "Facebook"}
        )
        assert engine.count(abstracted) == 20

    def test_paper_a3_count_is_4(self, engine, paper_tree, paper_example):
        """Figure 6: C(Ex_abs3) has 4 concretizations."""
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        assert engine.count(abstracted) == 4

    def test_count_matches_enumeration(self, engine, paper_tree, paper_example):
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        enumerated = list(engine.concretizations(abstracted))
        assert len(enumerated) == engine.count(abstracted)

    def test_root_abstraction_upper_bound(self, engine, paper_tree, paper_example):
        """Proposition 3.5(2): |C| <= |L_T|^n, tight at the root."""
        targets = {v: "*" for v in ("h1", "h2", "i1", "i2")}
        abstracted = _abstract(paper_tree, paper_example, targets)
        assert engine.count(abstracted) == len(paper_tree.leaves()) ** 4


class TestEnumeration:
    def test_paper_figure6_set(self, engine, paper_tree, paper_example):
        """The concretization set of Ex_abs3 is exactly Figure 6."""
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        first_row_monomials = {
            tuple(ex.rows[0].occurrences)
            for ex in engine.concretizations(abstracted)
        }
        assert first_row_monomials == {
            ("h1", "h6", "p1"),
            ("h1", "i1", "p1"),
            ("h1", "i4", "p1"),
            ("h1", "i6", "p1"),
        }

    def test_original_example_is_a_concretization(
        self, engine, paper_tree, paper_example
    ):
        """Ex in C(A_T(Ex)) always (Definition 3.3)."""
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        assert paper_example in list(engine.concretizations(abstracted))

    def test_connected_only_filters(self, engine, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        connected = list(engine.concretizations(abstracted, connected_only=True))
        # Figure 6 / Example 4.2: c1 and c4 are disconnected.
        assert len(connected) == 2
        monomials = {tuple(ex.rows[0].occurrences) for ex in connected}
        assert monomials == {("h1", "i1", "p1"), ("h1", "i4", "p1")}


class TestConnectivity:
    def test_real_rows_connected(self, engine, paper_example):
        for row in paper_example.rows:
            assert engine.row_connected(row)

    def test_cache_counts(self, paper_tree, paper_db, paper_example):
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        row = paper_example.rows[0]
        engine.row_connected(row)
        engine.row_connected(row)
        assert engine.cache_hits == 1
        assert engine.cache_misses == 1

    def test_cache_disabled(self, paper_tree, paper_db, paper_example):
        engine = ConcretizationEngine(
            paper_tree, paper_db.registry, use_connectivity_cache=False
        )
        row = paper_example.rows[0]
        engine.row_connected(row)
        engine.row_connected(row)
        assert engine.cache_hits == 0


class TestCountingProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        h1_level=st.integers(min_value=0, max_value=3),
        i1_level=st.integers(min_value=0, max_value=2),
    )
    def test_product_formula(self, paper_tree, paper_db, paper_example, h1_level, i1_level):
        """Proposition 3.5(1): |C| is the product of subtree leaf counts,
        and uniform LOI is its log."""
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        targets = {}
        h1_chain = paper_tree.ancestors("h1")
        i1_chain = paper_tree.ancestors("i1")
        if h1_level:
            targets["h1"] = h1_chain[h1_level]
        if i1_level:
            targets["i1"] = i1_chain[i1_level]
        abstracted = _abstract(paper_tree, paper_example, targets)
        expected = 1
        for label in targets.values():
            expected *= paper_tree.leaf_count(label)
        assert engine.count(abstracted) == expected
        assert math.isclose(
            loss_of_information(abstracted, paper_tree), math.log(expected)
        )
