"""Tests for abstraction trees and the tree builders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abstraction.builders import (
    balanced_tree,
    tree_from_categories,
    tree_over_annotations,
)
from repro.abstraction.tree import AbstractionTree
from repro.errors import AbstractionError


@pytest.fixture
def tree():
    t = AbstractionTree("root")
    t.add_node("mid1", "root")
    t.add_node("mid2", "root")
    t.add_node("a", "mid1")
    t.add_node("b", "mid1")
    t.add_node("c", "mid2")
    return t.freeze()


class TestAbstractionTree:
    def test_structure(self, tree):
        assert tree.num_nodes() == 6
        assert set(tree.leaves()) == {"a", "b", "c"}
        assert tree.inner_labels() == frozenset({"root", "mid1", "mid2"})
        assert tree.height() == 2

    def test_leaf_counts(self, tree):
        assert tree.leaf_count("root") == 3
        assert tree.leaf_count("mid1") == 2
        assert tree.leaf_count("a") == 1

    def test_leaves_under(self, tree):
        assert set(tree.leaves_under("mid1")) == {"a", "b"}
        assert set(tree.leaves_under("root")) == {"a", "b", "c"}
        assert list(tree.leaves_under("c")) == ["c"]

    def test_ancestors(self, tree):
        assert tree.ancestors("a") == ("a", "mid1", "root")
        assert tree.ancestors("root") == ("root",)

    def test_is_ancestor_reflexive(self, tree):
        assert tree.is_ancestor("a", "a")
        assert tree.is_ancestor("a", "root")
        assert not tree.is_ancestor("a", "mid2")
        assert not tree.is_ancestor("root", "a")

    def test_path_edges(self, tree):
        assert tree.path_edges("a", "root") == (("a", "mid1"), ("mid1", "root"))
        assert tree.path_edges("a", "a") == ()
        with pytest.raises(AbstractionError):
            tree.path_edges("a", "mid2")

    def test_duplicate_label_rejected(self):
        t = AbstractionTree("root")
        t.add_node("x", "root")
        with pytest.raises(AbstractionError):
            t.add_node("x", "root")

    def test_unknown_parent_rejected(self):
        with pytest.raises(AbstractionError):
            AbstractionTree("root").add_node("x", "nope")

    def test_frozen_tree_rejects_additions(self, tree):
        with pytest.raises(AbstractionError):
            tree.add_node("new", "root")

    def test_queries_require_freeze(self):
        t = AbstractionTree("root")
        t.add_node("x", "root")
        with pytest.raises(AbstractionError):
            t.leaves()

    def test_compatibility(self, tree):
        # Compatible iff no inner label collides with an annotation.
        assert tree.is_compatible_with_annotations(["a", "b", "zzz"])
        assert not tree.is_compatible_with_annotations(["mid1"])

    def test_unknown_label(self, tree):
        with pytest.raises(AbstractionError):
            tree.node("ghost")


class TestBalancedTree:
    def test_all_annotations_become_leaves(self):
        annotations = [f"t{i}" for i in range(17)]
        tree = balanced_tree(annotations, height=3, seed=0)
        assert set(tree.leaves()) == set(annotations)

    def test_height_bound(self):
        tree = balanced_tree([f"t{i}" for i in range(30)], height=4, seed=1)
        assert tree.height() <= 4

    def test_height_one_is_flat(self):
        tree = balanced_tree(["a", "b", "c"], height=1)
        assert tree.height() == 1
        assert set(tree.leaves()) == {"a", "b", "c"}

    def test_deterministic_per_seed(self):
        annotations = [f"t{i}" for i in range(20)]
        t1 = balanced_tree(annotations, height=3, seed=5)
        t2 = balanced_tree(annotations, height=3, seed=5)
        assert t1.labels() == t2.labels()
        assert t1.leaves() == t2.leaves()

    def test_empty_rejected(self):
        with pytest.raises(AbstractionError):
            balanced_tree([], height=2)

    def test_bad_height_rejected(self):
        with pytest.raises(AbstractionError):
            balanced_tree(["a"], height=0)

    @given(
        n=st.integers(min_value=1, max_value=60),
        height=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_leaf_set_invariant(self, n, height, seed):
        annotations = [f"t{i}" for i in range(n)]
        tree = balanced_tree(annotations, height=height, seed=seed)
        assert set(tree.leaves()) == set(annotations)
        assert tree.height() <= height
        assert tree.leaf_count(tree.root.label) == n


class TestCategoryTree:
    def test_paper_figure3_shape(self, paper_tree):
        assert set(paper_tree.leaves()) == {
            "i1", "i2", "i3", "i4", "i5", "i6",
            "h1", "h2", "h3", "h4", "h5", "h6",
        }
        assert paper_tree.leaf_count("Facebook") == 5
        assert paper_tree.leaf_count("Social Network") == 8
        assert paper_tree.ancestors("h1") == (
            "h1", "Facebook", "Social Network", "*",
        )

    def test_nested_mapping(self):
        tree = tree_from_categories({"A": {"B": ["x"]}, "C": ["y", "z"]})
        assert set(tree.leaves()) == {"x", "y", "z"}
        assert tree.leaf_count("A") == 1

    def test_invalid_spec_rejected(self):
        with pytest.raises(AbstractionError):
            tree_from_categories({"A": 42})  # type: ignore[dict-item]


class TestTreeOverAnnotations:
    def test_must_include_always_sampled(self):
        pool = [f"t{i}" for i in range(100)]
        tree = tree_over_annotations(
            pool, n_leaves=10, height=3, seed=0, must_include=["t50", "t99"]
        )
        leaves = set(tree.leaves())
        assert {"t50", "t99"} <= leaves
        assert len(leaves) == 10

    def test_sample_capped_at_pool(self):
        pool = ["a", "b", "c"]
        tree = tree_over_annotations(pool, n_leaves=10, height=2)
        assert set(tree.leaves()) == set(pool)

    def test_deterministic(self):
        pool = [f"t{i}" for i in range(50)]
        t1 = tree_over_annotations(pool, n_leaves=20, height=3, seed=7)
        t2 = tree_over_annotations(pool, n_leaves=20, height=3, seed=7)
        assert t1.leaves() == t2.leaves()
